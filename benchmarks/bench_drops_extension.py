"""Extension experiment: per-pair packet-loss prediction.

The RouteNet architecture targets arbitrary per-path KPIs; the demo shows
delay/jitter and leaves drops as the natural extension.  This bench trains
the loss head on near-saturation bursty NSFNET scenarios and compares it to
the analytic M/M/1/B blocking-probability model, reproducing the same
who-wins shape as the delay comparison.
"""

import numpy as np

from repro.core import DropsPredictor, HyperParams
from repro.queueing import QueueingNetworkModel

from .conftest import report


def test_drops_prediction(workbench, benchmark):
    train = workbench.drops_train()
    evaluation = workbench.drops_eval()

    hp = HyperParams(
        link_state_dim=16, path_state_dim=16, message_passing_steps=4,
        readout_hidden=(32, 16), learning_rate=2e-3,
    )
    predictor = DropsPredictor(hp, seed=11)
    predictor.fit(train, epochs=workbench.profile.drops_epochs)
    metrics = predictor.evaluate(evaluation)

    # Analytic comparator: M/M/1/B blocking probabilities along the path.
    queueing = QueueingNetworkModel(buffer_packets=32)
    qt_pred = np.concatenate(
        [
            queueing.predict_loss(s.topology, s.routing, s.traffic, list(s.pairs))
            for s in evaluation
        ]
    )
    true = np.concatenate([s.loss_rate for s in evaluation])
    qt_mae = float(np.abs(qt_pred - true).mean())
    qt_corr = float(np.corrcoef(qt_pred, true)[0, 1]) if qt_pred.std() > 0 else 0.0

    benchmark(lambda: predictor.predict(evaluation[0]))

    body = "\n".join(
        [
            f"evaluation: {len(evaluation)} near-saturation bursty NSFNET scenarios, "
            f"{int(metrics['count'])} paths",
            f"mean true loss rate: {metrics['mean_true']:.3f}",
            "",
            f"{'model':<22s} {'MAE':>8s} {'Pearson':>9s}",
            f"{'routenet-drops':<22s} {metrics['mae']:>8.4f} {metrics['pearson']:>9.3f}",
            f"{'M/M/1/B analytic':<22s} {qt_mae:>8.4f} {qt_corr:>9.3f}",
        ]
    )
    report("EXTENSION — per-pair packet-loss prediction", body)

    assert metrics["pearson"] > 0.5
    assert metrics["mae"] < qt_mae, "learned drops head must beat M/M/1/B on bursty traffic"
