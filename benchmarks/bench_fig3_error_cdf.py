"""Figure 3 reproduction: CDF of the relative error on all eval datasets.

Paper: the CDFs of the relative error between RouteNet's predictions and the
simulated delays over the evaluation samples of NSFNET-14, synthetic-50 and
the unseen Geant2-24, all concentrated near zero and of similar shape.

The bench prints the quantile table and an ASCII CDF per dataset, and times
the pooled-evaluation step.
"""


from repro.evaluation import cdf_curve, cdf_table
from repro.experiments import fig3_error_cdfs

from .conftest import report


def test_fig3_error_cdfs(workbench, benchmark):
    cdfs = benchmark.pedantic(
        fig3_error_cdfs, args=(workbench,), rounds=1, iterations=1
    )

    curves = "\n\n".join(
        cdf_curve(
            c.errors,
            title=f"Fig.3 CDF of relative error — {c.label}",
            x_label="relative error",
        )
        for c in cdfs
    )
    body = cdf_table(cdfs) + "\n\n" + curves
    report("FIG 3 — CDF of the relative error (3 evaluation datasets)", body)

    by_label = {c.label: c for c in cdfs}
    seen_labels = ["nsfnet-14", "synthetic-50"]
    unseen = by_label["geant2-24 (unseen)"]

    # Shape assertions mirroring the paper's claims:
    # (1) errors concentrate near zero on every dataset;
    for c in cdfs:
        assert c.abs_quantile(0.5) < 0.25, f"{c.label} median error too large"
    # (2) the unseen topology stays comparable to the seen ones (the
    #     headline generalization claim) — within a small factor.
    seen_p50 = max(by_label[l].abs_quantile(0.5) for l in seen_labels)
    assert unseen.abs_quantile(0.5) < max(3.0 * seen_p50, 0.2)
    # (3) most mass within 50% error everywhere.
    for c in cdfs:
        assert c.fraction_within(0.5) > 0.85
