#!/usr/bin/env python
"""Training-throughput benchmark: fused-batch steps vs the per-sample loop.

Trains RouteNet on simulated NSFNET scenarios at batch sizes B in {1, 4, 16}
and reports, per batch size:

* ``samples_per_sec`` / ``steps_per_sec`` — end-to-end training throughput
  of the *fastest* timed epoch (epoch 1 is a warmup that populates the input
  cache, the plan memo and the fused-batch cache, exactly like a real run;
  best-of is the standard noise-robust estimator for throughput on shared
  machines — the slow epochs measure the machine, the fast ones the code);
* ``stages`` — per-stage wall-time breakdown (``prepare`` = input build +
  batch packing, ``forward``, ``backward``, ``optimizer`` = clip + Adam),
  measured with monkeypatched timers in a separate instrumented epoch so the
  headline throughput numbers stay unperturbed;
* ``alloc_blocks`` / ``alloc_kib`` — tracemalloc block and KiB deltas for
  one steady-state epoch (lower = the allocation discipline is working);
* ``peak_rss_kib`` — ``ru_maxrss`` after the run.

A second axis sweeps the data-parallel trainer (``Trainer.parallel_stepper``)
over worker counts W in {1, 2, 4} at a fixed batch size: W=1 runs the shard
loop inline, W>1 fans shards over a persistent process pool with the
bitwise-deterministic reduction.  ``config.cores`` records the CPUs actually
schedulable for this process — on a single-core box the multi-worker rows
measure dispatch overhead, not speedup, and the gate below stays honest
because it is *relative to the committed baseline measured on the same
class of machine*.

Output schema (``BENCH_training.json``)::

    {
      "benchmark": "training_throughput",
      "config": {"topology": "nsfnet", "num_samples": ..., "epochs_timed": ...,
                 "hparams": {...}, "quick": bool, "cores": int,
                 "workers_batch_size": int},
      "results": [
        {"batch_size": B, "samples_per_sec": float, "steps_per_sec": float,
         "epoch_seconds": float,            # fastest timed epoch
         "epoch_seconds_all": [float, ...], # every timed epoch, in order
         "loss_final": float,
         "stages": {"prepare": s, "forward": s, "backward": s, "optimizer": s},
         "alloc_blocks": int, "alloc_kib": float, "peak_rss_kib": int},
        ...
      ],
      "results_workers": [
        {"workers": W, "samples_per_sec": float, "steps_per_sec": float,
         "epoch_seconds": float, "epoch_seconds_all": [...],
         "loss_final": float, "worker_starts": int, "restarts": int},
        ...
      ],
      "streaming": {                   # eager-list vs stream+prefetch axis
        "replication": int,            # oversize factor (>= 4 for the gate)
        "oversize_samples": int, "epochs": int, "batch_size": int,
        "eager":  {"rss_before_load_kib": int, "rss_after_load_kib": int,
                   "dataset_resident_kib": int, "load_s": s, "prepare_s": s,
                   "fit_s": s, "peak_rss_kib": int, "loss_digest": str},
        "stream": {... same row, measured in its own subprocess ...},
        "rss_ratio": float, "prepare_ratio": float, "digest_match": bool
      },
      "arena": {                       # measured by the dataflow recorder
        "budgets": {family: {"tape_arena_bytes": int,     # RP604 budget
                             "peak_tape_bytes": int,
                             "inference_arena_bytes": int,
                             "values": int}},
        "per_round": {family: {round: {"buffers": int, "bytes": int}}}
      },
      "speedup_b16_vs_b1": float,
      "speedup_w4_vs_w1": float
    }

The ``arena`` section records one real fused forward+backward per paper
topology family (NSFNET, Geant2, 50-node synthetic) through
``repro.analysis.dataflow``: the planned tape-arena size becomes the
committed RP604 budget — so the static-analysis gate's ceilings come from
benched reality, not hand-picked numbers — plus the per-round buffer-count
stats behind it.  It is deterministic for fixed model dims (structure, not
timing), so quick and full runs agree.

The ``streaming`` axis trains over an oversized synthetic dataset
(content-varying replicas of the base scenarios) twice — once from an eager
in-RAM sample list, once from a converted stream dataset with ``prefetch=1``
— each in its own subprocess (``ru_maxrss`` is monotonic per process).  RSS
is sampled before and after the dataset load, separating dataset-resident
bytes from the training working set.

``--check BASELINE.json`` compares the measured B=16-vs-B=1 and W=4-vs-W=1
speedup ratios against the committed baseline's and fails (exit 1) when
either falls below 80% of its committed value — a machine-independent
regression gate (absolute samples/sec are hardware-dependent; the *ratios*
are not, as long as the core count class matches the baseline's).  It also
enforces three absolute streaming gates: the stream probe's loss digest
must equal the eager probe's (bitwise trajectory parity), its peak RSS
must stay below the eager probe's at >= 4x dataset size, and its
in-process prepare time must be <= 20% of the eager baseline's (the
prefetch worker, not the training loop, packs the batches).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro import nn  # noqa: E402
from repro.core import HyperParams, RouteNet  # noqa: E402
from repro.dataset import GenerationConfig, generate_dataset  # noqa: E402
from repro.topology import nsfnet  # noqa: E402
from repro.training import Trainer  # noqa: E402

BATCH_SIZES = (1, 4, 16)
WORKER_COUNTS = (1, 2, 4)
WORKERS_BATCH_SIZE = 16
#: Oversize factor of the streaming-vs-eager dataset (content-varying
#: replicas of the base set).  The RSS gate requires >= 4.
STREAM_REPLICATION = 8
STREAM_BATCH_SIZE = 8
STREAM_EPOCHS = 2

FAST_GEN = GenerationConfig(
    target_packets_per_pair=60.0,
    min_delivered=10,
    intensity_range=(0.3, 0.7),
)


def make_trainer(samples, hparams: HyperParams, seed: int) -> Trainer:
    model = RouteNet(hparams, seed=seed)
    trainer = Trainer(model, seed=seed + 1)
    from repro.dataset import fit_scaler

    trainer.scaler = fit_scaler(samples)
    return trainer


def run_epoch(trainer: Trainer, samples, batch_size: int) -> float:
    """One pass over ``samples`` at ``batch_size``; returns the mean loss."""
    if batch_size == 1:
        losses = [trainer.train_step(s) for s in samples]
    else:
        losses = [
            trainer.train_step_batch(samples[i : i + batch_size])
            for i in range(0, len(samples), batch_size)
        ]
    return float(np.mean(losses))


def timed_stages(trainer: Trainer, samples, batch_size: int) -> dict[str, float]:
    """Per-stage seconds for one epoch, via wrapped trainer internals."""
    stages = {"prepare": 0.0, "forward": 0.0, "backward": 0.0, "optimizer": 0.0}

    def wrap(obj, name, stage):
        original = getattr(obj, name)

        def timed(*args, **kwargs):
            t0 = time.perf_counter()
            out = original(*args, **kwargs)
            stages[stage] += time.perf_counter() - t0
            return out

        setattr(obj, name, timed)
        return original

    model = trainer.model
    saved = [
        (trainer, "_prepare", wrap(trainer, "_prepare", "prepare")),
        (trainer, "_prepare_batch", wrap(trainer, "_prepare_batch", "prepare")),
        (model, "forward", wrap(model, "forward", "forward")),
        (trainer._optimizer, "step", wrap(trainer._optimizer, "step", "optimizer")),
    ]
    original_backward = nn.Tensor.backward

    def timed_backward(self, *args, **kwargs):
        t0 = time.perf_counter()
        out = original_backward(self, *args, **kwargs)
        stages["backward"] += time.perf_counter() - t0
        return out

    nn.Tensor.backward = timed_backward
    try:
        run_epoch(trainer, samples, batch_size)
    finally:
        nn.Tensor.backward = original_backward
        for obj, name, original in saved:
            setattr(obj, name, original)
    return stages


def bench_batch_size(samples, hparams, batch_size, timed_epochs, seed=0):
    trainer = make_trainer(samples, hparams, seed)
    run_epoch(trainer, samples, batch_size)  # warmup: fills every cache

    loss = float("nan")
    epoch_times = []
    for _ in range(timed_epochs):
        t0 = time.perf_counter()
        loss = run_epoch(trainer, samples, batch_size)
        epoch_times.append(time.perf_counter() - t0)
    fastest = min(epoch_times)

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    run_epoch(trainer, samples, batch_size)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    deltas = after.compare_to(before, "lineno")
    alloc_blocks = sum(d.count_diff for d in deltas if d.count_diff > 0)
    alloc_kib = sum(d.size_diff for d in deltas if d.size_diff > 0) / 1024.0

    stages = timed_stages(trainer, samples, batch_size)

    steps_per_epoch = (len(samples) + batch_size - 1) // batch_size
    return {
        "batch_size": batch_size,
        "samples_per_sec": round(len(samples) / fastest, 2),
        "steps_per_sec": round(steps_per_epoch / fastest, 2),
        "epoch_seconds": round(fastest, 4),
        "epoch_seconds_all": [round(t, 4) for t in epoch_times],
        "loss_final": round(loss, 6),
        "stages": {k: round(v, 4) for k, v in stages.items()},
        "alloc_blocks": int(alloc_blocks),
        "alloc_kib": round(alloc_kib, 1),
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def bench_workers(samples, hparams, workers, timed_epochs,
                  batch_size=WORKERS_BATCH_SIZE, seed=0):
    """One data-parallel training config: W workers over fixed-size batches."""
    trainer = make_trainer(samples, hparams, seed)
    batch_indices = [
        tuple(range(i, min(i + batch_size, len(samples))))
        for i in range(0, len(samples), batch_size)
    ]

    def run_parallel_epoch(stepper):
        stepped = [stepper.step(idx) for idx in batch_indices]
        losses = [loss for loss, _ in stepped]
        weights = [paths for _, paths in stepped]
        return float(np.average(losses, weights=weights))

    with trainer.parallel_stepper(samples, workers=workers) as stepper:
        run_parallel_epoch(stepper)  # warmup: caches + worker replicas
        loss = float("nan")
        epoch_times = []
        for _ in range(timed_epochs):
            t0 = time.perf_counter()
            loss = run_parallel_epoch(stepper)
            epoch_times.append(time.perf_counter() - t0)
        stats = stepper.pool_stats
    fastest = min(epoch_times)
    return {
        "workers": workers,
        "samples_per_sec": round(len(samples) / fastest, 2),
        "steps_per_sec": round(len(batch_indices) / fastest, 2),
        "epoch_seconds": round(fastest, 4),
        "epoch_seconds_all": [round(t, 4) for t in epoch_times],
        "loss_final": round(loss, 6),
        "worker_starts": stats.worker_starts if stats is not None else 0,
        "restarts": stats.restarts if stats is not None else 0,
    }


def _proc_status_kib(field: str) -> int | None:
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def _rss_now_kib() -> int:
    """Current resident set size (KiB)."""
    now = _proc_status_kib("VmRSS")
    if now is not None:
        return now
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _rss_peak_kib() -> int:
    """Peak resident set size (KiB) since exec.

    ``ru_maxrss`` survives ``exec`` — a child forked from a large parent
    inherits the parent's copy-on-write peak and reports it forever — so the
    probes read ``VmHWM`` (reset when the new image is mapped) and fall back
    to ``ru_maxrss`` only off Linux.
    """
    peak = _proc_status_kib("VmHWM")
    if peak is not None:
        return peak
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_probe(args) -> int:
    """Child-process body of the streaming axis (``--probe eager|stream``).

    ``ru_maxrss`` is monotonic per process, so the eager and streaming
    passes each run in a fresh subprocess; this function measures one of
    them and writes its JSON row to ``--probe-out``.  RSS is sampled before
    and after the dataset load so dataset-resident bytes separate cleanly
    from the training working set.
    """
    import hashlib

    from repro.dataset import StreamDataset, load_dataset

    rss_before_load = _rss_now_kib()
    t0 = time.perf_counter()
    if args.probe == "eager":
        samples = load_dataset(args.probe_data)
        prefetch = None
    else:
        samples = StreamDataset(args.probe_data, cache_samples=8)
        prefetch = 1
    load_s = time.perf_counter() - t0
    rss_after_load = _rss_now_kib()

    trainer = Trainer(RouteNet(HyperParams(), seed=0), seed=5)
    prepare = {"seconds": 0.0}
    for name in ("_prepare", "_prepare_batch"):
        original = getattr(trainer, name)

        def timed(*a, _original=original, **kw):
            t = time.perf_counter()
            out = _original(*a, **kw)
            prepare["seconds"] += time.perf_counter() - t
            return out

        setattr(trainer, name, timed)

    t0 = time.perf_counter()
    history = trainer.fit(
        samples, epochs=args.probe_epochs, batch_size=args.probe_batch,
        prefetch=prefetch,
    )
    fit_s = time.perf_counter() - t0
    losses = np.asarray([e.train_loss for e in history.epochs], dtype=np.float64)
    row = {
        "mode": args.probe,
        "num_samples": len(samples),
        "rss_before_load_kib": rss_before_load,
        "rss_after_load_kib": rss_after_load,
        "dataset_resident_kib": rss_after_load - rss_before_load,
        "load_s": round(load_s, 4),
        "prepare_s": round(prepare["seconds"], 4),
        "fit_s": round(fit_s, 4),
        "peak_rss_kib": _rss_peak_kib(),
        "loss_digest": hashlib.sha256(losses.tobytes()).hexdigest(),
    }
    Path(args.probe_out).write_text(json.dumps(row, indent=2) + "\n")
    return 0


def bench_streaming(samples, replication, tmp_dir) -> dict:
    """Eager-list vs stream+prefetch training over an oversized dataset.

    The oversized set is ``replication`` content-varying replicas of the
    base scenarios (traffic scaled by a distinct factor per replica, so the
    content-addressed input cache cannot dedupe them — like a real dataset
    of distinct samples).  Each mode runs in its own subprocess; equal loss
    digests prove the streaming pipeline reproduces eager training bitwise
    while its RSS stays flat.
    """
    import subprocess
    from dataclasses import replace as dc_replace

    from repro.dataset import save_dataset, write_stream_dataset
    from repro.traffic import TrafficMatrix

    oversized = [
        dc_replace(s, traffic=TrafficMatrix(s.traffic.rates * (1.0 + 1e-4 * k)))
        for k in range(replication)
        for s in samples
    ]
    tmp = Path(tmp_dir)
    jsonl = tmp / "oversized.jsonl"
    stream_dir = tmp / "oversized.stream"
    save_dataset(oversized, jsonl)
    write_stream_dataset(oversized, stream_dir, overwrite=True)

    rows = {}
    for mode, data in (("eager", jsonl), ("stream", stream_dir)):
        out = tmp / f"probe_{mode}.json"
        print(f"  probe {mode}: fitting {len(oversized)} samples "
              f"(B={STREAM_BATCH_SIZE}, {STREAM_EPOCHS} epochs) ...",
              flush=True)
        subprocess.run(
            [sys.executable, __file__, "--probe", mode,
             "--probe-data", str(data), "--probe-out", str(out),
             "--probe-epochs", str(STREAM_EPOCHS),
             "--probe-batch", str(STREAM_BATCH_SIZE)],
            check=True,
        )
        rows[mode] = json.loads(out.read_text())

    eager, stream = rows["eager"], rows["stream"]
    return {
        "replication": replication,
        "oversize_samples": len(oversized),
        "epochs": STREAM_EPOCHS,
        "batch_size": STREAM_BATCH_SIZE,
        "eager": eager,
        "stream": stream,
        "rss_ratio": round(stream["peak_rss_kib"] / eager["peak_rss_kib"], 4),
        "prepare_ratio": round(
            stream["prepare_s"] / eager["prepare_s"], 4
        ) if eager["prepare_s"] > 0 else 0.0,
        "digest_match": eager["loss_digest"] == stream["loss_digest"],
    }


def check_streaming(streaming: dict) -> list[str]:
    """Absolute gates of the streaming axis (machine-independent)."""
    failures = []
    if streaming["replication"] < 4:
        failures.append(
            f"streaming axis replication {streaming['replication']} < 4"
        )
    if not streaming["digest_match"]:
        failures.append(
            "streaming loss digest differs from eager — the prefetch "
            "pipeline is no longer bitwise-identical"
        )
    eager, stream = streaming["eager"], streaming["stream"]
    if stream["peak_rss_kib"] >= eager["peak_rss_kib"]:
        failures.append(
            f"streaming peak RSS {stream['peak_rss_kib']} KiB >= eager "
            f"{eager['peak_rss_kib']} KiB — streaming no longer bounds "
            f"resident memory"
        )
    if stream["prepare_s"] > 0.2 * eager["prepare_s"]:
        failures.append(
            f"streaming in-process prepare {stream['prepare_s']:.3f}s > 20% "
            f"of eager {eager['prepare_s']:.3f}s — prefetch is not "
            f"offloading batch packing"
        )
    return failures


def measure_arena() -> dict:
    """Per-family arena budgets + per-round buffer stats (deterministic).

    Records one real fused step per paper topology family via the dataflow
    recorder; the planned tape-arena size is what RP604 gates against.
    """
    from repro.analysis.dataflow import run_dataflow

    findings, payload = run_dataflow(repo_root=None)
    if findings:  # the tape must be clean before its size becomes a budget
        raise RuntimeError(
            "dataflow findings on the recorded tape: "
            + "; ".join(f"{f.code} {f.path}" for f in findings)
        )
    budgets = {}
    per_round = {}
    for family, stats in payload["families"].items():
        budgets[family] = {
            "tape_arena_bytes": stats["tape_arena_bytes"],
            "peak_tape_bytes": stats["peak_tape_bytes"],
            "inference_arena_bytes": stats["inference_arena_bytes"],
            "values": stats["values"],
        }
        per_round[family] = stats["rounds"]
    return {"budgets": budgets, "per_round": per_round}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small dataset / few epochs (CI smoke run)")
    parser.add_argument("--output", default="BENCH_training.json",
                        help="where to write the JSON report")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail if the measured B=16 vs B=1 speedup drops "
                             "below 80%% of this committed baseline's")
    parser.add_argument("--samples", type=int, default=None,
                        help="override the number of NSFNET scenarios")
    parser.add_argument("--epochs", type=int, default=None,
                        help="override the number of timed epochs")
    parser.add_argument("--replication", type=int, default=STREAM_REPLICATION,
                        help="oversize factor of the streaming-axis dataset "
                             "(>= 4 for the RSS gate)")
    # Internal: child-process mode of the streaming axis.
    parser.add_argument("--probe", choices=("eager", "stream"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--probe-data", help=argparse.SUPPRESS)
    parser.add_argument("--probe-out", help=argparse.SUPPRESS)
    parser.add_argument("--probe-epochs", type=int, default=STREAM_EPOCHS,
                        help=argparse.SUPPRESS)
    parser.add_argument("--probe-batch", type=int, default=STREAM_BATCH_SIZE,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.probe:
        return run_probe(args)

    num_samples = args.samples or (16 if args.quick else 48)
    timed_epochs = args.epochs or (1 if args.quick else 3)
    hparams = HyperParams()  # the NSFNET training config: paper defaults

    print(f"generating {num_samples} NSFNET scenarios ...", flush=True)
    samples = generate_dataset(nsfnet(), num_samples, seed=101, config=FAST_GEN)

    results = []
    for batch_size in BATCH_SIZES:
        print(f"batch_size={batch_size}: training ...", flush=True)
        row = bench_batch_size(samples, hparams, batch_size, timed_epochs)
        results.append(row)
        print(f"  {row['samples_per_sec']:.1f} samples/s  "
              f"{row['steps_per_sec']:.1f} steps/s  "
              f"alloc {row['alloc_blocks']} blocks  "
              f"stages {row['stages']}", flush=True)

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    results_workers = []
    # A quick run times one epoch, which for the workers axis is a single
    # 16-sample step — too noisy for a ratio gate.  Best-of-3 floors the
    # variance at negligible cost (each extra epoch is one step).
    workers_epochs = max(timed_epochs, 3)
    for workers in WORKER_COUNTS:
        print(f"workers={workers}: training (B={WORKERS_BATCH_SIZE}) ...",
              flush=True)
        row = bench_workers(samples, hparams, workers, workers_epochs)
        results_workers.append(row)
        print(f"  {row['samples_per_sec']:.1f} samples/s  "
              f"{row['steps_per_sec']:.1f} steps/s  "
              f"worker_starts {row['worker_starts']}", flush=True)

    by_b = {r["batch_size"]: r for r in results}
    by_w = {r["workers"]: r for r in results_workers}
    speedup = by_b[16]["samples_per_sec"] / by_b[1]["samples_per_sec"]
    w_top = max(WORKER_COUNTS)
    speedup_w = by_w[w_top]["samples_per_sec"] / by_w[1]["samples_per_sec"]
    print("streaming axis: eager vs stream+prefetch subprocess probes ...",
          flush=True)
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench_stream_") as tmp_dir:
        streaming = bench_streaming(samples, args.replication, tmp_dir)
    print(f"  eager:  dataset {streaming['eager']['dataset_resident_kib']} KiB "
          f"resident, prepare {streaming['eager']['prepare_s']:.2f}s, "
          f"peak RSS {streaming['eager']['peak_rss_kib']} KiB", flush=True)
    print(f"  stream: dataset {streaming['stream']['dataset_resident_kib']} KiB "
          f"resident, prepare {streaming['stream']['prepare_s']:.2f}s, "
          f"peak RSS {streaming['stream']['peak_rss_kib']} KiB "
          f"(RSS ratio {streaming['rss_ratio']:.2f}, digest match "
          f"{streaming['digest_match']})", flush=True)

    print("recording per-family tape arenas ...", flush=True)
    arena = measure_arena()
    for family, budget in arena["budgets"].items():
        print(f"  {family}: tape arena {budget['tape_arena_bytes']} B  "
              f"inference arena {budget['inference_arena_bytes']} B",
              flush=True)

    report = {
        "benchmark": "training_throughput",
        "config": {
            "topology": "nsfnet",
            "num_samples": num_samples,
            "epochs_timed": timed_epochs,
            "hparams": hparams.to_dict(),
            "quick": bool(args.quick),
            "cores": cores,
            "workers_batch_size": WORKERS_BATCH_SIZE,
        },
        "results": results,
        "results_workers": results_workers,
        "streaming": streaming,
        "arena": arena,
        "speedup_b16_vs_b1": round(speedup, 3),
        "speedup_w4_vs_w1": round(speedup_w, 3),
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"B=16 vs B=1 speedup: {speedup:.2f}x  "
          f"W={w_top} vs W=1 speedup: {speedup_w:.2f}x ({cores} cores)  "
          f"->  {args.output}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        gates = [("B=16 vs B=1", speedup, baseline["speedup_b16_vs_b1"])]
        if "speedup_w4_vs_w1" in baseline:
            gates.append(("W=4 vs W=1", speedup_w, baseline["speedup_w4_vs_w1"]))
        failed = False
        for label, measured, committed in gates:
            floor = 0.8 * committed
            if measured < floor:
                print(f"REGRESSION: {label} speedup {measured:.2f}x < 80% of "
                      f"committed baseline {committed:.2f}x (floor {floor:.2f}x)")
                failed = True
            else:
                print(f"check OK: {label} speedup {measured:.2f}x >= floor "
                      f"{floor:.2f}x (baseline {committed:.2f}x)")
        for failure in check_streaming(streaming):
            print(f"REGRESSION: {failure}")
            failed = True
        if not check_streaming(streaming):
            print(f"check OK: streaming peak RSS "
                  f"{streaming['rss_ratio']:.2f}x of eager, prepare "
                  f"{streaming['prepare_ratio']:.2f}x of eager, loss digest "
                  f"matches at {streaming['replication']}x dataset size")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
