"""Shared benchmark fixtures.

Every bench uses the cached ``paper-small`` workbench under ``data/``; the
first run generates datasets and trains the model (a few minutes), later
runs are seconds.  Figure data is printed to stdout via the ``report``
helper so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction harness.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import PAPER_SMALL, Workbench

_REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    return Workbench(PAPER_SMALL, cache_dir=_REPO_ROOT / "data")


@pytest.fixture(scope="session")
def trained(workbench):
    """(model, scaler) of the cached paper-small RouteNet."""
    return workbench.trained_model()


def report(title: str, body: str) -> None:
    """Print a clearly delimited reproduction block."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
