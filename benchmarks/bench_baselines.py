"""Section 1 reproduction: RouteNet vs. the models the paper argues against.

Paper claims: (i) analytic queueing models "fail to achieve accurate
estimation in real-world scenarios with complex configurations", and
(ii) conventional NN architectures (fully-connected) "are not well suited to
model information structured as graphs" — in particular they cannot transfer
to unseen topologies at all.

The bench prints the delay-MRE comparison per evaluation dataset and times
the analytic baseline (its cost is the relevant metric — it is cheap but
inaccurate).
"""

from repro.baselines import QueueingNetworkModel
from repro.experiments import baseline_comparison

from .conftest import report


def test_baseline_comparison(workbench, benchmark):
    comparison = baseline_comparison(workbench)

    sample = workbench.geant2_eval()[0]
    queueing = QueueingNetworkModel(buffer_packets=64)
    benchmark(
        lambda: queueing.predict(
            sample.topology, sample.routing, sample.traffic, pairs=list(sample.pairs)
        )
    )

    lines = [
        f"{'eval dataset':<24s} {'routenet':>10s} {'mm1b':>10s} {'fixed-pt':>10s} {'fixed-MLP':>28s}"
    ]
    lines.append("-" * len(lines[0]))
    for label, row in comparison.items():
        mlp = row["mlp-fixed"]
        mlp_text = f"{mlp['mre']:.3f}" if isinstance(mlp, dict) else mlp
        lines.append(
            f"{label:<24s} {row['routenet']['mre']:>10.3f} "
            f"{row['queueing-theory']['mre']:>10.3f} "
            f"{row['queueing-fixed-point']['mre']:>10.3f} {mlp_text:>28s}"
        )
    report("BASELINES — RouteNet vs queueing theory vs fixed-topology MLP", "\n".join(lines))

    # Who-wins assertions (the paper's shape):
    # (1) Under bursty "real traffic distributions" the analytic model's
    #     assumptions break and RouteNet wins clearly (§1 claim i).
    bursty = comparison["nsfnet-14 (bursty)"]
    assert bursty["routenet"]["mre"] < bursty["queueing-theory"]["mre"]
    # The stronger reduced-load analytic model still assumes Poisson, so it
    # must lose on bursty traffic too.
    assert bursty["routenet"]["mre"] < bursty["queueing-fixed-point"]["mre"]
    # (2) On purely Markovian workloads — the analytic model's best case —
    #     RouteNet stays in the same accuracy class (within 1.5x).
    for label in ("nsfnet-14 (poisson)", "synthetic-50 (poisson)", "geant2-24 (poisson)"):
        row = comparison[label]
        assert row["routenet"]["mre"] < 1.5 * row["queueing-theory"]["mre"] + 0.02
    # (3) The fixed MLP cannot even run off its training topology (§1 claim ii),
    #     and on its own topology it is the worst learned model.
    assert isinstance(comparison["nsfnet-14 (poisson)"]["mlp-fixed"], dict)
    assert isinstance(comparison["synthetic-50 (poisson)"]["mlp-fixed"], str)
    assert isinstance(comparison["geant2-24 (poisson)"]["mlp-fixed"], str)
    nsf = comparison["nsfnet-14 (poisson)"]
    assert nsf["routenet"]["mre"] < nsf["mlp-fixed"]["mre"]
