"""Figure 2 reproduction: regression plot on a sample Geant2 scenario.

Paper: a scatter of RouteNet's predicted delays vs. the packet-level
simulator's delays on one scenario of the *unseen* Geant2 topology, hugging
the y = x diagonal.

This bench prints the scatter (ASCII), the binned trend series, and the fit
statistics, and times the end-to-end prediction step that produces the
figure's data.
"""


from repro.core import build_model_input
from repro.evaluation import binned_means, scatter
from repro.experiments import fig2_regression

from .conftest import report


def test_fig2_regression_data(workbench, benchmark):
    data = fig2_regression(workbench)
    summary = data.summary()

    model, scaler = workbench.trained_model()
    sample = workbench.geant2_eval()[0]
    inputs = build_model_input(
        sample.topology, sample.routing, sample.traffic,
        scaler=scaler, pairs=list(sample.pairs),
    )
    benchmark(lambda: model.predict(inputs, scaler))

    rows = "\n".join(
        f"  true~{center:.4f}s -> pred {mean:.4f}s  (n={n})"
        for center, mean, n in binned_means(data, num_bins=8)
    )
    body = "\n".join(
        [
            scatter(
                data.true,
                data.pred,
                title="Fig.2: RouteNet delay prediction on unseen Geant2 (y=x dotted)",
                x_label="simulated delay (s)",
                y_label="predicted delay (s)",
                diagonal=True,
            ),
            "",
            "binned trend (true-delay bin -> mean prediction):",
            rows,
            "",
            f"paths: {len(data.pairs)}   slope through origin: "
            f"{data.slope_through_origin():.3f} (paper: ~1.0)",
            f"R2: {summary['r2']:.3f}   Pearson: {summary['pearson']:.3f}   "
            f"MRE: {summary['mre']:.3f}",
        ]
    )
    report("FIG 2 — regression plot in a sample scenario of Geant2", body)

    # Reproduction assertions: predictions track the diagonal on the unseen
    # topology (shape of the paper's result, not its absolute numbers).
    assert 0.6 < data.slope_through_origin() < 1.5
    assert summary["pearson"] > 0.8
