"""Jitter counterpart of Figure 3.

The paper's model "produces accurate estimates of mean per-packet delay and
jitter"; the demo's figures show delay.  This bench reproduces the Fig. 3
CDF analysis for the jitter head on the same three evaluation datasets.
Jitter (a variance) is statistically harder to estimate from finite
simulations, so its error band is naturally wider than delay's.
"""

from repro.evaluation import cdf_table
from repro.experiments import fig3_jitter_cdfs

from .conftest import report


def test_jitter_error_cdfs(workbench, benchmark):
    cdfs = benchmark.pedantic(
        fig3_jitter_cdfs, args=(workbench,), rounds=1, iterations=1
    )
    report("FIG 3 (jitter head) — CDF of the relative jitter error", cdf_table(cdfs))

    by_label = {c.label: c for c in cdfs}
    for c in cdfs:
        assert c.abs_quantile(0.5) < 0.5, f"{c.label} median jitter error too large"
    # Generalization shape: the unseen topology stays comparable.
    seen = max(
        by_label["nsfnet-14"].abs_quantile(0.5),
        by_label["synthetic-50"].abs_quantile(0.5),
    )
    assert by_label["geant2-24 (unseen)"].abs_quantile(0.5) < max(3.0 * seen, 0.3)
