"""Substrate performance: the packet-level simulator's event throughput.

Not a paper figure, but the quantity that bounds dataset-generation cost
(the paper's 480k-sample dataset is exactly this, at OMNeT++ scale).  Also
benchmarks routing-scheme construction, the other dataset-generation cost.
"""

from repro.routing import RoutingScheme
from repro.simulator import SimulationConfig, simulate
from repro.topology import nsfnet
from repro.traffic import scale_to_utilization, uniform_traffic

from .conftest import report


def test_simulator_event_throughput(benchmark):
    topo = nsfnet()
    routing = RoutingScheme.shortest_path(topo)
    tm = scale_to_utilization(uniform_traffic(14, 1.0, seed=0), topo, routing, 0.6)
    config = SimulationConfig(duration=40.0, warmup=4.0, seed=1)

    result = benchmark(lambda: simulate(topo, routing, tm, config))
    throughput = result.events_processed / result.wall_time_seconds
    report(
        "SIMULATOR — event throughput (NSFNET, util 0.6)",
        f"events: {result.events_processed}   wall: {result.wall_time_seconds:.3f}s"
        f"   throughput: {throughput:,.0f} events/s",
    )
    assert throughput > 10_000


def test_routing_scheme_construction(benchmark):
    topo = nsfnet()
    scheme = benchmark(lambda: RoutingScheme.random_weighted(topo, seed=7))
    assert len(scheme) == 182
