"""Figure 4 reproduction: Top-10 paths with most delay.

Paper: the demo notebook's screenshot listing the Top-10 end-to-end paths by
RouteNet-predicted delay on a scenario ("network visibility").

The bench prints the ranked table with ground truth attached plus the
ranking-agreement statistics, and times the Top-N computation.
"""

from repro.evaluation import format_top_paths
from repro.experiments import fig4_top_paths

from .conftest import report


def test_fig4_top10_paths(workbench, benchmark):
    result = benchmark.pedantic(
        fig4_top_paths, args=(workbench,), kwargs={"n": 10}, rounds=1, iterations=1
    )

    body = "\n".join(
        [
            format_top_paths(result.rows),
            "",
            f"overlap with true Top-10: {result.agreement['top_n_overlap']:.0%}"
            f"   Spearman over all paths: {result.agreement['spearman']:.3f}",
            f"scenario: geant2 eval sample, routing={result.sample_meta['routing_kind']}, "
            f"intensity={result.sample_meta['intensity']:.2f}",
        ]
    )
    report("FIG 4 — Top-10 paths with more delay (unseen Geant2 scenario)", body)

    # The predicted worst-path ranking must be actionable: strong rank
    # correlation and majority overlap with the true Top-10.
    assert result.agreement["spearman"] > 0.7
    assert result.agreement["top_n_overlap"] >= 0.5
