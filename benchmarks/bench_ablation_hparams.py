"""Section 2.1 ablation: "we ... optimize a set of hyperparameters to adapt
the model to scenarios with larger topologies".

Sweeps the two knobs that drive RouteNet's capacity — the number of
message-passing iterations T and the hidden-state dimension — trains a small
model per cell on the NSFNET training set, and reports delay MRE on the
*unseen* Geant2 scenarios.  The shape to reproduce: T=1 (no real message
passing) is clearly worse; accuracy saturates after a few iterations.
"""


from repro.core import HyperParams, RouteNet
from repro.training import Trainer

from .conftest import report

SWEEP_EPOCHS = 12


def _mre_for(hp: HyperParams, workbench, include_load: bool = False) -> float:
    trainer = Trainer(RouteNet(hp, seed=3), include_load=include_load, seed=4)
    trainer.fit(workbench.nsfnet_train(), epochs=SWEEP_EPOCHS)
    return trainer.evaluate(workbench.geant2_eval()).delay.mre


def test_ablation_message_passing_steps(workbench, benchmark):
    results = {}
    for steps in (1, 2, 4):
        hp = HyperParams(
            link_state_dim=12, path_state_dim=12, message_passing_steps=steps,
            readout_hidden=(24,), learning_rate=2e-3,
        )
        results[steps] = _mre_for(hp, workbench)

    # Benchmark one training step at the default depth (the knob's cost).
    hp = HyperParams(
        link_state_dim=12, path_state_dim=12, message_passing_steps=4,
        readout_hidden=(24,), learning_rate=2e-3,
    )
    trainer = Trainer(RouteNet(hp, seed=3), seed=4)
    trainer.scaler = workbench.trainer().scaler
    sample = workbench.nsfnet_train()[0]
    benchmark(lambda: trainer.train_step(sample))

    lines = ["T (message-passing steps) -> delay MRE on unseen geant2-24"]
    lines += [f"  T={steps}: {mre:.3f}" for steps, mre in results.items()]
    report("ABLATION — message-passing iterations", "\n".join(lines))

    assert results[4] < results[1], "message passing must help generalization"


def test_ablation_link_load_feature(workbench, benchmark):
    """Feature ablation: hand the model the analytic per-link offered load
    as a second link feature vs. making it learn load from structure (the
    paper's design).  The structural model should be competitive — that is
    the whole point of message passing."""
    base = dict(
        link_state_dim=12, path_state_dim=12, message_passing_steps=3,
        readout_hidden=(24,), learning_rate=2e-3,
    )
    without = _mre_for(HyperParams(**base), workbench)
    with_load = _mre_for(
        HyperParams(**base, link_feature_dim=2), workbench, include_load=True
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    report(
        "ABLATION — explicit load feature",
        "\n".join(
            [
                "link features -> delay MRE on unseen geant2-24",
                f"  capacity only (paper design): {without:.3f}",
                f"  capacity + analytic load:     {with_load:.3f}",
            ]
        ),
    )
    # Learning load from structure must be roughly as good as being told.
    assert without < with_load * 1.6 + 0.05


def test_ablation_cell_type(workbench, benchmark):
    """GRU (gated, the paper's cell) vs vanilla RNN in both updates."""
    results = {}
    for cell in ("gru", "rnn"):
        hp = HyperParams(
            link_state_dim=12, path_state_dim=12, message_passing_steps=3,
            readout_hidden=(24,), learning_rate=2e-3, cell_type=cell,
        )
        results[cell] = _mre_for(hp, workbench)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    lines = ["recurrent cell -> delay MRE on unseen geant2-24"]
    lines += [f"  {cell}: {mre:.3f}" for cell, mre in results.items()]
    report("ABLATION — recurrent cell type", "\n".join(lines))

    # The gated cell should not be clearly worse; typically it wins.
    assert results["gru"] <= results["rnn"] * 1.25


def test_ablation_state_dimension(workbench, benchmark):
    results = {}
    for dim in (4, 16):
        hp = HyperParams(
            link_state_dim=dim, path_state_dim=dim, message_passing_steps=3,
            readout_hidden=(24,), learning_rate=2e-3,
        )
        results[dim] = _mre_for(hp, workbench)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    lines = ["hidden-state dim -> delay MRE on unseen geant2-24"]
    lines += [f"  dim={dim}: {mre:.3f}" for dim, mre in results.items()]
    report("ABLATION — state dimension", "\n".join(lines))

    assert results[16] <= results[4] * 1.5, "capacity should not hurt badly"
