"""Dataset-generation scaling: the resilient runner vs. the sequential loop.

Ground truth comes from the packet-level simulator, and producing enough
samples is the dominant cost of the whole pipeline (RouteNet-Erlang and the
"Scaling Graph-based Deep Learning models" follow-ups both single it out as
the bottleneck).  This bench generates a 200-sample NSFNET dataset through
``repro.runner`` at 1 and 4 workers and reports wall time, speedup, worker
utilization, and the determinism guarantee (bitwise-identical samples).

The >= 2x speedup assertion only fires on machines with >= 4 CPU cores —
on smaller runners the numbers are still reported but not enforced.
"""

import os

import numpy as np

from repro.dataset import GenerationConfig, generate_dataset_run
from repro.topology import nsfnet

from .conftest import report

NUM_SAMPLES = 200
WORKERS = 4

#: Short simulations: the bench measures orchestration scaling, not DES cost.
FAST_GEN = GenerationConfig(
    target_packets_per_pair=20.0,
    min_delivered=2,
    intensity_range=(0.3, 0.6),
)


def _identical(a, b) -> bool:
    return all(
        x.pairs == y.pairs
        and np.array_equal(x.delay, y.delay)
        and np.array_equal(x.jitter, y.jitter)
        for x, y in zip(a, b)
    )


def test_generation_scaling():
    topo = nsfnet()

    sequential = generate_dataset_run(topo, NUM_SAMPLES, seed=7, config=FAST_GEN)
    parallel = generate_dataset_run(
        topo, NUM_SAMPLES, seed=7, config=FAST_GEN, workers=WORKERS
    )

    assert len(sequential.samples) == NUM_SAMPLES
    assert len(parallel.samples) == NUM_SAMPLES
    assert _identical(sequential.samples, parallel.samples), (
        "parallel generation must be bitwise identical to sequential"
    )

    seq_s = sequential.metrics.wall_time
    par_s = parallel.metrics.wall_time
    speedup = seq_s / par_s if par_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    report(
        f"GENERATION — {NUM_SAMPLES} NSFNET scenarios ({cores} cores)",
        f"sequential (1 worker):  {seq_s:8.1f}s\n"
        f"parallel ({WORKERS} workers):   {par_s:8.1f}s\n"
        f"speedup:                {speedup:.2f}x\n"
        f"worker utilization:     {parallel.metrics.utilization:.0%}\n"
        f"events simulated:       "
        f"{parallel.metrics.extras['events_simulated']:,}\n"
        f"samples bitwise identical across worker counts: yes",
    )
    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"parallel generation only {speedup:.2f}x faster at "
            f"{WORKERS} workers (expected >= 2x on {cores} cores)"
        )
