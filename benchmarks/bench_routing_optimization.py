"""Motivation closure (§1): RouteNet as the cost model of an optimizer.

"One fundamental characteristic of network optimization tools is that they
can only optimize what they can model."  This bench uses the trained model
to pick the best of N candidate routing schemes for a Geant2 traffic matrix
— in milliseconds per candidate — and then *verifies the choice with the
packet-level simulator*: the model-picked routing must simulate faster than
the pool median.
"""

import numpy as np

from repro.planning import optimize_routing
from repro.simulator import SimulationConfig, simulate

from .conftest import report

NUM_CANDIDATES = 6


def test_routing_optimization(workbench, benchmark):
    model, scaler = workbench.trained_model()
    sample = workbench.geant2_eval()[0]

    result = benchmark.pedantic(
        optimize_routing,
        args=(model, scaler, sample.topology, sample.traffic),
        kwargs={"num_candidates": NUM_CANDIDATES, "seed": 0},
        rounds=1,
        iterations=1,
    )

    # Verify with the simulator (what the optimizer avoided paying per
    # candidate, paid once here for validation).
    config = SimulationConfig(duration=120.0, warmup=12.0, seed=3)

    def simulated_mean(routing) -> float:
        res = simulate(sample.topology, routing, sample.traffic, config)
        delays = [f.mean_delay for f in res.flows.values() if f.delivered > 20]
        return float(np.mean(delays))

    simulated = {
        score.index: simulated_mean(result.candidates[score.index])
        for score in result.scores
    }

    lines = [
        f"{'candidate':<22s} {'predicted mean (s)':>19s} {'simulated mean (s)':>19s}"
    ]
    lines.append("-" * len(lines[0]))
    for score in result.scores:
        marker = "  <- picked" if score.index == result.best.index else ""
        lines.append(
            f"{score.name:<22s} {score.mean_delay:>19.4f} "
            f"{simulated[score.index]:>19.4f}{marker}"
        )
    report("OPTIMIZATION — model-driven routing selection (Geant2)", "\n".join(lines))

    picked = simulated[result.best.index]
    median = float(np.median(list(simulated.values())))
    assert picked <= median * 1.05, "model-picked routing must beat the pool median"
    # Predicted ranking should correlate with the simulated one.
    pred_order = [s.mean_delay for s in result.scores]
    sim_order = [simulated[s.index] for s in result.scores]
    corr = np.corrcoef(pred_order, sim_order)[0, 1]
    assert corr > 0.5
