"""Section 1 cost claim: packet-level simulation vs. RouteNet inference.

Paper: "packet-level simulators produce accurate KPI predictions at the
expense of high computational cost, which makes them useless for network
operation in short timescales" — the entire motivation for a learned model.

The bench times both a full packet-level simulation of a Geant2 scenario and
a RouteNet forward pass on the same scenario, and prints the speedup.
"""

from repro.core import build_model_input
from repro.experiments import sim_vs_inference

from .conftest import report


def test_sim_vs_inference(workbench, benchmark):
    costs = sim_vs_inference(workbench)

    model, scaler = workbench.trained_model()
    sample = workbench.geant2_eval()[0]
    inputs = build_model_input(
        sample.topology, sample.routing, sample.traffic,
        scaler=scaler, pairs=list(sample.pairs),
    )
    benchmark(lambda: model.predict(inputs, scaler))

    body = "\n".join(
        [
            f"scenario: geant2-24, {int(costs['paths'])} measured paths",
            f"packet-level simulation: {costs['simulation_seconds']:.3f} s "
            f"({int(costs['simulated_events'])} events)",
            f"RouteNet inference:      {costs['inference_seconds']:.4f} s",
            f"speedup: {costs['speedup']:.0f}x",
        ]
    )
    report("COST — packet-level simulation vs RouteNet inference", body)

    # The paper's motivation requires a decisive gap.
    assert costs["speedup"] > 5.0
