"""Section 2.1 reproduction: the generalization matrix.

Paper: "we observe that RouteNet produces accurate estimates even in unseen
topologies" — trained on NSFNET-14 + synthetic-50, evaluated on held-out
samples of both plus the never-seen Geant2-24, and on "topologies of
variable size (up to 50 nodes)".

The bench prints delay MRE/R2 per evaluation dataset and times one full
dataset evaluation pass.
"""

from repro.experiments import generalization_matrix

from .conftest import report


def test_generalization_matrix(workbench, benchmark):
    matrix = benchmark.pedantic(
        generalization_matrix, args=(workbench,), rounds=1, iterations=1
    )

    header = f"{'eval dataset':<16s} {'MRE':>8s} {'MedRE':>8s} {'R2':>8s} {'Pearson':>8s} {'paths':>7s}"
    lines = [header, "-" * len(header)]
    for label, stats in matrix.items():
        lines.append(
            f"{label:<16s} {stats['mre']:>8.3f} {stats['medre']:>8.3f} "
            f"{stats['r2']:>8.3f} {stats['pearson']:>8.3f} {int(stats['count']):>7d}"
        )
    report("GENERALIZATION MATRIX — train {nsfnet-14, synthetic-50}", "\n".join(lines))

    # Seen-topology accuracy is good, unseen topologies remain usable: the
    # paper's qualitative result.
    assert matrix["nsfnet-14"]["mre"] < 0.25
    assert matrix["geant2-24"]["pearson"] > 0.8
    assert matrix["geant2-24"]["mre"] < 3.0 * max(
        matrix["nsfnet-14"]["mre"], matrix["synthetic-50"]["mre"]
    ) + 0.05
    for label, stats in matrix.items():
        if label.startswith("variable-"):
            assert stats["pearson"] > 0.6, f"{label} lost correlation"
