"""Demo claim: predictions "in scenarios with topologies up to 50 nodes".

Times a RouteNet forward pass as topology size grows from 14 to 50 nodes
(full-mesh traffic, shortest-path routing), demonstrating that the
runtime-assembled GNN stays fast at the demo's largest scale.
"""

import numpy as np
import pytest

from repro.core import build_model_input
from repro.routing import RoutingScheme
from repro.topology import nsfnet, synthetic_topology
from repro.traffic import uniform_traffic

from .conftest import report

SIZES = (14, 24, 36, 50)


def _inputs_for(size: int, scaler):
    topo = nsfnet() if size == 14 else synthetic_topology(size, seed=size)
    routing = RoutingScheme.shortest_path(topo)
    tm = uniform_traffic(topo.num_nodes, 100.0, seed=1)
    return build_model_input(topo, routing, tm, scaler=scaler)


@pytest.mark.parametrize("size", SIZES)
def test_inference_scaling(workbench, benchmark, size):
    model, scaler = workbench.trained_model()
    inputs = _inputs_for(size, scaler)
    result = benchmark(lambda: model.predict(inputs, scaler))
    assert np.isfinite(result["delay"]).all()
    report(
        f"SCALING — inference at {size} nodes",
        f"paths: {inputs.num_paths}   links: {inputs.num_links}   "
        f"max path length: {inputs.max_path_length}",
    )
