"""Demo claim: predictions "in scenarios with topologies up to 50 nodes".

Two angles on inference cost:

* ``test_inference_scaling`` times a single forward pass as topology size
  grows from 14 to 50 nodes (full-mesh traffic, shortest-path routing).
* ``test_batched_throughput`` packs 32 mixed NSFNET/Geant2 queries into
  fused batches via :class:`repro.serving.InferenceEngine` and compares
  against the per-sample prediction loop — the Python-level overhead per
  sample is what batching amortizes, and the engine's per-stage counters
  show where the remaining time goes.
"""

import time

import numpy as np
import pytest

from repro.core import build_model_input
from repro.routing import RoutingScheme
from repro.serving import InferenceEngine, ServeConfig
from repro.topology import geant2, nsfnet, synthetic_topology
from repro.traffic import uniform_traffic

from .conftest import report

SIZES = (14, 24, 36, 50)
BATCH = 32


def _inputs_for(size: int, scaler):
    topo = nsfnet() if size == 14 else synthetic_topology(size, seed=size)
    routing = RoutingScheme.shortest_path(topo)
    tm = uniform_traffic(topo.num_nodes, 100.0, seed=1)
    return build_model_input(topo, routing, tm, scaler=scaler)


@pytest.mark.parametrize("size", SIZES)
def test_inference_scaling(workbench, benchmark, size):
    model, scaler = workbench.trained_model()
    inputs = _inputs_for(size, scaler)
    result = benchmark(lambda: model.predict(inputs, scaler))
    assert np.isfinite(result.delay).all()
    report(
        f"SCALING — inference at {size} nodes",
        f"paths: {inputs.num_paths}   links: {inputs.num_links}   "
        f"max path length: {inputs.max_path_length}",
    )


def _mixed_inputs(scaler, count: int):
    """``count`` heterogeneous queries alternating NSFNET-14 and Geant2-24."""
    inputs = []
    for i in range(count):
        topo = nsfnet() if i % 2 == 0 else geant2()
        routing = (
            RoutingScheme.shortest_path(topo)
            if i % 4 < 2
            else RoutingScheme.random_weighted(topo, seed=i)
        )
        tm = uniform_traffic(topo.num_nodes, 80.0 + 5.0 * i, seed=100 + i)
        inputs.append(build_model_input(topo, routing, tm, scaler=scaler))
    return inputs


def _best_of(repeats: int, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_batched_throughput(workbench):
    """Fused batching must beat the per-sample loop by >= 3x at batch 32."""
    model, scaler = workbench.trained_model()
    inputs = _mixed_inputs(scaler, BATCH)
    total_paths = sum(inp.num_paths for inp in inputs)

    sequential_s = _best_of(
        3, lambda: [model.predict(inp, scaler) for inp in inputs]
    )

    engine = InferenceEngine(model, scaler, ServeConfig(max_batch=BATCH))
    batched_s = _best_of(3, lambda: engine.predict_inputs(inputs))

    # Equivalence spot-check alongside the timing claim.
    batched = engine.predict_inputs(inputs)
    sequential = [model.predict(inp, scaler) for inp in inputs]
    worst = max(
        float(np.abs(b.delay - s.delay).max())
        for b, s in zip(batched, sequential)
    )

    speedup = sequential_s / batched_s
    stats = engine.stats()
    report(
        f"SERVING — {BATCH} mixed NSFNET/Geant2 queries ({total_paths} paths)",
        f"per-sample loop: {sequential_s * 1000:8.1f} ms "
        f"({total_paths / sequential_s:,.0f} paths/s)\n"
        f"fused batches:   {batched_s * 1000:8.1f} ms "
        f"({total_paths / batched_s:,.0f} paths/s)\n"
        f"speedup:         {speedup:.1f}x   max |delay diff| {worst:.2e}\n\n"
        f"engine stats (cumulative):\n{InferenceEngine.format_stats(stats)}",
    )
    assert worst <= 1e-10
    assert speedup >= 3.0, (
        f"batched inference only {speedup:.2f}x faster than the "
        f"per-sample loop (expected >= 3x)"
    )
