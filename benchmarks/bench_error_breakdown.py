"""Analysis: does the error compose gracefully along paths?

RouteNet predicts end-to-end delay by composing per-link states along each
path; if the composition were biased, relative error would blow up with hop
count.  This bench slices the unseen-Geant2 error by path length — the
shape to observe is mild growth, not an explosion.
"""

from repro.evaluation import error_by_path_length, format_breakdown

from .conftest import report


def test_error_by_path_length(workbench, benchmark):
    trainer = workbench.trainer()
    samples = workbench.geant2_eval()
    predictions = [trainer.predict_sample(s).delay for s in samples]

    breakdown = benchmark(lambda: error_by_path_length(samples, predictions))

    report(
        "ANALYSIS — relative error by path length (unseen geant2-24)",
        format_breakdown(breakdown),
    )

    lengths = sorted(breakdown)
    assert len(lengths) >= 3, "need a range of path lengths to analyze"
    # No blow-up: the longest paths' MRE stays within 3x of the shortest's
    # (composition error grows sub-linearly).
    assert breakdown[lengths[-1]]["mre"] < 3.0 * breakdown[lengths[0]]["mre"] + 0.05
