"""Extension experiment: QoS-aware RouteNet on multi-class traffic.

Networks schedule traffic classes, not just FIFO aggregates; this extension
adds strict-priority scheduling to the simulator and a class one-hot to
RouteNet's path features.  The bench trains class-aware and class-blind
models on the same two-class NSFNET dataset and shows that (i) the
class-aware model recovers the premium/best-effort delay separation and
(ii) class-blindness costs measurable accuracy — an ablation of the
feature design.
"""

import numpy as np

from repro.core import HyperParams, RouteNet
from repro.training import Trainer

from .conftest import report


def _hp(path_feature_dim: int) -> HyperParams:
    return HyperParams(
        link_state_dim=16, path_state_dim=16, message_passing_steps=4,
        readout_hidden=(32, 16), learning_rate=2e-3,
        path_feature_dim=path_feature_dim,
    )


def test_qos_class_aware_model(workbench, benchmark):
    train = workbench.qos_train()
    evaluation = workbench.qos_eval()
    epochs = workbench.profile.qos_epochs

    aware = Trainer(RouteNet(_hp(3), seed=21), seed=22)
    aware.fit(train, epochs=epochs)
    blind = Trainer(RouteNet(_hp(1), seed=21), seed=22)
    blind.fit(train, epochs=epochs)

    aware_mre = aware.evaluate(evaluation).delay.mre
    blind_mre = blind.evaluate(evaluation).delay.mre

    pred = np.concatenate(
        [aware.predict_sample(s).delay for s in evaluation]
    )
    true = np.concatenate([s.delay for s in evaluation])
    classes = np.concatenate([s.pair_class for s in evaluation])

    benchmark(lambda: aware.predict_sample(evaluation[0]))

    body = "\n".join(
        [
            f"two-class NSFNET, strict-priority links; "
            f"{len(train)} train / {len(evaluation)} eval scenarios",
            "",
            f"{'model':<14s} {'delay MRE':>10s}",
            f"{'class-aware':<14s} {aware_mre:>10.3f}",
            f"{'class-blind':<14s} {blind_mre:>10.3f}",
            "",
            "mean delay by class (seconds):",
            f"  premium     true {true[classes == 0].mean():.4f}   "
            f"predicted {pred[classes == 0].mean():.4f}",
            f"  best-effort true {true[classes == 1].mean():.4f}   "
            f"predicted {pred[classes == 1].mean():.4f}",
        ]
    )
    report("EXTENSION — QoS classes (strict priority scheduling)", body)

    # The class-aware model must recover the priority separation ...
    assert pred[classes == 0].mean() < pred[classes == 1].mean()
    assert true[classes == 0].mean() < true[classes == 1].mean()
    # ... and knowing the class must help accuracy.
    assert aware_mre < blind_mre
