#!/usr/bin/env python
"""Serving-latency benchmark: the request-queue service under open-loop load.

Drives :class:`repro.serving.ServingService` through four phases:

* **saturation** — closed-loop probes (enqueue everything, drain) at
  ``max_batch`` 1 and 32 with the prediction cache off, measuring pure
  service throughput; ``speedup_batched_vs_b1`` is the headline ratio and
  the regression-gated number;
* **load_points** — open-loop Poisson arrivals at >= 3 offered rates set as
  fractions of the measured batched capacity (0.5x, 0.8x, 1.2x), reporting
  p50/p90/p99 scheduled-arrival-to-completion latency, achieved throughput,
  and shed load (admission rejections) at the overload point;
* **determinism** — the same closed-loop request sequence replayed twice on
  fresh services (``coalesce="count"``, multiple workers); the SHA-256 over
  every prediction's raw bytes must match bitwise;
* **prediction_cache** — a closed-loop run with the cache enabled over a
  small sample pool, checking the hit counter actually counts.

Output schema (``BENCH_serving.json``)::

    {
      "benchmark": "serving_latency",
      "config": {"pool": {...}, "max_batch": 32, "workers": ..., "quick": bool},
      "saturation": {
        "results": [{"max_batch": B, "throughput_rps": float,
                     "p50_ms": float, "p99_ms": float, "requests": int}, ...],
        "speedup_batched_vs_b1": float
      },
      "load_points": [
        {"offered_rps": float, "achieved_rps": float, "p50_ms": float,
         "p90_ms": float, "p99_ms": float, "mean_ms": float, "requests": int,
         "completed": int, "rejected": int, "expired": int, "errors": int,
         "duration_s": float, "batches": int, "mean_batch": float}, ...
      ],
      "determinism": {"workers": int, "requests": int, "digest": str,
                      "identical": bool},
      "prediction_cache": {"hits": int, "misses": int, "hit_rate": float,
                           "entries": int}
    }

``--check BASELINE.json`` fails (exit 1) when the measured batched-vs-B=1
speedup drops below 80% of the committed baseline's (absolute rps is
hardware-dependent; the batching *ratio* is not), when the determinism
replay diverges, or when the prediction cache records zero hits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import RouteNet  # noqa: E402
from repro.dataset import GenerationConfig, fit_scaler, generate_dataset  # noqa: E402
from repro.serving import (  # noqa: E402
    ServeConfig,
    ServingService,
    predictions_digest,
    run_closed_loop,
    run_open_loop,
)
from repro.topology import synthetic_topology  # noqa: E402

MAX_BATCH = 32
LOAD_FRACTIONS = (0.5, 0.8, 1.2)

FAST_GEN = GenerationConfig(
    target_packets_per_pair=60.0,
    min_delivered=10,
    intensity_range=(0.3, 0.7),
)


def build_pool(quick: bool):
    """Labeled queries on two *small* topologies (multi-worker runs shard).

    Small queries are deliberate: at RouteNet's sizes the per-request fixed
    cost (Python dispatch, embeds, schedule setup) rivals the per-path math,
    and that fixed cost is exactly what a dynamic batcher amortizes — the
    high-request-rate regime this service exists for.  How model compute
    scales with topology size is ``bench_inference_scaling``'s job, not
    this benchmark's.
    """
    per_topo = 6 if quick else 12
    samples = list(generate_dataset(
        synthetic_topology(6, seed=1), per_topo, seed=71, config=FAST_GEN
    ))
    samples += generate_dataset(
        synthetic_topology(8, seed=3), per_topo, seed=72, config=FAST_GEN
    )
    return samples


def make_service(model, scaler, **overrides) -> ServingService:
    knobs = dict(
        max_batch=MAX_BATCH,
        max_wait_ms=2.0,
        coalesce="count",
        workers=1,
        prediction_cache_size=0,
    )
    knobs.update(overrides)
    return ServingService(model, scaler, ServeConfig(**knobs))


def bench_saturation(model, scaler, samples, num_requests: int, reps: int) -> dict:
    """Closed-loop throughput at max_batch 1 vs 32, prediction cache off.

    Each probe runs ``reps`` times (fresh service each — a closed-loop run
    consumes its service) and keeps the fastest: best-of is the standard
    noise-robust throughput estimator on shared machines.
    """
    results = []
    for max_batch in (1, MAX_BATCH):
        best = None
        for _ in range(reps):
            service = make_service(
                model, scaler, max_batch=max_batch, queue_depth=num_requests
            )
            report, _ = run_closed_loop(
                service, samples, num_requests=num_requests, seed=11
            )
            if best is None or report.achieved_rps > best.achieved_rps:
                best = report
        report = best
        results.append({
            "max_batch": max_batch,
            "throughput_rps": round(report.achieved_rps, 2),
            "p50_ms": round(report.p50_ms, 3),
            "p99_ms": round(report.p99_ms, 3),
            "requests": report.requests,
        })
        print(f"  max_batch={max_batch}: {report.achieved_rps:.0f} req/s  "
              f"p50 {report.p50_ms:.2f} ms", flush=True)
    by_b = {r["max_batch"]: r for r in results}
    speedup = by_b[MAX_BATCH]["throughput_rps"] / by_b[1]["throughput_rps"]
    return {"results": results, "speedup_batched_vs_b1": round(speedup, 3)}


def bench_load_points(
    model, scaler, samples, capacity_rps: float, duration_s: float
) -> list[dict]:
    """Open-loop Poisson points at fractions of the measured capacity."""
    points = []
    for fraction in LOAD_FRACTIONS:
        rate = max(10.0, fraction * capacity_rps)
        num_requests = max(20, int(round(rate * duration_s)))
        service = make_service(
            model, scaler, coalesce="deadline", queue_depth=256
        )
        try:
            report = run_open_loop(
                service, samples, rate_rps=rate,
                num_requests=num_requests, seed=23,
            )
            stats = service.stats()
        finally:
            service.close(drain=False)
        batches = stats["engine"]["batches"]
        served = stats["served"]
        point = report.to_dict()
        point["batches"] = batches
        point["mean_batch"] = round(served / batches, 2) if batches else 0.0
        points.append(point)
        print(f"  {rate:7.0f} rps offered: p50 {report.p50_ms:7.2f} ms  "
              f"p99 {report.p99_ms:7.2f} ms  rejected {report.rejected}",
              flush=True)
    return points


def bench_determinism(model, scaler, samples, num_requests: int, workers: int) -> dict:
    """Replay one closed-loop sequence twice; digests must match bitwise."""
    digests = []
    for _ in range(2):
        # queue_depth is split across shards, so give every shard room for
        # the full sequence (the split is topology-dependent).
        service = make_service(
            model, scaler, workers=workers, queue_depth=num_requests * workers
        )
        _, results = run_closed_loop(
            service, samples, num_requests=num_requests, seed=37
        )
        digests.append(predictions_digest(results))
    identical = digests[0] == digests[1]
    print(f"  digest {digests[0][:16]}...  identical={identical}", flush=True)
    return {
        "workers": workers,
        "requests": num_requests,
        "digest": digests[0],
        "identical": identical,
    }


def bench_prediction_cache(model, scaler, samples, num_requests: int) -> dict:
    """Closed loop with the cache on: repeated queries must register hits."""
    service = make_service(
        model, scaler,
        queue_depth=num_requests,
        prediction_cache_size=2048,
    )
    run_closed_loop(service, samples, num_requests=num_requests, seed=53)
    stats = service.stats()["prediction_cache"]
    total = stats["hits"] + stats["misses"]
    out = {
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": round(stats["hits"] / total, 3) if total else 0.0,
        "entries": stats["entries"],
    }
    print(f"  {out['hits']} hits / {out['misses']} misses "
          f"(rate {out['hit_rate']:.2f})", flush=True)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small pool / short load points (CI smoke run)")
    parser.add_argument("--output", default="BENCH_serving.json",
                        help="where to write the JSON report")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail if the batched-vs-B=1 speedup drops below "
                             "80%% of this committed baseline's, the replay "
                             "digest diverges, or the cache records no hits")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker shards for the determinism phase")
    parser.add_argument("--duration", type=float, default=None,
                        help="override seconds of offered load per rate point")
    args = parser.parse_args(argv)

    closed_n = 128 if args.quick else 512
    determinism_n = 64 if args.quick else 128
    duration_s = args.duration or (0.75 if args.quick else 2.0)

    print("generating the query pool ...", flush=True)
    samples = build_pool(args.quick)
    model = RouteNet(seed=5)
    scaler = fit_scaler(samples)
    # One warm forward per topology shape compiles the plan memo so the
    # B=1 saturation probe is not charged for one-time setup.
    warm = make_service(model, scaler, queue_depth=len(samples))
    run_closed_loop(warm, samples, num_requests=len(samples), seed=1)

    print("saturation (closed loop, prediction cache off):", flush=True)
    saturation = bench_saturation(
        model, scaler, samples, closed_n, reps=2 if args.quick else 3
    )
    capacity = saturation["results"][-1]["throughput_rps"]

    print("open-loop load points:", flush=True)
    load_points = bench_load_points(model, scaler, samples, capacity, duration_s)

    print(f"determinism replay (workers={args.workers}):", flush=True)
    determinism = bench_determinism(
        model, scaler, samples, determinism_n, args.workers
    )

    print("prediction cache:", flush=True)
    cache = bench_prediction_cache(model, scaler, samples, determinism_n)

    report = {
        "benchmark": "serving_latency",
        "config": {
            "pool": {
                "topologies": ["synthetic:6", "synthetic:8"],
                "num_samples": len(samples),
            },
            "max_batch": MAX_BATCH,
            "workers": args.workers,
            "load_fractions": list(LOAD_FRACTIONS),
            "duration_s": duration_s,
            "quick": bool(args.quick),
        },
        "saturation": saturation,
        "load_points": load_points,
        "determinism": determinism,
        "prediction_cache": cache,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    speedup = saturation["speedup_batched_vs_b1"]
    print(f"batched vs B=1 speedup: {speedup:.2f}x  ->  {args.output}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        committed = baseline["saturation"]["speedup_batched_vs_b1"]
        floor = 0.8 * committed
        failures = []
        if speedup < floor:
            failures.append(
                f"speedup {speedup:.2f}x < 80% of committed baseline "
                f"{committed:.2f}x (floor {floor:.2f}x)"
            )
        if not determinism["identical"]:
            failures.append("determinism replay produced a different digest")
        if cache["hits"] == 0:
            failures.append("prediction cache recorded zero hits")
        if len(load_points) < 3:
            failures.append(f"only {len(load_points)} load points measured")
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(f"check OK: speedup {speedup:.2f}x >= floor {floor:.2f}x, "
              f"replay identical, {cache['hits']} cache hits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
