"""Quickstart: train RouteNet on simulated NSFNET scenarios and predict delays.

Runs in about a minute on a laptop:

    python examples/quickstart.py

Pipeline: simulate a small dataset with the packet-level simulator, train
the GNN, evaluate on held-out scenarios, and predict the delay of one path.
"""

from repro.core import HyperParams, RouteNet
from repro.dataset import GenerationConfig, generate_dataset, train_eval_split
from repro.topology import nsfnet
from repro.training import Trainer


def main() -> None:
    # 1. The network: the classic 14-node NSFNET backbone.
    topology = nsfnet()
    print(f"topology: {topology}")

    # 2. Ground truth: packet-level simulation of 16 random scenarios
    #    (random routing scheme + random traffic matrix each).
    config = GenerationConfig(target_packets_per_pair=100, min_delivered=15)
    print("simulating 16 scenarios ...")
    samples = generate_dataset(topology, 16, seed=7, config=config)
    train, evaluation = train_eval_split(samples, eval_fraction=0.25, seed=1)

    # 3. Train RouteNet (path<->link message passing, delay + jitter heads).
    model = RouteNet(HyperParams(learning_rate=2e-3), seed=0)
    trainer = Trainer(model, seed=2)
    trainer.fit(train, epochs=20, log=print)

    # 4. Evaluate on unseen scenarios.
    metrics = trainer.evaluate(evaluation)
    print(
        f"\nheld-out delay:  MRE {metrics['delay']['mre']:.1%}  "
        f"R2 {metrics['delay']['r2']:.3f}  Pearson {metrics['delay']['pearson']:.3f}"
    )
    print(
        f"held-out jitter: MRE {metrics['jitter']['mre']:.1%}  "
        f"R2 {metrics['jitter']['r2']:.3f}"
    )

    # 5. Predict per-path KPIs for one scenario.
    sample = evaluation[0]
    prediction = trainer.predict_sample(sample)
    src, dst = sample.pairs[0]
    print(
        f"\npath {src}->{dst}: predicted delay {prediction['delay'][0] * 1000:.1f} ms, "
        f"simulated {sample.delay[0] * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
