"""Quickstart: train RouteNet on simulated NSFNET scenarios and predict delays.

Runs in about a minute on a laptop:

    python examples/quickstart.py

The whole pipeline goes through the one-call :mod:`repro.api` facade:
simulate a small dataset with the packet-level simulator, train the GNN,
evaluate on held-out scenarios, and serve batched per-path predictions.
"""

import repro
from repro.dataset import GenerationConfig, train_eval_split


def main() -> None:
    # 1. Ground truth: packet-level simulation of 16 random scenarios on the
    #    classic 14-node NSFNET backbone (random routing + traffic each).
    print("simulating 16 scenarios ...")
    samples = repro.simulate(
        "nsfnet",
        num_samples=16,
        seed=7,
        config=GenerationConfig(target_packets_per_pair=100, min_delivered=15),
    )
    train, evaluation = train_eval_split(samples, eval_fraction=0.25, seed=1)

    # 2. Train RouteNet (path<->link message passing, delay + jitter heads).
    result = repro.train(
        train,
        epochs=20,
        hparams=repro.HyperParams(learning_rate=2e-3),
        seed=0,
        log=print,
    )

    # 3. Evaluate on unseen scenarios (typed EvalResult, batched inference).
    metrics = repro.evaluate(result.model, evaluation, scaler=result.scaler)
    print(
        f"\nheld-out delay:  MRE {metrics.delay.mre:.1%}  "
        f"R2 {metrics.delay.r2:.3f}  Pearson {metrics.delay.pearson:.3f}"
    )
    print(
        f"held-out jitter: MRE {metrics.jitter.mre:.1%}  "
        f"R2 {metrics.jitter.r2:.3f}"
    )

    # 4. Predict per-path KPIs for one scenario.
    sample = evaluation[0]
    prediction = repro.predict(
        result.model, sample, scaler=result.scaler
    )
    src, dst = prediction.pairs[0]
    print(
        f"\npath {src}->{dst}: predicted delay {prediction.delay[0] * 1000:.1f} ms, "
        f"simulated {sample.delay[0] * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
