"""RouteNet vs the models the paper argues against (section 1).

Compares three predictors of per-path mean delay:

* **RouteNet** — the GNN (this library's core);
* **Queueing theory** — per-link M/M/1/B, summed along paths (the classical
  analytic model; exact for Poisson workloads, wrong for bursty ones);
* **Fixed-topology MLP** — a fully-connected net on the flattened traffic
  matrix (the conventional NN the paper says "is not well suited"; it cannot
  transfer across topologies at all).

    python examples/compare_baselines.py [--smoke]
"""

import sys

from repro.experiments import PAPER_SMALL, SMOKE, Workbench, baseline_comparison


def main() -> None:
    smoke = "--smoke" in sys.argv
    profile = SMOKE if smoke else PAPER_SMALL
    wb = Workbench(profile, cache_dir="/tmp/repro-smoke" if smoke else "data")

    print("building artifacts (cached) ...")
    comparison = baseline_comparison(wb)

    header = (
        f"{'evaluation dataset':<24s} {'routenet':>10s} {'queueing':>10s} "
        f"{'fixed-MLP':>26s}"
    )
    print("\ndelay MRE (lower is better)")
    print(header)
    print("-" * len(header))
    for label, row in comparison.items():
        mlp = row["mlp-fixed"]
        mlp_text = f"{mlp['mre']:.3f}" if isinstance(mlp, dict) else mlp
        print(
            f"{label:<24s} {row['routenet']['mre']:>10.3f} "
            f"{row['queueing-theory']['mre']:>10.3f} {mlp_text:>26s}"
        )

    print(
        "\nreading: on Poisson workloads the M/M/1 analytic model is at its "
        "theoretical best\nand RouteNet matches it; on bursty 'real' traffic "
        "the analytic assumptions break\nand RouteNet wins decisively; the "
        "fixed-topology MLP cannot leave its topology."
    )


if __name__ == "__main__":
    main()
