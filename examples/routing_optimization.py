"""Routing optimization with RouteNet as the cost model (paper §1 motivation).

Scores candidate routing schemes for a traffic matrix with the trained GNN
(milliseconds each), picks the best, then validates the pick with one
packet-level simulation — the expensive step the optimizer avoided paying
per candidate.

    python examples/routing_optimization.py [--smoke]
"""

import sys

import numpy as np

from repro.experiments import PAPER_SMALL, SMOKE, Workbench
from repro.planning import optimize_routing
from repro.simulator import SimulationConfig, simulate


def main() -> None:
    smoke = "--smoke" in sys.argv
    profile = SMOKE if smoke else PAPER_SMALL
    wb = Workbench(profile, cache_dir="/tmp/repro-smoke" if smoke else "data")
    model, scaler = wb.trained_model()

    sample = wb.geant2_eval()[0]
    print(f"scenario: {sample.topology.name}, "
          f"{len(sample.traffic.nonzero_pairs())} traffic pairs")

    for objective in ("mean", "worst"):
        result = optimize_routing(
            model, scaler, sample.topology, sample.traffic,
            num_candidates=6, objective=objective, seed=0,
        )
        print(f"\nobjective = {objective!r}")
        for score in result.scores:
            marker = "  <- picked" if score.index == result.best.index else ""
            print(
                f"  {score.name:<22s} predicted {objective} delay "
                f"{score.score * 1000:7.1f} ms{marker}"
            )

    # Validate the mean-objective winner against the simulator.
    result = optimize_routing(
        model, scaler, sample.topology, sample.traffic,
        num_candidates=6, objective="mean", seed=0,
    )
    config = SimulationConfig(duration=120.0, warmup=12.0, seed=1)
    res = simulate(sample.topology, result.best_routing, sample.traffic, config)
    delays = [f.mean_delay for f in res.flows.values() if f.delivered > 20]
    print(
        f"\nsimulated mean delay of the picked routing: "
        f"{np.mean(delays) * 1000:.1f} ms "
        f"(predicted {result.best.mean_delay * 1000:.1f} ms)"
    )


if __name__ == "__main__":
    main()
