"""Temporal study: network delay over a simulated day.

Replays a synthetic diurnal traffic trace (sinusoidal day/night cycle)
through a trained RouteNet — one millisecond-scale inference per snapshot —
and charts how the predicted network-wide delay follows the load curve.
This is the "short timescales" operating mode the paper argues simulators
cannot serve.

    python examples/diurnal_study.py [--smoke]
"""

import sys


from repro.core import build_model_input
from repro.experiments import PAPER_SMALL, SMOKE, Workbench
from repro.routing import RoutingScheme
from repro.traffic import diurnal_trace, max_link_utilization


def main() -> None:
    smoke = "--smoke" in sys.argv
    profile = SMOKE if smoke else PAPER_SMALL
    wb = Workbench(profile, cache_dir="/tmp/repro-smoke" if smoke else "data")
    model, scaler = wb.trained_model()

    topology = wb.topology_geant2()
    routing = RoutingScheme.shortest_path(topology)
    trace = diurnal_trace(topology, routing, num_snapshots=24, seed=7)

    print("hour   util   mean delay (ms)")
    rows = []
    for hour, tm in trace:
        inputs = build_model_input(topology, routing, tm, scaler=scaler)
        delays = model.predict(inputs, scaler).delay
        util = max_link_utilization(topology, routing, tm)
        rows.append((hour, util, float(delays.mean())))

    peak = max(rows, key=lambda r: r[2])
    scale = 40.0 / peak[2]
    for hour, util, mean_delay in rows:
        bar = "#" * int(round(mean_delay * scale))
        marker = "  <- peak" if (hour, util, mean_delay) == peak else ""
        print(f"{hour:4.0f}h  {util:5.2f}  {mean_delay * 1000:9.1f}  {bar}{marker}")

    trough = min(rows, key=lambda r: r[2])
    print(
        f"\npeak/trough predicted delay: {peak[2] * 1000:.1f} ms at {peak[0]:.0f}h"
        f" vs {trough[2] * 1000:.1f} ms at {trough[0]:.0f}h"
        f" ({peak[2] / trough[2]:.2f}x swing)"
    )
    print("24 snapshots evaluated with one forward pass each; a packet-level "
          "simulator would need minutes per snapshot.")


if __name__ == "__main__":
    main()
