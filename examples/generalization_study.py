"""The paper's headline experiment: generalization to unseen topologies.

Trains RouteNet on NSFNET-14 + a 50-node synthetic topology and evaluates on
(i) held-out scenarios of both, (ii) the never-seen Geant2-24, and (iii) a
family of synthetic topologies of variable size — then prints the three
figures of the paper as data/ASCII.

Artifacts are cached under ``data/`` (first run simulates and trains, a few
minutes; later runs are seconds).  Pass ``--smoke`` for a tiny throwaway run.

    python examples/generalization_study.py [--smoke]
"""

import sys

from repro.evaluation import binned_means, cdf_table, format_top_paths, scatter
from repro.experiments import (
    PAPER_SMALL,
    SMOKE,
    Workbench,
    fig2_regression,
    fig3_error_cdfs,
    fig4_top_paths,
    generalization_matrix,
)


def main() -> None:
    smoke = "--smoke" in sys.argv
    profile = SMOKE if smoke else PAPER_SMALL
    wb = Workbench(profile, cache_dir="/tmp/repro-smoke" if smoke else "data")

    print("== building artifacts (cached) ==")
    wb.trained_model()

    print("\n== Fig 2: regression on a sample scenario of unseen Geant2 ==")
    data = fig2_regression(wb)
    print(
        scatter(
            data.true, data.pred,
            title="predicted vs simulated delay (y=x dotted)",
            x_label="simulated delay (s)", y_label="predicted (s)",
            diagonal=True,
        )
    )
    print(f"slope through origin: {data.slope_through_origin():.3f}   "
          f"R2: {data.summary()['r2']:.3f}")
    for center, mean, count in binned_means(data, num_bins=6):
        print(f"  true~{center:.4f} -> pred {mean:.4f}  (n={count})")

    print("\n== Fig 3: CDF of the relative error (3 datasets) ==")
    print(cdf_table(fig3_error_cdfs(wb)))

    print("\n== Fig 4: Top-10 paths with most delay ==")
    result = fig4_top_paths(wb, n=10)
    print(format_top_paths(result.rows))
    print(
        f"overlap with true top-10: {result.agreement['top_n_overlap']:.0%}   "
        f"Spearman: {result.agreement['spearman']:.3f}"
    )

    print("\n== Generalization matrix (delay MRE per eval dataset) ==")
    for label, stats in generalization_matrix(wb).items():
        print(f"  {label:<14s} MRE {stats['mre']:.3f}   R2 {stats['r2']:.3f}")


if __name__ == "__main__":
    main()
