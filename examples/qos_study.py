"""QoS extension study: class-aware delay prediction under strict priority.

Generates two-class NSFNET scenarios (premium packets preempt best-effort
ones at every output queue, non-preemptively), trains a class-aware RouteNet
(traffic + class one-hot path features), and shows it learns the per-class
delay separation.

    python examples/qos_study.py
"""

import numpy as np

from repro.core import HyperParams, RouteNet
from repro.dataset import GenerationConfig, generate_dataset, train_eval_split
from repro.topology import nsfnet
from repro.training import Trainer


def main() -> None:
    topology = nsfnet()
    config = GenerationConfig(
        target_packets_per_pair=120,
        min_delivered=15,
        num_classes=2,
        intensity_range=(0.5, 0.85),
    )
    print("simulating 14 two-class scenarios (strict-priority links) ...")
    samples = generate_dataset(topology, 14, seed=5, config=config, workers=2)
    train, evaluation = train_eval_split(samples, 0.25, seed=1)

    true = np.concatenate([s.delay for s in evaluation])
    classes = np.concatenate([s.pair_class for s in evaluation])
    print(
        f"simulated class separation: premium {true[classes == 0].mean():.3f} s"
        f" vs best-effort {true[classes == 1].mean():.3f} s"
    )

    hp = HyperParams(learning_rate=2e-3, path_feature_dim=3)  # traffic + 2 classes
    trainer = Trainer(RouteNet(hp, seed=0), seed=2)
    trainer.fit(train, epochs=30, log=print)

    metrics = trainer.evaluate(evaluation).delay.to_dict()
    print(f"\nheld-out delay MRE: {metrics['mre']:.1%}  R2: {metrics['r2']:.3f}")

    pred = np.concatenate(
        [trainer.predict_sample(s).delay for s in evaluation]
    )
    print(
        f"predicted class separation: premium {pred[classes == 0].mean():.3f} s"
        f" vs best-effort {pred[classes == 1].mean():.3f} s"
    )


if __name__ == "__main__":
    main()
