"""Network visibility & planning with RouteNet (the demo's section 3).

Uses a trained model to answer operator questions about a live scenario
without re-simulating:

* which paths have the most delay (Fig 4's view),
* which links run hottest,
* what happens if traffic grows 20% / 50%,
* what happens if a backbone link fails and flows reroute.

    python examples/network_planning.py [--smoke]
"""

import sys

import numpy as np

from repro.evaluation import format_top_paths
from repro.experiments import PAPER_SMALL, SMOKE, Workbench
from repro.planning import (
    NetworkView,
    format_link_report,
    link_failure_whatif,
    traffic_scaling_whatif,
)


def main() -> None:
    smoke = "--smoke" in sys.argv
    profile = SMOKE if smoke else PAPER_SMALL
    wb = Workbench(profile, cache_dir="/tmp/repro-smoke" if smoke else "data")
    model, scaler = wb.trained_model()

    # The scenario under inspection: one simulated Geant2 sample.
    sample = wb.geant2_eval()[0]
    view = NetworkView(model, scaler, sample.topology, sample.routing, sample.traffic)

    print("== Top-10 paths with most predicted delay ==")
    print(format_top_paths(view.top_delay_paths(10)))
    print(f"\ntraffic-weighted mean network delay: "
          f"{view.mean_network_delay() * 1000:.1f} ms")

    print("\n== Hottest links (offered utilization) ==")
    print(format_link_report(view.link_utilization(), n=8))

    print("\n== What-if: uniform traffic growth ==")
    results = traffic_scaling_whatif(
        model, scaler, sample.topology, sample.routing, sample.traffic,
        factors=(0.8, 1.0, 1.2, 1.5),
    )
    for result in results:
        pair, worst = result.worst_pair()
        print(
            f"  {result.label}: mean delay {result.mean_delay() * 1000:7.1f} ms"
            f"   worst path {pair[0]}->{pair[1]} at {worst * 1000:.1f} ms"
        )

    print("\n== What-if: single link failure (flows reroute) ==")
    # Fail the busiest survivable link.
    for row in view.link_utilization():
        u, v = row.src, row.dst
        if sample.topology.without_edge(u, v).is_connected():
            break
    before, after = link_failure_whatif(
        model, scaler, sample.topology, sample.traffic, (u, v)
    )
    common = sorted(set(before.pairs) & set(after.pairs))
    b_idx = {p: i for i, p in enumerate(before.pairs)}
    a_idx = {p: i for i, p in enumerate(after.pairs)}
    deltas = np.array(
        [after.delay[a_idx[p]] - before.delay[b_idx[p]] for p in common]
    )
    print(f"  failed edge {u}<->{v}")
    print(f"  mean delay: {before.mean_delay() * 1000:.1f} ms -> "
          f"{after.mean_delay() * 1000:.1f} ms")
    print(f"  paths whose predicted delay grows: "
          f"{(deltas > 0).sum()}/{len(common)}")
    worst = int(np.argmax(deltas))
    print(
        f"  most impacted path {common[worst][0]}->{common[worst][1]}: "
        f"+{deltas[worst] * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
