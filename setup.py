"""Setup shim: the offline environment lacks the `wheel` package, so PEP 660
editable installs fail; this file enables the legacy `setup.py develop` path."""

from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
