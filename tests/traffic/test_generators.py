"""Tests for traffic-matrix generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrafficError
from repro.routing import RoutingScheme
from repro.topology import nsfnet
from repro.traffic import (
    uniform_traffic,
    gravity_traffic,
    hotspot_traffic,
    scale_to_utilization,
    random_traffic,
    max_link_utilization,
)


@pytest.fixture(scope="module")
def topo():
    return nsfnet()


@pytest.fixture(scope="module")
def routing(topo):
    return RoutingScheme.shortest_path(topo)


class TestUniform:
    def test_mean_rate_near_target(self):
        tm = uniform_traffic(20, mean_rate=10.0, seed=0)
        off_diag = tm.rates[~np.eye(20, dtype=bool)]
        assert 9.0 < off_diag.mean() < 11.0

    def test_spread_bounds(self):
        tm = uniform_traffic(10, mean_rate=10.0, seed=1, spread=0.5)
        off_diag = tm.rates[~np.eye(10, dtype=bool)]
        assert off_diag.min() >= 5.0 and off_diag.max() <= 15.0

    def test_bad_spread_raises(self):
        with pytest.raises(TrafficError):
            uniform_traffic(5, 10.0, spread=1.5)

    def test_negative_mean_raises(self):
        with pytest.raises(TrafficError):
            uniform_traffic(5, -1.0)

    def test_deterministic(self):
        assert uniform_traffic(5, 1.0, seed=7) == uniform_traffic(5, 1.0, seed=7)


class TestGravity:
    def test_total_matches(self):
        tm = gravity_traffic(12, total_rate=500.0, seed=0)
        assert tm.total() == pytest.approx(500.0)

    def test_heavy_tail_exists(self):
        tm = gravity_traffic(20, total_rate=1000.0, seed=3)
        off_diag = tm.rates[~np.eye(20, dtype=bool)]
        assert off_diag.max() > 4 * off_diag.mean()

    def test_negative_total_raises(self):
        with pytest.raises(TrafficError):
            gravity_traffic(5, -10.0)


class TestHotspot:
    def test_hotspot_columns_amplified(self):
        tm = hotspot_traffic(15, mean_rate=1.0, seed=2, num_hotspots=1, hotspot_factor=10.0)
        col_sums = tm.rates.sum(axis=0)
        assert col_sums.max() > 5 * np.median(col_sums)

    def test_bad_hotspot_count_raises(self):
        with pytest.raises(TrafficError):
            hotspot_traffic(5, 1.0, num_hotspots=9)


class TestScaling:
    def test_scale_hits_target(self, topo, routing):
        tm = uniform_traffic(14, 1.0, seed=4)
        scaled = scale_to_utilization(tm, topo, routing, 0.7)
        assert max_link_utilization(topo, routing, scaled) == pytest.approx(0.7)

    def test_zero_matrix_raises(self, topo, routing):
        from repro.traffic import TrafficMatrix

        with pytest.raises(TrafficError, match="all-zero"):
            scale_to_utilization(TrafficMatrix(np.zeros((14, 14))), topo, routing, 0.5)

    def test_bad_target_raises(self, topo, routing):
        tm = uniform_traffic(14, 1.0, seed=4)
        with pytest.raises(TrafficError):
            scale_to_utilization(tm, topo, routing, 0.0)


class TestRandomTraffic:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_intensity_in_range(self, seed):
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        tm = random_traffic(topo, routing, seed=seed, intensity_range=(0.2, 0.8))
        util = max_link_utilization(topo, routing, tm)
        assert 0.2 - 1e-9 <= util <= 0.8 + 1e-9

    def test_unknown_shape_raises(self, topo, routing):
        with pytest.raises(TrafficError, match="shape"):
            random_traffic(topo, routing, seed=0, shapes=("fractal",))

    def test_deterministic(self, topo, routing):
        assert random_traffic(topo, routing, seed=11) == random_traffic(
            topo, routing, seed=11
        )
