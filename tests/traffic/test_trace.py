"""Tests for traffic traces."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.routing import RoutingScheme
from repro.topology import nsfnet
from repro.traffic import (
    TrafficMatrix,
    TrafficTrace,
    diurnal_trace,
    max_link_utilization,
)


@pytest.fixture(scope="module")
def scenario():
    topo = nsfnet()
    return topo, RoutingScheme.shortest_path(topo)


class TestTrafficTrace:
    def test_length_and_iteration(self, scenario):
        topo, routing = scenario
        trace = diurnal_trace(topo, routing, num_snapshots=6, seed=0)
        assert len(trace) == 6
        snapshots = list(trace)
        assert len(snapshots) == 6
        hour, tm = snapshots[0]
        assert hour == 0.0
        assert isinstance(tm, TrafficMatrix)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(TrafficError):
            TrafficTrace(times=(0.0, 1.0), matrices=(TrafficMatrix(np.zeros((2, 2))),))

    def test_empty_raises(self):
        with pytest.raises(TrafficError):
            TrafficTrace(times=(), matrices=())

    def test_non_increasing_times_raise(self):
        tm = TrafficMatrix(np.zeros((2, 2)))
        with pytest.raises(TrafficError, match="increasing"):
            TrafficTrace(times=(1.0, 1.0), matrices=(tm, tm))


class TestDiurnalTrace:
    def test_peak_near_peak_hour(self, scenario):
        topo, routing = scenario
        trace = diurnal_trace(
            topo, routing, num_snapshots=24, seed=1, peak_hour=20.0, noise=0.0
        )
        peak_time = trace.times[trace.peak_index()]
        assert abs(peak_time - 20.0) <= 2.0

    def test_utilization_within_bounds(self, scenario):
        topo, routing = scenario
        trace = diurnal_trace(
            topo, routing, num_snapshots=12, seed=2,
            low_utilization=0.2, high_utilization=0.8, noise=0.0,
        )
        utils = [max_link_utilization(topo, routing, tm) for _, tm in trace]
        assert min(utils) == pytest.approx(0.2, abs=0.08)
        assert max(utils) == pytest.approx(0.8, abs=0.08)

    def test_spatial_pattern_fixed(self, scenario):
        """Only intensity changes between snapshots, not the pattern."""
        topo, routing = scenario
        trace = diurnal_trace(topo, routing, num_snapshots=4, seed=3)
        first = trace.matrices[0].rates
        for tm in trace.matrices[1:]:
            ratio = tm.rates[first > 0] / first[first > 0]
            assert ratio.std() / ratio.mean() < 1e-9

    def test_deterministic(self, scenario):
        topo, routing = scenario
        a = diurnal_trace(topo, routing, num_snapshots=5, seed=9)
        b = diurnal_trace(topo, routing, num_snapshots=5, seed=9)
        for (_, ta), (_, tb) in zip(a, b):
            assert ta == tb

    def test_bad_bounds_raise(self, scenario):
        topo, routing = scenario
        with pytest.raises(TrafficError):
            diurnal_trace(topo, routing, low_utilization=0.9, high_utilization=0.2)

    def test_model_sweep_follows_load(self, scenario, tiny_samples):
        """End to end: a trained model's predicted mean delay across the day
        correlates with the intensity curve."""
        from repro.core import HyperParams, RouteNet, build_model_input
        from repro.training import Trainer

        topo, routing = scenario
        hp = HyperParams(
            link_state_dim=8, path_state_dim=8, message_passing_steps=2,
            readout_hidden=(12,), learning_rate=3e-3,
        )
        trainer = Trainer(RouteNet(hp, seed=0), seed=1)
        trainer.fit(list(tiny_samples), epochs=10)

        trace = diurnal_trace(topo, routing, num_snapshots=8, seed=4, noise=0.0)
        mean_delays = []
        totals = []
        for _, tm in trace:
            inputs = build_model_input(topo, routing, tm, scaler=trainer.scaler)
            mean_delays.append(
                float(trainer.model.predict(inputs, trainer.scaler).delay.mean())
            )
            totals.append(tm.total())
        corr = np.corrcoef(mean_delays, totals)[0, 1]
        assert corr > 0.8
