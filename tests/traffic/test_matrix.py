"""Tests for TrafficMatrix and link-load computation."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.routing import RoutingScheme
from repro.topology import Topology, nsfnet
from repro.traffic import TrafficMatrix, link_loads, max_link_utilization


def simple_tm(n=3, value=10.0) -> TrafficMatrix:
    rates = np.full((n, n), value)
    np.fill_diagonal(rates, 0.0)
    return TrafficMatrix(rates)


class TestTrafficMatrix:
    def test_rate_lookup(self):
        tm = simple_tm()
        assert tm.rate(0, 1) == 10.0

    def test_total(self):
        assert simple_tm(3, 10.0).total() == 60.0

    def test_non_square_rejected(self):
        with pytest.raises(TrafficError, match="square"):
            TrafficMatrix(np.zeros((2, 3)))

    def test_negative_rate_rejected(self):
        rates = np.zeros((2, 2))
        rates[0, 1] = -1.0
        with pytest.raises(TrafficError, match="non-negative"):
            TrafficMatrix(rates)

    def test_diagonal_traffic_rejected(self):
        rates = np.eye(3)
        with pytest.raises(TrafficError, match="diagonal"):
            TrafficMatrix(rates)

    def test_rates_are_immutable(self):
        tm = simple_tm()
        with pytest.raises(ValueError):
            tm.rates[0, 1] = 99.0

    def test_scaled(self):
        tm = simple_tm().scaled(2.0)
        assert tm.rate(0, 1) == 20.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(TrafficError):
            simple_tm().scaled(-1.0)

    def test_nonzero_pairs_sorted(self):
        rates = np.zeros((3, 3))
        rates[2, 0] = 1.0
        rates[0, 2] = 1.0
        assert TrafficMatrix(rates).nonzero_pairs() == [(0, 2), (2, 0)]

    def test_dict_roundtrip(self):
        tm = simple_tm()
        restored = TrafficMatrix.from_dict(3, tm.to_dict())
        assert restored == tm

    def test_equality(self):
        assert simple_tm() == simple_tm()
        assert simple_tm() != simple_tm(value=5.0)


class TestLinkLoads:
    def test_line_topology_accumulates(self):
        # 0-1-2 line: pair (0,2) loads both hops; (0,1) only the first.
        topo = Topology.from_edges(3, [(0, 1), (1, 2)], capacity=100.0)
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((3, 3))
        rates[0, 2] = 10.0
        rates[0, 1] = 5.0
        tm = TrafficMatrix(rates)
        loads = link_loads(topo, routing, tm)
        assert loads[topo.link_id(0, 1)] == 15.0
        assert loads[topo.link_id(1, 2)] == 10.0
        assert loads[topo.link_id(1, 0)] == 0.0

    def test_total_load_conservation(self):
        """Sum of link loads equals sum of (rate * path hops)."""
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        rng = np.random.default_rng(0)
        rates = rng.uniform(0, 5, size=(14, 14))
        np.fill_diagonal(rates, 0.0)
        tm = TrafficMatrix(rates)
        loads = link_loads(topo, routing, tm)
        expected = sum(
            tm.rate(s, d) * len(routing.link_path(s, d)) for s, d in tm.nonzero_pairs()
        )
        assert loads.sum() == pytest.approx(expected)

    def test_node_count_mismatch_raises(self):
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        with pytest.raises(TrafficError, match="node"):
            link_loads(topo, routing, simple_tm(3))

    def test_max_utilization(self):
        topo = Topology.from_edges(3, [(0, 1), (1, 2)], capacity=100.0)
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((3, 3))
        rates[0, 2] = 50.0
        util = max_link_utilization(topo, routing, TrafficMatrix(rates))
        assert util == pytest.approx(0.5)
