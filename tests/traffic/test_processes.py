"""Tests for arrival processes and packet-size distributions."""

from itertools import islice

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic import (
    PoissonArrivals,
    DeterministicArrivals,
    OnOffArrivals,
    ExponentialPacketSize,
    ConstantPacketSize,
    make_arrivals,
)


def mean_rate_of(process, n=20_000) -> float:
    gaps = list(islice(process.interarrivals(), n))
    return n / sum(gaps)


class TestPoisson:
    def test_long_run_rate(self):
        assert mean_rate_of(PoissonArrivals(50.0, seed=0)) == pytest.approx(50.0, rel=0.05)

    def test_exponential_gaps_cv_near_one(self):
        gaps = np.array(list(islice(PoissonArrivals(10.0, seed=1).interarrivals(), 20_000)))
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_rate_rejected(self):
        with pytest.raises(TrafficError):
            PoissonArrivals(0.0)

    def test_deterministic_under_seed(self):
        a = list(islice(PoissonArrivals(5.0, seed=3).interarrivals(), 10))
        b = list(islice(PoissonArrivals(5.0, seed=3).interarrivals(), 10))
        assert a == b


class TestDeterministic:
    def test_constant_gaps(self):
        gaps = list(islice(DeterministicArrivals(4.0).interarrivals(), 5))
        assert gaps == [0.25] * 5


class TestOnOff:
    def test_long_run_rate_matches_mean(self):
        assert mean_rate_of(OnOffArrivals(20.0, seed=0), n=50_000) == pytest.approx(
            20.0, rel=0.15
        )

    def test_burstier_than_poisson(self):
        gaps = np.array(list(islice(OnOffArrivals(10.0, seed=2).interarrivals(), 50_000)))
        # On-off inter-arrivals have CV > 1 (silence gaps inflate variance).
        assert gaps.std() / gaps.mean() > 1.2

    def test_bad_burstiness_rejected(self):
        with pytest.raises(TrafficError):
            OnOffArrivals(10.0, burstiness=0.5)


class TestPacketSizes:
    def test_exponential_mean(self):
        sizer = ExponentialPacketSize(1000.0, seed=0)
        samples = np.array([sizer.sample() for _ in range(20_000)])
        assert samples.mean() == pytest.approx(1000.0, rel=0.05)

    def test_exponential_floor_one_bit(self):
        sizer = ExponentialPacketSize(0.5, seed=1)
        assert all(sizer.sample() >= 1.0 for _ in range(100))

    def test_constant(self):
        assert ConstantPacketSize(500.0).sample() == 500.0

    def test_bad_mean_rejected(self):
        with pytest.raises(TrafficError):
            ExponentialPacketSize(0.0)


class TestFactory:
    @pytest.mark.parametrize("kind", ["poisson", "deterministic", "onoff"])
    def test_known_kinds(self, kind):
        process = make_arrivals(kind, 10.0, seed=0)
        assert process.mean_rate == 10.0

    def test_unknown_kind_raises(self):
        with pytest.raises(TrafficError, match="unknown arrival"):
            make_arrivals("pareto", 10.0)
