"""The repro.api facade: one-call workflows with typed results."""

import numpy as np
import pytest

import repro
from repro.core import HyperParams
from repro.errors import ModelError
from repro.results import EvalResult, Metrics, PredictResult

SMALL = HyperParams(
    link_state_dim=8, path_state_dim=8, message_passing_steps=2,
    readout_hidden=(8,), learning_rate=2e-3,
)


@pytest.fixture(scope="module")
def trained(tiny_samples):
    return repro.train(list(tiny_samples), epochs=3, hparams=SMALL, seed=4)


class TestTrain:
    def test_returns_typed_result(self, trained):
        assert isinstance(trained, repro.TrainResult)
        assert np.isfinite(trained.final_train_loss)
        assert len(trained.history.epochs) == 3

    def test_checkpoint_kwarg_writes_file(self, tiny_samples, tmp_path):
        path = tmp_path / "model.npz"
        repro.train(
            list(tiny_samples[:2]), epochs=1, hparams=SMALL, seed=1,
            checkpoint=path,
        )
        assert path.exists()


class TestEvaluate:
    def test_typed_metrics(self, trained, tiny_samples):
        result = repro.evaluate(
            trained.model, list(tiny_samples), scaler=trained.scaler
        )
        assert isinstance(result, EvalResult)
        assert isinstance(result.delay, Metrics)
        assert result.delay.mre > 0
        assert result.jitter is not None
        assert result.delay.count == sum(s.num_pairs for s in tiny_samples)

    def test_dict_style_access_still_works(self, trained, tiny_samples):
        result = repro.evaluate(
            trained.model, list(tiny_samples[:2]), scaler=trained.scaler
        )
        with pytest.warns(DeprecationWarning):
            assert result["delay"]["mre"] == result.delay.mre
        assert "jitter" in result

    def test_live_model_without_scaler_rejected(self, trained, tiny_samples):
        with pytest.raises(ModelError):
            repro.evaluate(trained.model, list(tiny_samples[:1]))


class TestPredict:
    def test_single_sample_returns_single_result(self, trained, tiny_samples):
        pred = repro.predict(trained.model, tiny_samples[0], scaler=trained.scaler)
        assert isinstance(pred, PredictResult)
        assert pred.pairs == tiny_samples[0].pairs
        assert pred.delay.shape == (tiny_samples[0].num_pairs,)
        assert (pred.delay > 0).all()

    def test_many_samples_return_aligned_list(self, trained, tiny_samples):
        preds = repro.predict(
            trained.model, list(tiny_samples), scaler=trained.scaler, batch_size=3
        )
        assert isinstance(preds, list)
        assert [p.num_paths for p in preds] == [s.num_pairs for s in tiny_samples]

    def test_checkpoint_roundtrip_preserves_predictions(
        self, trained, tiny_samples, tmp_path
    ):
        """save -> load -> predict through the facade is lossless."""
        before = repro.predict(
            trained.model, list(tiny_samples), scaler=trained.scaler
        )
        path = tmp_path / "roundtrip.npz"
        trained.save(path, note="api-test")
        after = repro.predict(str(path), list(tiny_samples))
        for a, b in zip(before, after):
            np.testing.assert_allclose(a.delay, b.delay, rtol=0.0, atol=1e-12)
            np.testing.assert_allclose(a.jitter, b.jitter, rtol=0.0, atol=1e-12)

    def test_checkpoint_roundtrip_preserves_metrics(
        self, trained, tiny_samples, tmp_path
    ):
        path = tmp_path / "roundtrip.npz"
        trained.save(path)
        live = repro.evaluate(trained.model, list(tiny_samples), scaler=trained.scaler)
        loaded = repro.evaluate(str(path), list(tiny_samples))
        assert loaded.delay.mre == pytest.approx(live.delay.mre, abs=1e-12)

    def test_dataset_path_accepted(self, trained, tiny_samples, tmp_path):
        from repro.dataset import save_dataset

        archive = tmp_path / "samples.jsonl"
        save_dataset(list(tiny_samples[:3]), archive)
        preds = repro.predict(trained.model, str(archive), scaler=trained.scaler)
        assert len(preds) == 3


class TestSimulate:
    def test_named_topology_and_output(self, tmp_path):
        from ..conftest import FAST_CONFIG

        out = tmp_path / "sim.jsonl"
        samples = repro.simulate(
            "synthetic:6:3", 2, seed=5, config=FAST_CONFIG, output=out
        )
        assert len(samples) == 2
        assert out.exists()
        assert all(s.num_pairs > 0 for s in samples)

    def test_topology_object_accepted(self, tiny_topology):
        from ..conftest import FAST_CONFIG

        samples = repro.simulate(tiny_topology, 1, seed=6, config=FAST_CONFIG)
        assert samples[0].topology.num_nodes == tiny_topology.num_nodes
