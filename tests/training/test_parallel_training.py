"""Data-parallel training: determinism pins, crash recovery, partitioning.

The contract under test (see :mod:`repro.training.parallel`):

* ``fit(workers=N)`` produces bitwise-identical parameters and losses to
  ``fit(workers=1)`` for every N — the shard partition never depends on the
  worker count and the reduction order is fixed;
* a single-shard step (``micro_batch >= batch_size``) reproduces the
  in-process fused step bitwise, extending the ``batch_size=1 ≡ fit()``
  oracle chain to the parallel path;
* a worker crash mid-step is recovered through the pool's resubmit path
  without perturbing the trajectory (deterministic recompute).
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import HyperParams, RouteNet
from repro.dataset import fit_scaler
from repro.errors import ModelError
from repro.training import Trainer, default_micro_batch
from repro.training import parallel as parallel_mod
from repro.training.parallel import partition_shards

SMALL = HyperParams(
    link_state_dim=8,
    path_state_dim=8,
    message_passing_steps=2,
    readout_hidden=(12,),
    learning_rate=3e-3,
)


def make_trainer(samples, seed=0, hparams=SMALL):
    trainer = Trainer(RouteNet(hparams, seed=seed), seed=seed + 1)
    trainer.scaler = fit_scaler(samples)
    return trainer


def params_of(trainer):
    return [np.array(p.data, copy=True) for p in trainer.model.parameters()]


class TestPartition:
    def test_consecutive_fixed_shards(self):
        assert partition_shards(range(10), 4) == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]
        assert partition_shards([5, 6], 8) == [(5, 6)]

    def test_bad_micro_batch(self):
        with pytest.raises(ModelError):
            partition_shards([1], 0)

    def test_default_micro_batch_is_worker_independent(self):
        # Up-to-four-shards default: the partition is a function of the
        # batch alone, which is what makes workers=N ≡ workers=1 possible.
        assert default_micro_batch(16) == 4
        assert default_micro_batch(6) == 2
        assert default_micro_batch(1) == 1


class TestBitwiseWorkerIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_fit_workers_matches_inline(self, tiny_samples, workers):
        """The oracle pin: any worker count reproduces workers=1 bitwise."""
        inline = make_trainer(tiny_samples)
        hist_inline = inline.fit(list(tiny_samples), epochs=2, batch_size=4,
                                 workers=1, micro_batch=2)
        parallel = make_trainer(tiny_samples)
        hist_parallel = parallel.fit(list(tiny_samples), epochs=2, batch_size=4,
                                     workers=workers, micro_batch=2)
        assert hist_inline.train_losses == hist_parallel.train_losses
        for pa, pb in zip(params_of(inline), params_of(parallel)):
            assert np.array_equal(pa, pb)

    def test_mixed_topology_batches(self, nsfnet_samples, tiny_samples):
        """Heterogeneous shard sizes keep the path-count weighting exact."""
        mixed = [nsfnet_samples[0], tiny_samples[0], nsfnet_samples[1],
                 tiny_samples[1], nsfnet_samples[2], tiny_samples[2]]
        assert len({len(s.pairs) for s in mixed}) > 1
        inline = make_trainer(mixed)
        h1 = inline.fit(list(mixed), epochs=2, batch_size=3, workers=1,
                        micro_batch=1)
        spread = make_trainer(mixed)
        h2 = spread.fit(list(mixed), epochs=2, batch_size=3, workers=2,
                        micro_batch=1)
        assert h1.train_losses == h2.train_losses
        for pa, pb in zip(params_of(inline), params_of(spread)):
            assert np.array_equal(pa, pb)

    def test_single_shard_reproduces_fused_step(self, tiny_samples):
        """micro_batch >= batch_size ≡ the single-process fused path, bitwise."""
        fused = make_trainer(tiny_samples)
        hist_fused = fused.fit(list(tiny_samples), epochs=3, batch_size=4)
        single = make_trainer(tiny_samples)
        hist_single = single.fit(list(tiny_samples), epochs=3, batch_size=4,
                                 workers=1, micro_batch=4)
        assert hist_fused.train_losses == hist_single.train_losses
        for pa, pb in zip(params_of(fused), params_of(single)):
            assert np.array_equal(pa, pb)

    def test_stepper_reuse_across_epochs(self, tiny_samples):
        """Driving the stepper manually matches fit(workers=1) bitwise."""
        via_fit = make_trainer(tiny_samples)
        via_fit.fit(list(tiny_samples), epochs=2, batch_size=4, workers=1,
                    micro_batch=2)
        manual = make_trainer(tiny_samples)
        batch_indices = [tuple(range(0, 4)), tuple(range(4, 8))]
        with manual.parallel_stepper(list(tiny_samples), workers=1,
                                     micro_batch=2) as stepper:
            for _ in range(2):
                order = np.arange(len(batch_indices))
                manual._rng.shuffle(order)
                for j in order:
                    stepper.step(batch_indices[j])
        for pa, pb in zip(params_of(via_fit), params_of(manual)):
            assert np.array_equal(pa, pb)


class TestValidation:
    def test_micro_batch_without_workers_raises(self, tiny_samples):
        trainer = make_trainer(tiny_samples)
        with pytest.raises(ModelError, match="micro_batch requires workers"):
            trainer.fit(list(tiny_samples), epochs=1, micro_batch=2)

    def test_bad_workers(self, tiny_samples):
        trainer = make_trainer(tiny_samples)
        with pytest.raises(ModelError):
            trainer.fit(list(tiny_samples), epochs=1, workers=0)

    def test_dropout_rejected(self, tiny_samples):
        hp = HyperParams(link_state_dim=8, path_state_dim=8,
                         message_passing_steps=2, readout_hidden=(12,),
                         dropout=0.2)
        trainer = make_trainer(tiny_samples, hparams=hp)
        with pytest.raises(ModelError, match="dropout"):
            trainer.fit(list(tiny_samples), epochs=1, workers=1)

    def test_stepper_empty_batch(self, tiny_samples):
        trainer = make_trainer(tiny_samples)
        with trainer.parallel_stepper(list(tiny_samples), workers=1) as stepper:
            with pytest.raises(ModelError, match="empty batch"):
                stepper.step([])


# --- crash recovery -------------------------------------------------------

#: Flag-file path for the one-shot sabotage below; set by the test before
#: the pool forks, inherited by the worker process.
_CRASH_FLAG = None
_REAL_WORKER = parallel_mod._grad_shard_worker


def _sabotaged_worker(state, broadcast, payload):
    """Kill the worker process (no exception) the first time shard (0,) runs."""
    if _CRASH_FLAG is not None and tuple(payload) == (0, 1):
        if not os.path.exists(_CRASH_FLAG):
            with open(_CRASH_FLAG, "w"):
                pass
            os._exit(23)
    return _REAL_WORKER(state, broadcast, payload)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sabotage hook relies on fork inheriting the patched module",
)
class TestCrashRecovery:
    def test_worker_crash_mid_step_does_not_perturb_training(
        self, tiny_samples, monkeypatch, tmp_path
    ):
        global _CRASH_FLAG
        clean = make_trainer(tiny_samples)
        hist_clean = clean.fit(list(tiny_samples), epochs=2, batch_size=4,
                               workers=2, micro_batch=2)

        monkeypatch.setattr(parallel_mod, "_grad_shard_worker", _sabotaged_worker)
        _CRASH_FLAG = str(tmp_path / "crashed-once")
        try:
            crashed = make_trainer(tiny_samples)
            with crashed.parallel_stepper(list(tiny_samples), workers=2,
                                          micro_batch=2) as stepper:
                batch_indices = [tuple(range(0, 4)), tuple(range(4, 8))]
                losses = []
                for _ in range(2):
                    order = np.arange(len(batch_indices))
                    crashed._rng.shuffle(order)
                    for j in order:
                        loss, _paths = stepper.step(batch_indices[j])
                        losses.append(loss)
                assert os.path.exists(_CRASH_FLAG), "sabotage never fired"
                assert stepper.pool_stats.restarts >= 1
                assert stepper.pool_stats.resubmitted >= 1
        finally:
            _CRASH_FLAG = None
        # The resubmitted shard recomputed bitwise-identically: the crashed
        # run's trajectory is indistinguishable from the clean run's.
        for pa, pb in zip(params_of(clean), params_of(crashed)):
            assert np.array_equal(pa, pb)
