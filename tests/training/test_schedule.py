"""Tests for LR schedules and early stopping, standalone and in Trainer.fit."""

import pytest

from repro.core import HyperParams, RouteNet
from repro.errors import ModelError
from repro.training import (
    EarlyStopping,
    ReduceOnPlateau,
    StepDecay,
    Trainer,
)

TINY = HyperParams(
    link_state_dim=8, path_state_dim=8, message_passing_steps=2,
    readout_hidden=(12,), learning_rate=3e-3,
)


class TestStepDecay:
    def test_constant_within_window(self):
        schedule = StepDecay(1e-2, factor=0.5, every=5)
        assert schedule.lr(1) == schedule.lr(5) == 1e-2

    def test_halves_at_boundary(self):
        schedule = StepDecay(1e-2, factor=0.5, every=5)
        assert schedule.lr(6) == pytest.approx(5e-3)
        assert schedule.lr(11) == pytest.approx(2.5e-3)

    def test_min_lr_floor(self):
        schedule = StepDecay(1e-2, factor=0.1, every=1, min_lr=1e-4)
        assert schedule.lr(100) == 1e-4

    def test_zero_epoch_rejected(self):
        with pytest.raises(ModelError):
            StepDecay(1e-2).lr(0)

    def test_bad_params_rejected(self):
        with pytest.raises(ModelError):
            StepDecay(0.0)
        with pytest.raises(ModelError):
            StepDecay(1e-2, factor=1.5)


class TestReduceOnPlateau:
    def test_no_reduction_while_improving(self):
        schedule = ReduceOnPlateau(1e-2, patience=2)
        for metric in (1.0, 0.9, 0.8):
            assert schedule.observe(metric) == 1e-2

    def test_reduces_after_patience(self):
        schedule = ReduceOnPlateau(1e-2, factor=0.5, patience=2)
        schedule.observe(1.0)
        schedule.observe(1.0)
        assert schedule.observe(1.0) == pytest.approx(5e-3)

    def test_counter_resets_on_improvement(self):
        schedule = ReduceOnPlateau(1e-2, factor=0.5, patience=2)
        schedule.observe(1.0)
        schedule.observe(1.0)      # stale 1
        schedule.observe(0.5)      # improvement resets
        schedule.observe(0.5)      # stale 1
        assert schedule.current_lr == 1e-2

    def test_min_lr(self):
        schedule = ReduceOnPlateau(1e-2, factor=0.01, patience=1, min_lr=1e-3)
        schedule.observe(1.0)
        schedule.observe(1.0)
        schedule.observe(1.0)
        assert schedule.current_lr == 1e-3


class TestEarlyStopping:
    def test_no_stop_while_improving(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.should_stop(1.0)
        assert not stopper.should_stop(0.9)

    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        stopper.should_stop(1.0)
        assert not stopper.should_stop(1.0)
        assert stopper.should_stop(1.0)

    def test_best_tracked(self):
        stopper = EarlyStopping(patience=3)
        stopper.should_stop(1.0)
        stopper.should_stop(0.7)
        assert stopper.best == 0.7

    def test_bad_patience(self):
        with pytest.raises(ModelError):
            EarlyStopping(patience=0)


class TestTrainerIntegration:
    def test_step_decay_changes_optimizer_lr(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        schedule = StepDecay(3e-3, factor=0.1, every=2)
        trainer.fit(tiny_samples[:3], epochs=3, schedule=schedule)
        assert trainer._optimizer.lr == pytest.approx(3e-4)

    def test_early_stopping_halts(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        # A huge min_delta means no epoch ever counts as an improvement, so
        # training must stop right after `patience` epochs.
        history = trainer.fit(
            tiny_samples[:3],
            epochs=50,
            early_stopping=EarlyStopping(patience=2, min_delta=100.0),
        )
        # Epoch 1 sets the best (anything beats +inf); epochs 2-3 are stale.
        assert len(history.epochs) == 3

    def test_plateau_schedule_runs(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        schedule = ReduceOnPlateau(3e-3, patience=1)
        trainer.fit(tiny_samples[:3], epochs=4, schedule=schedule)
        assert trainer._optimizer.lr <= 3e-3

    def test_plateau_initial_lr_applied_before_first_step(self, tiny_samples):
        """Regression: metric-driven schedules only assigned the LR *after*
        observing an epoch, so epoch 1 silently trained at
        ``hparams.learning_rate`` instead of the schedule's ``initial_lr``."""
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        assert trainer._optimizer.lr == pytest.approx(TINY.learning_rate)
        schedule = ReduceOnPlateau(1e-4, patience=10)
        assert schedule.current_lr != pytest.approx(TINY.learning_rate)
        seen = []
        real_step = trainer.train_step

        def recording_step(sample):
            seen.append(trainer._optimizer.lr)
            return real_step(sample)

        trainer.train_step = recording_step
        trainer.fit(tiny_samples[:3], epochs=1, schedule=schedule)
        assert seen and all(lr == pytest.approx(1e-4) for lr in seen)
