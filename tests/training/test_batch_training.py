"""Fused-batch training: gradient equivalence, caching, fit(batch_size=...).

The fused fast path packs B samples into one ``ModelInput`` and takes the
gradient of the mean per-path loss over the concatenated batch.  These tests
pin the documented semantics:

* a batch of one delegates to :meth:`Trainer.train_step` (bit-identical);
* the fused gradient equals the accumulated per-sample gradients weighted by
  path count (``loss_i * P_i / P_total``) within floating-point tolerance —
  the two computations sum the same per-path terms in different orders, so
  equality is ``rtol=1e-9``, not bitwise;
* ``fit(batch_size=1)`` takes the historical per-sample code path exactly;
* packed batches are content-cached across epochs.
"""

import numpy as np
import pytest

from repro.core import HyperParams, RouteNet
from repro.dataset import fit_scaler
from repro.errors import ModelError
from repro.training import Trainer
from repro.training.loss import huber_loss

SMALL = HyperParams(
    link_state_dim=8,
    path_state_dim=8,
    message_passing_steps=2,
    readout_hidden=(12,),
    learning_rate=3e-3,
)


def make_trainer(samples, seed=0):
    trainer = Trainer(RouteNet(SMALL, seed=seed), seed=seed + 1)
    trainer.scaler = fit_scaler(samples)
    return trainer


def fused_grads(trainer, samples):
    """Parameter gradients of one fused-batch loss (no optimizer step)."""
    inputs, targets = trainer._prepare_batch(samples)
    trainer._optimizer.zero_grad()
    loss = huber_loss(trainer.model.forward(inputs, training=True), targets)
    loss.backward()
    return float(loss.item()), [p.grad.copy() for p in trainer.model.parameters()]


def accumulated_grads(trainer, samples):
    """Reference: per-sample losses accumulated with path-count weights."""
    prepared = [trainer._prepare(s) for s in samples]
    total_paths = sum(t.shape[0] for _, t in prepared)
    trainer._optimizer.zero_grad()
    total = None
    for inputs, targets in prepared:
        weight = targets.shape[0] / total_paths
        term = huber_loss(trainer.model.forward(inputs, training=True), targets) * weight
        total = term if total is None else total + term
    total.backward()
    return float(total.item()), [p.grad.copy() for p in trainer.model.parameters()]


class TestGradientEquivalence:
    def test_homogeneous_nsfnet_batch(self, nsfnet_samples):
        batch = list(nsfnet_samples[:4])
        trainer = make_trainer(batch)
        fused_loss, fused = fused_grads(trainer, batch)
        acc_loss, acc = accumulated_grads(trainer, batch)
        assert fused_loss == pytest.approx(acc_loss, rel=1e-12)
        for g_fused, g_acc in zip(fused, acc):
            np.testing.assert_allclose(g_fused, g_acc, rtol=1e-9, atol=1e-12)

    def test_mixed_topology_batch(self, nsfnet_samples, tiny_samples):
        """Samples of different sizes: weighting is by path count, not 1/B."""
        batch = [nsfnet_samples[0], tiny_samples[0], nsfnet_samples[1], tiny_samples[1]]
        trainer = make_trainer(batch)
        path_counts = {len(s.pairs) for s in batch}
        assert len(path_counts) > 1, "batch must be heterogeneous"
        fused_loss, fused = fused_grads(trainer, batch)
        acc_loss, acc = accumulated_grads(trainer, batch)
        assert fused_loss == pytest.approx(acc_loss, rel=1e-12)
        for g_fused, g_acc in zip(fused, acc):
            np.testing.assert_allclose(g_fused, g_acc, rtol=1e-9, atol=1e-12)


class TestTrainStepBatch:
    def test_single_sample_batch_delegates(self, tiny_samples):
        a = make_trainer(tiny_samples)
        b = make_trainer(tiny_samples)
        for sample in tiny_samples[:3]:
            loss_single = a.train_step(sample)
            loss_batch = b.train_step_batch([sample])
            assert loss_single == loss_batch  # same code path, bit-identical
        for pa, pb in zip(a.model.parameters(), b.model.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_empty_batch_raises(self, tiny_samples):
        trainer = make_trainer(tiny_samples)
        with pytest.raises(ModelError):
            trainer.train_step_batch([])

    def test_fused_batch_is_content_cached(self, tiny_samples):
        trainer = make_trainer(tiny_samples)
        batch = list(tiny_samples[:4])
        first = trainer._prepare_batch(batch)
        again = trainer._prepare_batch(batch)
        assert again[0] is first[0]  # replayed from the cache, not repacked


class TestFitBatchSize:
    def test_batch_size_one_reproduces_per_sample_fit(self, tiny_samples):
        """``batch_size=1`` is the historical loop: identical trajectories."""
        a = make_trainer(tiny_samples)
        b = make_trainer(tiny_samples)
        hist_a = a.fit(list(tiny_samples), epochs=3)
        hist_b = b.fit(list(tiny_samples), epochs=3, batch_size=1)
        assert hist_a.train_losses == hist_b.train_losses
        for pa, pb in zip(a.model.parameters(), b.model.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_batched_fit_learns(self, tiny_samples):
        trainer = make_trainer(tiny_samples)
        history = trainer.fit(list(tiny_samples), epochs=8, batch_size=4)
        losses = history.train_losses
        assert len(losses) == 8
        assert losses[-1] < losses[0]

    def test_bad_batch_size_raises(self, tiny_samples):
        trainer = make_trainer(tiny_samples)
        with pytest.raises(ModelError):
            trainer.fit(list(tiny_samples), epochs=1, batch_size=0)

    def test_epoch_loss_weighted_by_path_count(self, tiny_samples):
        """Regression: the epoch loss used to be ``np.mean`` over per-batch
        losses, giving a ragged final batch (3 of 8 samples here) the same
        weight as a full one.  It must be the path-count-weighted average —
        i.e. the mean per-path loss over the whole epoch."""
        trainer = make_trainer(tiny_samples)
        recorded = []
        real_step = trainer.train_step_batch

        def recording_step(batch):
            loss = real_step(batch)
            recorded.append((loss, sum(len(s.pairs) for s in batch)))
            return loss

        trainer.train_step_batch = recording_step
        history = trainer.fit(list(tiny_samples), epochs=1, batch_size=5)
        losses = [loss for loss, _ in recorded]
        weights = [paths for _, paths in recorded]
        assert len(losses) == 2 and weights[0] != weights[1]
        expected = float(np.average(losses, weights=weights))
        assert history.train_losses[0] == expected
        # The buggy unweighted mean differs whenever the batch losses do.
        if losses[0] != losses[1]:
            assert history.train_losses[0] != float(np.mean(losses))

    def test_epoch_loss_weighted_per_sample_path(self, tiny_samples, nsfnet_samples):
        """Same pin for the batch_size=1 path, where per-sample path counts
        differ across topologies."""
        mixed = [tiny_samples[0], nsfnet_samples[0], tiny_samples[1]]
        trainer = make_trainer(mixed)
        recorded = []
        real_step = trainer.train_step

        def recording_step(sample):
            loss = real_step(sample)
            recorded.append((loss, len(sample.pairs)))
            return loss

        trainer.train_step = recording_step
        history = trainer.fit(list(mixed), epochs=1)
        losses = [loss for loss, _ in recorded]
        weights = [paths for _, paths in recorded]
        assert len(set(weights)) > 1
        assert history.train_losses[0] == float(np.average(losses, weights=weights))
