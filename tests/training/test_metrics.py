"""Tests for regression metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training import (
    relative_errors,
    mean_relative_error,
    median_relative_error,
    rmse,
    r_squared,
    pearson,
    regression_summary,
)


class TestRelativeErrors:
    def test_signed_values(self):
        err = relative_errors(np.array([1.1, 0.9]), np.array([1.0, 1.0]))
        np.testing.assert_allclose(err, [0.1, -0.1])

    def test_perfect_prediction(self):
        true = np.array([0.5, 2.0])
        assert mean_relative_error(true, true) == 0.0

    def test_nonpositive_truth_raises(self):
        with pytest.raises(ValueError, match="positive"):
            relative_errors(np.ones(2), np.array([1.0, 0.0]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            relative_errors(np.ones(2), np.ones(3))

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            relative_errors(np.array([]), np.array([]))

    def test_median_robust_to_outlier(self):
        true = np.ones(11)
        pred = np.ones(11) * 1.05
        pred[0] = 100.0
        assert median_relative_error(pred, true) == pytest.approx(0.05)


class TestFitMetrics:
    def test_rmse_known(self):
        assert rmse(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(5.0)
        )

    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        true = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r_squared(pred, true) == pytest.approx(0.0)

    def test_r2_constant_truth(self):
        true = np.full(3, 2.0)
        assert r_squared(true, true) == 1.0
        assert r_squared(np.array([1.0, 2.0, 3.0]), true) == 0.0

    def test_pearson_sign(self):
        true = np.array([1.0, 2.0, 3.0])
        assert pearson(true, true) == pytest.approx(1.0)
        assert pearson(-true, true) == pytest.approx(-1.0)

    def test_pearson_zero_variance(self):
        assert pearson(np.full(3, 1.0), np.array([1.0, 2.0, 3.0])) == 0.0

    def test_summary_keys(self):
        s = regression_summary(np.array([1.0, 2.0]), np.array([1.1, 2.1]))
        assert set(s) == {"mre", "medre", "rmse", "r2", "pearson", "count"}
        assert s["count"] == 2.0

    @given(
        scale=st.floats(0.5, 2.0),
        n=st.integers(3, 50),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30)
    def test_property_scaling_prediction_mre(self, scale, n, seed):
        """Predicting scale*true gives MRE == |scale - 1| exactly."""
        rng = np.random.default_rng(seed)
        true = rng.uniform(0.1, 5.0, size=n)
        assert mean_relative_error(scale * true, true) == pytest.approx(
            abs(scale - 1.0)
        )
