"""Tests for the RouteNet trainer: learning progress, caching, evaluation."""

import numpy as np
import pytest

from repro.core import HyperParams, RouteNet
from repro.errors import ModelError
from repro.training import Trainer

TINY = HyperParams(
    link_state_dim=8,
    path_state_dim=8,
    message_passing_steps=2,
    readout_hidden=(12,),
    learning_rate=3e-3,
)


class TestFit:
    def test_loss_decreases(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        history = trainer.fit(tiny_samples, epochs=8)
        losses = history.train_losses
        assert losses[-1] < losses[0]

    def test_history_records_epochs(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        history = trainer.fit(tiny_samples, epochs=3)
        assert [e.epoch for e in history.epochs] == [1, 2, 3]
        assert history.last().epoch == 3

    def test_eval_metric_recorded(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        history = trainer.fit(
            tiny_samples[:6], epochs=2, eval_samples=tiny_samples[6:]
        )
        assert history.last().eval_delay_mre is not None

    def test_scaler_fit_automatically(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        assert trainer.scaler is None
        trainer.fit(tiny_samples, epochs=1)
        assert trainer.scaler is not None

    def test_log_callback_invoked(self, tiny_samples):
        lines = []
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples, epochs=2, log=lines.append)
        assert len(lines) == 2
        assert "loss" in lines[0]

    def test_empty_train_set_raises(self):
        trainer = Trainer(RouteNet(TINY, seed=0))
        with pytest.raises(ModelError):
            trainer.fit([], epochs=1)

    def test_bad_epochs_raises(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0))
        with pytest.raises(ModelError):
            trainer.fit(tiny_samples, epochs=0)

    def test_input_cache_reused(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples, epochs=2)
        assert len(trainer._input_cache) == len(tiny_samples)


class TestEvaluatePredict:
    def test_learns_structure(self, tiny_samples):
        """After training, the model must beat the scale-only baseline
        (predicting the dataset mean for everything)."""
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples, epochs=25)
        metrics = trainer.evaluate(tiny_samples)
        true = np.concatenate([s.delay for s in tiny_samples])
        mean_baseline_mre = float(np.abs(true.mean() - true).mean() / true.mean())
        assert metrics.delay.mre < mean_baseline_mre
        assert metrics.delay.pearson > 0.7

    def test_predict_sample_shapes(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples, epochs=1)
        pred = trainer.predict_sample(tiny_samples[0])
        assert pred.delay.shape == (tiny_samples[0].num_pairs,)
        assert (pred.delay > 0).all()

    def test_evaluate_before_fit_raises(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0))
        with pytest.raises(ModelError, match="scaler"):
            trainer.evaluate(tiny_samples)

    def test_evaluate_empty_raises(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples, epochs=1)
        with pytest.raises(ModelError):
            trainer.evaluate([])

    def test_include_load_feature(self, tiny_samples):
        """Trainer can feed analytic per-link load as a second link feature
        (model must be built with link_feature_dim=2)."""
        hp = HyperParams(
            link_state_dim=8, path_state_dim=8, message_passing_steps=2,
            readout_hidden=(12,), learning_rate=3e-3, link_feature_dim=2,
        )
        trainer = Trainer(RouteNet(hp, seed=0), include_load=True, seed=1)
        history = trainer.fit(list(tiny_samples[:4]), epochs=2)
        assert len(history.epochs) == 2
        pred = trainer.predict_sample(tiny_samples[0])
        assert (pred.delay > 0).all()

    def test_divergence_detected(self, tiny_samples):
        """A NaN loss must raise instead of silently corrupting weights."""
        import numpy as np

        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples[:2], epochs=1)
        # Poison the readout weights to force a non-finite forward pass.
        trainer.model.readout.layers[-1].weight.data[:] = np.nan
        with pytest.raises(ModelError, match="diverged"):
            trainer.train_step(tiny_samples[0])

    def test_single_target_model_trains(self, tiny_samples):
        hp = HyperParams(
            link_state_dim=8, path_state_dim=8, message_passing_steps=2,
            readout_hidden=(12,), readout_targets=1, learning_rate=3e-3,
        )
        trainer = Trainer(RouteNet(hp, seed=0), seed=1)
        trainer.fit(tiny_samples, epochs=2)
        metrics = trainer.evaluate(tiny_samples)
        assert "jitter" not in metrics

    def test_evaluate_all_zero_jitter_returns_none(self, tiny_samples):
        """Regression: the zero-jitter filter can leave nothing to pool
        (deterministic traffic); evaluate must report jitter=None, not crash
        on an empty concatenation."""
        import dataclasses

        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples, epochs=1)
        flat = [
            dataclasses.replace(s, jitter=np.zeros_like(s.jitter))
            for s in tiny_samples
        ]
        result = trainer.evaluate(flat)
        assert result.jitter is None
        assert np.isfinite(result.delay.mre)


class TestEngineReuse:
    def test_engine_cached_when_config_unchanged(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples[:2], epochs=1)
        assert trainer.engine() is trainer.engine()

    def test_engine_rebuilt_on_scaler_change(self, tiny_samples):
        from repro.dataset import fit_scaler

        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples[:2], epochs=1)
        first = trainer.engine()
        trainer.scaler = fit_scaler(list(tiny_samples))
        second = trainer.engine()
        assert second is not first
        assert second.scaler is trainer.scaler

    def test_engine_rebuilt_on_include_load_change(self, tiny_samples):
        """Regression: only the scaler identity used to be checked, so
        flipping include_load kept serving an engine built for the old
        feature layout."""
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples[:2], epochs=1)
        first = trainer.engine()
        trainer.include_load = True
        assert trainer.engine() is not first
        trainer.include_load = False
        rebuilt = trainer.engine()
        assert rebuilt is not first  # stale engines are never resurrected

    def test_engine_rebuilt_on_model_swap(self, tiny_samples):
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples[:2], epochs=1)
        first = trainer.engine()
        trainer.model = RouteNet(TINY, seed=9)
        second = trainer.engine()
        assert second is not first
        assert second.model is trainer.model

    def test_engine_rebuilt_on_batch_size_change(self, tiny_samples):
        """Regression: a changed batch_size used to be patched onto the
        cached engine (``engine.batch_size = N``), silently contradicting
        its frozen ``ServeConfig.max_batch``.  It must rebuild instead."""
        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples[:2], epochs=1)
        first = trainer.engine(batch_size=8)
        assert first.config.max_batch == 8
        second = trainer.engine(batch_size=64)
        assert second is not first
        assert second.batch_size == 64
        assert second.config.max_batch == 64
        # Same batch_size again: still cached.
        assert trainer.engine(batch_size=64) is second


class TestEngineWeakrefGuard:
    """Regression: the engine state used to be keyed on ``id(model)`` /
    ``id(scaler)``.  A garbage-collected object whose address the allocator
    recycles onto a new model/scaler would have validated a stale engine.
    Validation now compares weakref *referents*, so a dead referent can
    never validate — whatever ids get recycled."""

    def test_state_holds_weakrefs_to_current_config(self, tiny_samples):
        import weakref

        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples[:2], epochs=1)
        trainer.engine()
        model_ref, scaler_ref = trainer._engine_state[0], trainer._engine_state[1]
        assert isinstance(model_ref, weakref.ref)
        assert isinstance(scaler_ref, weakref.ref)
        assert model_ref() is trainer.model and scaler_ref() is trainer.scaler

    def test_dead_model_referent_never_validates(self, tiny_samples):
        """Even when a live object sits at the dead model's recycled id (the
        current ``trainer.model`` plays that role here), a dead weakref in
        the state must force a rebuild."""
        import gc
        import weakref

        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples[:2], epochs=1)
        first = trainer.engine()

        doomed = RouteNet(TINY, seed=9)
        dead_ref = weakref.ref(doomed)
        del doomed
        gc.collect()
        assert dead_ref() is None
        trainer._engine_state = (
            dead_ref,
            trainer._engine_state[1],
            trainer.model.hparams,
            trainer.include_load,
        )
        second = trainer.engine()
        assert second is not first
        assert second.model is trainer.model

    def test_dead_scaler_referent_never_validates(self, tiny_samples):
        import gc
        import weakref

        from repro.dataset import fit_scaler

        trainer = Trainer(RouteNet(TINY, seed=0), seed=1)
        trainer.fit(tiny_samples[:2], epochs=1)
        first = trainer.engine()

        doomed = fit_scaler(tiny_samples)
        dead_ref = weakref.ref(doomed)
        del doomed
        gc.collect()
        assert dead_ref() is None
        trainer._engine_state = (
            trainer._engine_state[0],
            dead_ref,
            trainer.model.hparams,
            trainer.include_load,
        )
        assert trainer.engine() is not first
