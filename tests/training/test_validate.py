"""Tests for k-fold cross-validation."""

import pytest

from repro.core import HyperParams
from repro.errors import ModelError
from repro.training import cross_validate

TINY = HyperParams(
    link_state_dim=8, path_state_dim=8, message_passing_steps=2,
    readout_hidden=(12,), learning_rate=3e-3,
)


class TestCrossValidate:
    def test_fold_count_and_sizes(self, tiny_samples):
        result = cross_validate(list(tiny_samples), TINY, k=4, epochs=2, seed=0)
        assert len(result.folds) == 4
        total_eval = sum(f.eval_size for f in result.folds)
        assert total_eval == len(tiny_samples)
        for fold in result.folds:
            assert fold.train_size + fold.eval_size == len(tiny_samples)

    def test_metrics_finite(self, tiny_samples):
        result = cross_validate(list(tiny_samples), TINY, k=2, epochs=3, seed=1)
        assert result.mean_mre > 0
        assert result.std_mre >= 0

    def test_deterministic(self, tiny_samples):
        a = cross_validate(list(tiny_samples), TINY, k=2, epochs=2, seed=5)
        b = cross_validate(list(tiny_samples), TINY, k=2, epochs=2, seed=5)
        assert a.mean_mre == b.mean_mre

    def test_repr(self, tiny_samples):
        result = cross_validate(list(tiny_samples), TINY, k=2, epochs=1, seed=0)
        assert "mre=" in repr(result)

    def test_bad_k_raises(self, tiny_samples):
        with pytest.raises(ModelError):
            cross_validate(list(tiny_samples), TINY, k=1)

    def test_too_few_samples_raises(self, tiny_samples):
        with pytest.raises(ModelError):
            cross_validate(list(tiny_samples[:2]), TINY, k=4)
