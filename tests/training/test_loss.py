"""Tests for training losses."""

import numpy as np
import pytest

from repro import nn
from repro.training import mse_loss, mae_loss, huber_loss


def _pred(values):
    return nn.Tensor(np.asarray(values, dtype=float), requires_grad=True)


class TestLosses:
    def test_mse_value(self):
        loss = mse_loss(_pred([1.0, 3.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_mae_value(self):
        loss = mae_loss(_pred([1.0, -3.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_huber_below_delta_is_half_mse(self):
        pred = _pred([0.5])
        assert huber_loss(pred, np.array([0.0])).item() == pytest.approx(0.125)

    def test_huber_above_delta_linear(self):
        pred = _pred([10.0])
        assert huber_loss(pred, np.array([0.0])).item() == pytest.approx(9.5)

    def test_all_losses_zero_at_target(self):
        target = np.array([1.0, -2.0, 0.5])
        for fn in (mse_loss, mae_loss, huber_loss):
            assert fn(_pred(target), target).item() == pytest.approx(0.0)

    def test_gradients_flow(self):
        for fn in (mse_loss, mae_loss, huber_loss):
            pred = _pred([1.0, 2.0])
            fn(pred, np.array([0.0, 0.0])).backward()
            assert pred.grad is not None
            assert (pred.grad != 0).all()

    def test_huber_gradient_bounded(self):
        """Huber gradient magnitude never exceeds delta/n (outlier robustness)."""
        pred = _pred([100.0, -100.0])
        huber_loss(pred, np.zeros(2), delta=1.0).backward()
        assert np.abs(pred.grad).max() <= 0.5 + 1e-12
