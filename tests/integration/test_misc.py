"""Cross-cutting odds and ends: CLI helpers, serialization guards,
event-queue ordering property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.cli.commands import _resolve_topology
from repro.simulator import EventQueue


class TestResolveTopology:
    def test_reference_name(self):
        assert _resolve_topology("nsfnet").num_nodes == 14

    def test_synthetic_spec(self):
        topo = _resolve_topology("synthetic:12")
        assert topo.num_nodes == 12

    def test_synthetic_spec_with_seed_deterministic(self):
        a = _resolve_topology("synthetic:10:7")
        b = _resolve_topology("synthetic:10:7")
        assert a == b

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            _resolve_topology("arpanet")


class TestSerializationGuards:
    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            nn.save_state(tmp_path / "x.npz", {"__meta__": np.zeros(1)})

    def test_meta_roundtrip_unicode(self, tmp_path):
        path = tmp_path / "x.npz"
        nn.save_state(path, {"w": np.ones(2)}, meta={"note": "Geant2 — ünïcode"})
        _, meta = nn.load_state(path)
        assert meta["note"] == "Geant2 — ünïcode"


class TestEventQueueProperty:
    @given(times=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_pops_in_nondecreasing_time_order(self, times):
        q = EventQueue()
        for i, t in enumerate(times):
            q.push(t, i)
        popped = [q.pop()[0] for _ in range(len(times))]
        assert popped == sorted(popped)

    @given(n=st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_equal_times_preserve_insertion_order(self, n):
        q = EventQueue()
        for i in range(n):
            q.push(1.0, i)
        assert [q.pop()[1] for _ in range(n)] == list(range(n))
