"""Tests for the experiments workbench (profiles, caching, artifact reuse).

Uses a micro profile in a temp directory so the tests stay fast and never
touch the repository's real ``data/`` cache.
"""

import pytest

from repro.core import HyperParams
from repro.dataset import GenerationConfig
from repro.experiments import ExperimentProfile, PAPER_SMALL, SMOKE, Workbench

MICRO = ExperimentProfile(
    name="micro-test",
    nsfnet_train=2,
    nsfnet_eval=1,
    syn50_train=1,
    syn50_eval=1,
    geant2_eval=1,
    variable_sizes=(8,),
    variable_samples_per_size=1,
    epochs=1,
    hyperparams=HyperParams(
        link_state_dim=4, path_state_dim=4, message_passing_steps=1,
        readout_hidden=(6,), learning_rate=3e-3,
    ),
    nsfnet_gen=GenerationConfig(target_packets_per_pair=30, min_delivered=5),
    syn50_gen=GenerationConfig(
        target_packets_per_pair=30, min_delivered=5, active_fraction=0.05
    ),
    geant2_gen=GenerationConfig(
        target_packets_per_pair=30, min_delivered=5, active_fraction=0.2
    ),
)


@pytest.fixture(scope="module")
def workbench(tmp_path_factory):
    return Workbench(MICRO, cache_dir=tmp_path_factory.mktemp("wb"), log=None)


class TestProfiles:
    def test_builtin_profiles_valid(self):
        assert PAPER_SMALL.name == "paper-small"
        assert SMOKE.epochs < PAPER_SMALL.epochs

    def test_profile_is_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_SMALL.epochs = 1


class TestDatasets:
    def test_counts_match_profile(self, workbench):
        assert len(workbench.nsfnet_train()) == MICRO.nsfnet_train
        assert len(workbench.geant2_eval()) == MICRO.geant2_eval

    def test_cache_files_written(self, workbench):
        workbench.nsfnet_train()
        assert (workbench.cache_dir / "micro-test-nsfnet-train.jsonl").exists()

    def test_memoized_same_objects(self, workbench):
        assert workbench.nsfnet_train() is workbench.nsfnet_train()

    def test_reload_from_disk(self, workbench):
        workbench.nsfnet_train()
        fresh = Workbench(MICRO, cache_dir=workbench.cache_dir, log=None)
        reloaded = fresh.nsfnet_train()
        assert len(reloaded) == MICRO.nsfnet_train
        import numpy as np

        np.testing.assert_array_equal(
            reloaded[0].delay, workbench.nsfnet_train()[0].delay
        )

    def test_train_set_combines_topologies(self, workbench):
        names = {s.topology_name for s in workbench.train_set()}
        assert names == {"nsfnet", "synthetic-50"}

    def test_variable_size_family(self, workbench):
        family = workbench.variable_size_eval()
        assert set(family) == {8}
        assert len(family[8]) == 1


class TestModel:
    def test_trained_model_cached(self, workbench):
        model_a, scaler_a = workbench.trained_model()
        assert workbench.model_path().exists()
        model_b, _ = workbench.trained_model()
        assert model_a is model_b

    def test_checkpoint_reload(self, workbench):
        import numpy as np

        from repro.core import build_model_input

        workbench.trained_model()
        fresh = Workbench(MICRO, cache_dir=workbench.cache_dir, log=None)
        model, scaler = fresh.trained_model()
        sample = fresh.nsfnet_eval()[0]
        inputs = build_model_input(
            sample.topology, sample.routing, sample.traffic,
            scaler=scaler, pairs=list(sample.pairs),
        )
        original_model, original_scaler = workbench.trained_model()
        np.testing.assert_array_equal(
            model.predict(inputs, scaler).delay,
            original_model.predict(inputs, original_scaler).delay,
        )

    def test_trainer_wraps_cached_model(self, workbench):
        trainer = workbench.trainer()
        metrics = trainer.evaluate(workbench.nsfnet_eval())
        assert "delay" in metrics
