"""Integration tests: the full paper pipeline on scaled-down workloads."""

import numpy as np
import pytest

from repro.core import HyperParams, RouteNet, build_model_input
from repro.dataset import (
    GenerationConfig,
    generate_dataset,
    load_dataset,
    save_dataset,
    train_eval_split,
)
from repro.evaluation import (
    collect_regression,
    compute_error_cdf,
    cdf_table,
    top_n_paths,
    ranking_agreement,
)
from repro.planning import NetworkView
from repro.topology import synthetic_topology
from repro.training import Trainer

HP = HyperParams(
    link_state_dim=8,
    path_state_dim=8,
    message_passing_steps=3,
    readout_hidden=(16,),
    learning_rate=3e-3,
)


@pytest.fixture(scope="module")
def pipeline(tiny_samples):
    """Train once; reuse across the integration assertions."""
    train, evaluation = train_eval_split(tiny_samples, 0.25, seed=3)
    trainer = Trainer(RouteNet(HP, seed=0), seed=1)
    trainer.fit(train, epochs=25)
    return trainer, train, evaluation


class TestEndToEnd:
    def test_model_beats_naive_on_heldout(self, pipeline):
        trainer, _, evaluation = pipeline
        metrics = trainer.evaluate(evaluation).delay
        assert metrics.mre < 0.5
        assert metrics.pearson > 0.6

    def test_fig2_regression_data(self, pipeline):
        trainer, _, evaluation = pipeline
        sample = evaluation[0]
        pred = trainer.predict_sample(sample)
        data = collect_regression(pred.delay, sample.delay, sample.pairs)
        assert 0.3 < data.slope_through_origin() < 3.0

    def test_fig3_cdf_data(self, pipeline):
        trainer, train, evaluation = pipeline
        preds, trues = [], []
        for s in evaluation:
            preds.append(trainer.predict_sample(s).delay)
            trues.append(s.delay)
        cdf = compute_error_cdf(np.concatenate(preds), np.concatenate(trues), "eval")
        assert cdf.abs_quantile(0.5) < 0.6
        table = cdf_table([cdf])
        assert "eval" in table

    def test_fig4_topn_data(self, pipeline):
        trainer, _, evaluation = pipeline
        sample = evaluation[0]
        pred = trainer.predict_sample(sample).delay
        rows = top_n_paths(sample.pairs, pred, n=5, true_delay=sample.delay)
        assert len(rows) == 5
        agreement = ranking_agreement(pred, sample.delay, n=5)
        assert agreement["spearman"] > 0.0

    def test_planning_view_runs(self, pipeline):
        trainer, train, _ = pipeline
        s = train[0]
        view = NetworkView(trainer.model, trainer.scaler, s.topology, s.routing, s.traffic)
        assert len(view.top_delay_paths(3)) == 3

    def test_checkpoint_roundtrip_preserves_predictions(self, pipeline, tmp_path):
        trainer, train, _ = pipeline
        path = str(tmp_path / "model.npz")
        trainer.model.save(path, trainer.scaler)
        model, scaler, _ = RouteNet.load(path)
        s = train[0]
        inputs = build_model_input(
            s.topology, s.routing, s.traffic, scaler=scaler, pairs=list(s.pairs)
        )
        fresh = model.predict(inputs, scaler).delay
        original = trainer.predict_sample(s).delay
        np.testing.assert_allclose(fresh, original)

    def test_dataset_roundtrip_trains_identically(self, pipeline, tmp_path, tiny_samples):
        """Serialized samples carry everything training needs."""
        path = tmp_path / "ds.jsonl"
        save_dataset(tiny_samples[:4], path)
        restored = load_dataset(path)
        trainer = Trainer(RouteNet(HP, seed=9), seed=9)
        history = trainer.fit(restored, epochs=2)
        assert len(history.epochs) == 2


class TestGeneralizationSmoke:
    """Scaled-down version of the paper's headline experiment: train on two
    topologies, predict on a third unseen one."""

    def test_transfer_to_unseen_topology(self):
        cfg = GenerationConfig(
            target_packets_per_pair=60, min_delivered=10, intensity_range=(0.4, 0.7)
        )
        topo_a = synthetic_topology(6, seed=1, mean_degree=2.5)
        topo_b = synthetic_topology(8, seed=2, mean_degree=2.5)
        unseen = synthetic_topology(7, seed=3, mean_degree=2.5)
        train = generate_dataset(topo_a, 6, seed=10, config=cfg) + generate_dataset(
            topo_b, 6, seed=11, config=cfg
        )
        test = generate_dataset(unseen, 3, seed=12, config=cfg)

        trainer = Trainer(RouteNet(HP, seed=4), seed=5)
        trainer.fit(train, epochs=25)
        seen_mre = trainer.evaluate(train).delay.mre
        unseen_metrics = trainer.evaluate(test).delay

        # The unseen topology must still be predicted meaningfully: positive
        # correlation and error within a factor ~3 of the on-distribution one.
        assert unseen_metrics.pearson > 0.5
        assert unseen_metrics.mre < max(3.5 * seen_mre, 0.6)
