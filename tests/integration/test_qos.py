"""QoS extension tests: strict-priority scheduling end to end.

Covers the priority-band LinkQueue, class assignment in dataset generation,
the physical effect (premium traffic sees less delay), and the class-aware
RouteNet learning that separation.
"""

import numpy as np
import pytest

from repro.core import HyperParams, RouteNet
from repro.dataset import GenerationConfig, generate_dataset, generate_sample
from repro.errors import SimulationError
from repro.routing import RoutingScheme
from repro.simulator import LinkQueue, Packet, SimulationConfig, simulate
from repro.topology import Link, Topology, synthetic_topology
from repro.traffic import TrafficMatrix
from repro.training import Trainer


def _packet(priority: int, size=500.0) -> Packet:
    return Packet(flow=0, size_bits=size, created_at=0.0, route=(0,), priority=priority)


class TestPriorityQueue:
    def test_high_band_served_first(self):
        q = LinkQueue(Link(0, 0, 1, 1000.0), buffer_packets=8, priority_bands=2)
        low = _packet(1)
        high = _packet(0)
        q.try_enqueue(low)
        q.try_enqueue(high)
        served, _ = q.start_service(0.0)
        assert served is high

    def test_fifo_within_band(self):
        q = LinkQueue(Link(0, 0, 1, 1000.0), buffer_packets=8, priority_bands=2)
        first, second = _packet(1), _packet(1)
        q.try_enqueue(first)
        q.try_enqueue(second)
        served, _ = q.start_service(0.0)
        assert served is first

    def test_no_preemption(self):
        """A high-priority arrival waits for the in-flight low packet."""
        q = LinkQueue(Link(0, 0, 1, 1000.0), buffer_packets=8, priority_bands=2)
        q.try_enqueue(_packet(1))
        q.start_service(0.0)
        high = _packet(0)
        q.try_enqueue(high)
        q.finish_service(0.5)
        served, _ = q.start_service(0.5)
        assert served is high

    def test_buffer_shared_across_bands(self):
        q = LinkQueue(Link(0, 0, 1, 1000.0), buffer_packets=2, priority_bands=2)
        assert q.try_enqueue(_packet(1))
        assert q.try_enqueue(_packet(1))
        assert not q.try_enqueue(_packet(0))  # full, even for premium

    def test_priority_out_of_range_raises(self):
        q = LinkQueue(Link(0, 0, 1, 1000.0), priority_bands=2)
        with pytest.raises(SimulationError, match="priority"):
            q.try_enqueue(_packet(5))

    def test_single_band_rejects_nonzero_priority(self):
        q = LinkQueue(Link(0, 0, 1, 1000.0), priority_bands=1)
        with pytest.raises(SimulationError):
            q.try_enqueue(_packet(1))

    def test_zero_bands_rejected(self):
        with pytest.raises(SimulationError):
            LinkQueue(Link(0, 0, 1, 1000.0), priority_bands=0)


class TestSimulatorQoS:
    def test_premium_flow_faster_on_shared_bottleneck(self):
        """Two flows share the 1->2 link at high load; the premium one must
        come out ahead even though it also crosses an extra (uncontended)
        hop."""
        topo = Topology.from_edges(3, [(0, 1), (1, 2)], capacity=10_000.0)
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((3, 3))
        rates[0, 2] = 4_000.0  # premium, 0->1->2
        rates[1, 2] = 4_000.0  # best effort, 1->2 only
        tm = TrafficMatrix(rates)
        config = SimulationConfig(
            duration=800.0, warmup=80.0, seed=1, priority_bands=2
        )
        res = simulate(
            topo, routing, tm, config,
            flow_priorities={(0, 2): 0, (1, 2): 1},
        )
        premium_per_hop = res.flows[(0, 2)].mean_delay / 2
        best_effort = res.flows[(1, 2)].mean_delay
        assert best_effort > 1.3 * premium_per_hop

    def test_priority_validation(self):
        topo = Topology.from_edges(2, [(0, 1)], capacity=10_000.0)
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((2, 2))
        rates[0, 1] = 1_000.0
        with pytest.raises(SimulationError, match="priority"):
            simulate(
                topo, routing, TrafficMatrix(rates),
                SimulationConfig(priority_bands=2),
                flow_priorities={(0, 1): 5},
            )

    def test_single_band_default_unchanged(self):
        """priority_bands=1 must reproduce the original FIFO behaviour."""
        topo = Topology.from_edges(2, [(0, 1)], capacity=10_000.0)
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((2, 2))
        rates[0, 1] = 5_000.0
        tm = TrafficMatrix(rates)
        cfg = SimulationConfig(duration=100.0, seed=3)
        a = simulate(topo, routing, tm, cfg)
        b = simulate(topo, routing, tm, cfg, flow_priorities={})
        assert a.flows[(0, 1)].mean_delay == b.flows[(0, 1)].mean_delay


@pytest.fixture(scope="module")
def qos_samples():
    topo = synthetic_topology(6, seed=13, mean_degree=2.5)
    cfg = GenerationConfig(
        target_packets_per_pair=120,
        min_delivered=15,
        num_classes=2,
        intensity_range=(0.5, 0.8),
    )
    return generate_dataset(topo, 10, seed=31, config=cfg)


class TestQosDataset:
    def test_classes_recorded(self, qos_samples):
        sample = qos_samples[0]
        assert sample.pair_class is not None
        assert set(np.unique(sample.pair_class)) <= {0, 1}
        assert sample.meta["num_classes"] == 2

    def test_both_classes_present(self, qos_samples):
        classes = np.concatenate([s.pair_class for s in qos_samples])
        assert (classes == 0).any() and (classes == 1).any()

    def test_premium_class_faster_on_average(self, qos_samples):
        delays = np.concatenate([s.delay for s in qos_samples])
        classes = np.concatenate([s.pair_class for s in qos_samples])
        assert delays[classes == 0].mean() < delays[classes == 1].mean()

    def test_serialization_roundtrip(self, qos_samples, tmp_path):
        from repro.dataset import load_dataset, save_dataset

        path = tmp_path / "qos.jsonl"
        save_dataset(qos_samples[:2], path)
        restored = load_dataset(path)
        np.testing.assert_array_equal(
            restored[0].pair_class, qos_samples[0].pair_class
        )

    def test_deterministic(self):
        topo = synthetic_topology(5, seed=2)
        cfg = GenerationConfig(
            target_packets_per_pair=40, min_delivered=5, num_classes=2
        )
        a = generate_sample(topo, seed=4, config=cfg)
        b = generate_sample(topo, seed=4, config=cfg)
        np.testing.assert_array_equal(a.pair_class, b.pair_class)


class TestClassAwareModel:
    HP = HyperParams(
        link_state_dim=8,
        path_state_dim=8,
        message_passing_steps=2,
        readout_hidden=(12,),
        learning_rate=3e-3,
        path_feature_dim=3,  # traffic + 2-class one-hot
    )

    def test_trains_on_classed_samples(self, qos_samples):
        trainer = Trainer(RouteNet(self.HP, seed=0), seed=1)
        history = trainer.fit(qos_samples, epochs=8)
        assert history.train_losses[-1] < history.train_losses[0]

    def test_learns_class_separation(self, qos_samples):
        trainer = Trainer(RouteNet(self.HP, seed=0), seed=1)
        trainer.fit(qos_samples, epochs=20)
        pred = np.concatenate(
            [trainer.predict_sample(s).delay for s in qos_samples]
        )
        classes = np.concatenate([s.pair_class for s in qos_samples])
        assert pred[classes == 0].mean() < pred[classes == 1].mean()

    def test_class_blind_model_still_trains(self, qos_samples):
        """A 1-feature model simply does not receive the class columns."""
        hp = HyperParams(
            link_state_dim=8, path_state_dim=8, message_passing_steps=2,
            readout_hidden=(12,), learning_rate=3e-3,
        )
        trainer = Trainer(RouteNet(hp, seed=0), seed=1)
        trainer.fit(qos_samples, epochs=2)

    def test_classed_model_rejects_unclassed_samples(self, tiny_samples):
        trainer = Trainer(RouteNet(self.HP, seed=0), seed=1)
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="path features"):
            trainer.fit(list(tiny_samples), epochs=1)
