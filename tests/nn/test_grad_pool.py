"""Gradient-buffer pool: reuse, ownership safety, and LRU eviction.

The pool exists so steady-state training performs no gradient-buffer
allocation: interior tape buffers return to the pool when ``backward()``
finishes, leaf buffers when ``zero_grad()`` runs.  Ownership is tracked with
weak references so arrays the pool never lent (e.g. a test assigning
``p.grad`` directly) are never recycled out from under their owner.
"""

import weakref

import numpy as np

from repro.nn import Parameter, tensor
from repro.nn.tensor import _GradBufferPool, clear_grad_pool, grad_pool_stats


def small_graph():
    w = Parameter(np.arange(6.0).reshape(2, 3), name="w")
    x = tensor(np.ones((4, 2)), requires_grad=True)
    y = ((x @ w) * 2.0).sum()
    return w, x, y


class TestTapeIntegration:
    def setup_method(self):
        clear_grad_pool()

    def teardown_method(self):
        clear_grad_pool()

    def test_interior_grads_released_leaves_kept(self):
        w, x, y = small_graph()
        y.backward()
        assert w.grad is not None and x.grad is not None  # leaves survive
        stats = grad_pool_stats()
        assert stats["free"] > 0  # interior buffers returned to the pool

    def test_second_step_reuses_buffers(self):
        w, x, y = small_graph()
        y.backward()
        w.zero_grad()
        x.zero_grad()
        before = grad_pool_stats()["reuses"]
        w2, x2, y2 = small_graph()
        y2.backward()
        assert grad_pool_stats()["reuses"] > before

    def test_zero_grad_returns_leaf_buffer(self):
        w, x, y = small_graph()
        y.backward()
        free_before = grad_pool_stats()["free"]
        w.zero_grad()
        assert w.grad is None
        assert grad_pool_stats()["free"] == free_before + 1

    def test_foreign_array_never_pooled(self):
        p = Parameter(np.zeros((3, 3)), name="p")
        p.grad = np.ones((3, 3))  # assigned by outside code, not the pool
        foreign = p.grad
        free_before = grad_pool_stats()["free"]
        p.zero_grad()
        assert grad_pool_stats()["free"] == free_before  # silently ignored
        assert foreign[0, 0] == 1.0  # still owned by the caller


class TestPoolEviction:
    def test_lru_eviction_makes_room_for_new_shapes(self):
        """A full pool evicts stale shapes instead of refusing live ones.

        Regression: with refusal semantics, changing the training batch size
        left the pool full of the old batch's shapes — every release of the
        new working set was dropped and every step re-allocated from scratch.
        """
        pool = _GradBufferPool(max_per_key=2, max_total=2)
        old = [pool.acquire((4,), np.float64) for _ in range(2)]
        for buf in old:
            pool.release(buf)
        assert pool.stats()["free"] == 2  # full of "old batch size" shapes

        new = pool.acquire((8,), np.float64)
        pool.release(new)  # must evict an old (4,) buffer, not drop this one
        assert pool.stats()["free"] == 2
        assert pool.acquire((8,), np.float64) is new

    def test_per_key_cap_still_applies(self):
        pool = _GradBufferPool(max_per_key=1, max_total=8)
        a = pool.acquire((4,), np.float64)
        b = pool.acquire((4,), np.float64)
        pool.release(a)
        pool.release(b)  # over the per-key cap: dropped
        assert pool.stats()["free"] == 1

    def test_double_release_is_ignored(self):
        pool = _GradBufferPool()
        a = pool.acquire((4,), np.float64)
        pool.release(a)
        pool.release(a)  # no longer lent: must not be pooled twice
        assert pool.stats()["free"] == 1


class TestViewRejection:
    """Views into shared storage must never enter the free list.

    Regression: an arena slot (a view carved out of the execution arena's
    backing allocation) released into the pool would later be handed out as
    a "fresh" gradient buffer, aliasing two tensors' gradients onto the
    arena's bytes.
    """

    def test_arena_slot_never_pooled(self):
        pool = _GradBufferPool()
        backing = np.empty(256, dtype=np.uint8)  # the arena's allocation
        slot = backing[:32].view(np.float64)     # one planned buffer view
        # Even with forged lending bookkeeping (the strongest adversary:
        # id() collision after a real buffer died), release must refuse it.
        pool._lent[id(slot)] = weakref.ref(slot)
        pool.release(slot)
        assert pool.stats()["free"] == 0
        fresh = pool.acquire((4,), np.float64)
        assert fresh.base is None  # never hands out a view

    def test_plain_view_of_owned_buffer_rejected(self):
        pool = _GradBufferPool()
        buf = pool.acquire((8,), np.float64)
        view = buf[:4]
        pool._lent[id(view)] = weakref.ref(view)
        pool.release(view)
        assert pool.stats()["free"] == 0

    def test_none_release_is_a_noop(self):
        pool = _GradBufferPool()
        pool.release(None)
        assert pool.stats()["free"] == 0
