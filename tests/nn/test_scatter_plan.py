"""Scatter plans and the fused recurrent cells.

``make_scatter_plan`` precomputes a stable-sort + ``np.add.reduceat``
schedule for a fixed index vector.  The stable sort keeps every bucket's
members in original row order, but ``reduceat`` may combine them pairwise
where ``np.add.at`` accumulates strictly sequentially — so planned scatters
agree with unplanned ones to ~1 ulp (and are deterministic run to run),
not bitwise.  The tolerances below pin exactly that contract.

The fused GRU/RNN tape nodes (hand-written backwards, transform-then-gather
split) are checked against the op-composed reference formulas.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.ops import gather, make_scatter_plan, segment_sum, sigmoid
from repro.nn import GRUCell, RNNCell


class TestScatterPlan:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scatter_into_matches_add_at(self, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(-1, 7, size=40)  # -1 rows must be dropped
        values = rng.standard_normal((40, 5))
        plan = make_scatter_plan(ids)

        out_plan = np.zeros((7, 5))
        plan.scatter_into(values, out_plan)

        out_ref = np.zeros((7, 5))
        valid = ids >= 0
        np.add.at(out_ref, ids[valid], values[valid])

        np.testing.assert_allclose(out_plan, out_ref, rtol=1e-13, atol=1e-14)

    def test_all_padding(self):
        plan = make_scatter_plan(np.full(6, -1))
        out = np.zeros((3, 2))
        plan.scatter_into(np.ones((6, 2)), out)
        assert np.array_equal(out, np.zeros((3, 2)))

    def test_gather_planned_equals_unplanned(self):
        rng = np.random.default_rng(5)
        ids = rng.integers(0, 6, size=30)
        plan = make_scatter_plan(ids)
        data = rng.standard_normal((6, 4))

        x1 = nn.tensor(data.copy(), requires_grad=True)
        y1 = gather(x1, ids)
        y1.backward(np.ones_like(y1.data))

        x2 = nn.tensor(data.copy(), requires_grad=True)
        y2 = gather(x2, ids, plan=plan)
        y2.backward(np.ones_like(y2.data))

        assert np.array_equal(y1.data, y2.data)
        assert np.array_equal(x1.grad, x2.grad)

    def test_segment_sum_planned_equals_unplanned(self):
        rng = np.random.default_rng(9)
        ids = rng.integers(-1, 5, size=30)
        plan = make_scatter_plan(ids)
        data = rng.standard_normal((30, 4))

        x1 = nn.tensor(data.copy(), requires_grad=True)
        y1 = segment_sum(x1, ids, 5)
        y1.backward(np.ones_like(y1.data))

        x2 = nn.tensor(data.copy(), requires_grad=True)
        y2 = segment_sum(x2, ids, 5, plan=plan)
        y2.backward(np.ones_like(y2.data))

        # Forward sums pairwise under the plan (~1 ulp); the backward is a
        # pure permutation-broadcast, so gradients stay bitwise equal.
        np.testing.assert_allclose(y1.data, y2.data, rtol=1e-13, atol=1e-14)
        assert np.array_equal(x1.grad, x2.grad)


def reference_gru(cell, x, h):
    """The GRU update composed from primitive ops (the pre-fusion tape)."""
    hs = cell.hidden_size
    gates_x = x @ cell.w + cell.bias
    gates_h = h @ cell.u
    z = sigmoid(gates_x[:, :hs] + gates_h[:, :hs])
    r = sigmoid(gates_x[:, hs : 2 * hs] + gates_h[:, hs : 2 * hs])
    n = nn.ops.tanh(gates_x[:, 2 * hs :] + (r * h) @ cell.u[:, 2 * hs :])
    return (1.0 - z) * n + z * h


class TestFusedCells:
    def test_gru_forward_matches_composed_reference(self):
        rng = np.random.default_rng(11)
        cell = GRUCell(6, 5, rng)
        x = nn.tensor(rng.standard_normal((7, 6)))
        h = nn.tensor(rng.standard_normal((7, 5)))
        with nn.no_grad():
            fused = cell(x, h)
            ref = reference_gru(cell, x, h)
        np.testing.assert_allclose(fused.data, ref.data, rtol=0, atol=1e-14)

    def test_gru_backward_matches_composed_reference(self):
        rng = np.random.default_rng(13)
        cell = GRUCell(6, 5, rng)
        xd = rng.standard_normal((7, 6))
        hd = rng.standard_normal((7, 5))
        upstream = rng.standard_normal((7, 5))

        x1 = nn.tensor(xd.copy(), requires_grad=True)
        h1 = nn.tensor(hd.copy(), requires_grad=True)
        cell(x1, h1).backward(upstream)
        fused = {
            "x": x1.grad.copy(), "h": h1.grad.copy(),
            "w": cell.w.grad.copy(), "u": cell.u.grad.copy(),
            "b": cell.bias.grad.copy(),
        }
        for p in (cell.w, cell.u, cell.bias):
            p.zero_grad()

        x2 = nn.tensor(xd.copy(), requires_grad=True)
        h2 = nn.tensor(hd.copy(), requires_grad=True)
        reference_gru(cell, x2, h2).backward(upstream)

        np.testing.assert_allclose(fused["x"], x2.grad, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(fused["h"], h2.grad, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(fused["w"], cell.w.grad, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(fused["u"], cell.u.grad, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(fused["b"], cell.bias.grad, rtol=1e-12, atol=1e-14)

    def test_gru_transform_then_gather_is_bit_identical(self):
        """Gathering precomputed gates == transforming gathered states."""
        rng = np.random.default_rng(17)
        cell = GRUCell(5, 5, rng)
        h_link = rng.standard_normal((9, 5))
        h_path = rng.standard_normal((20, 5))
        ids = rng.integers(0, 9, size=20)
        with nn.no_grad():
            direct = cell(nn.tensor(h_link[ids]), nn.tensor(h_path))
            gates_all = cell.precompute_input(nn.tensor(h_link))
            split = cell.step_precomputed(
                gather(gates_all, ids, plan=make_scatter_plan(ids)),
                nn.tensor(h_path),
            )
        assert np.array_equal(direct.data, split.data)

    def test_rnn_split_matches_direct(self):
        rng = np.random.default_rng(19)
        cell = RNNCell(4, 3, rng)
        x = nn.tensor(rng.standard_normal((6, 4)))
        h = nn.tensor(rng.standard_normal((6, 3)))
        with nn.no_grad():
            direct = cell(x, h)
            split = cell.step_precomputed(cell.precompute_input(x), h)
        assert np.array_equal(direct.data, split.data)
