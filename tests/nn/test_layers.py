"""Tests for Module/Dense/MLP plus GRUCell and optimizers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    GRUCell,
    MLP,
    Module,
    Parameter,
    SGD,
    Tensor,
    clip_global_norm,
    load_module,
    save_module,
)

from .gradcheck import assert_grads_close

RNG = np.random.default_rng(7)


def _param(values) -> Tensor:
    return Parameter(np.asarray(values, dtype=np.float64))


class TestModule:
    def test_named_parameters_nested(self):
        class Net(Module):
            def __init__(self):
                self.fc1 = Dense(2, 3, np.random.default_rng(0))
                self.fc2 = Dense(3, 1, np.random.default_rng(1))

        names = dict(Net().named_parameters()).keys()
        assert {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"} == set(names)

    def test_parameters_in_lists_discovered(self):
        class Net(Module):
            def __init__(self):
                self.blocks = [Dense(2, 2, np.random.default_rng(i)) for i in range(2)]

        assert len(list(Net().parameters())) == 4

    def test_num_parameters(self):
        layer = Dense(3, 4, RNG)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self):
        a = Dense(2, 2, np.random.default_rng(0))
        b = Dense(2, 2, np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_load_state_dict_missing_key_raises(self):
        layer = Dense(2, 2, RNG)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_shape_mismatch_raises(self):
        layer = Dense(2, 2, RNG)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape"):
            layer.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        layer = Dense(2, 1, RNG)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 8, RNG)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 8)

    def test_linear_activation_is_affine(self):
        layer = Dense(2, 1, RNG, activation="linear")
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_relu_activation_nonnegative(self):
        layer = Dense(3, 3, RNG, activation="relu")
        out = layer(Tensor(RNG.standard_normal((10, 3))))
        assert (out.data >= 0).all()

    def test_no_bias(self):
        layer = Dense(2, 2, RNG, use_bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError, match="activation"):
            Dense(2, 2, RNG, activation="swishy")

    def test_gradcheck(self):
        layer = Dense(3, 2, np.random.default_rng(3), activation="tanh")
        x = Tensor(np.random.default_rng(4).standard_normal((4, 3)))
        assert_grads_close(
            lambda: (layer(x) ** 2).sum(), list(layer.parameters()), rtol=1e-4
        )


class TestMLP:
    def test_depth(self):
        net = MLP(4, [8, 8], 2, RNG)
        assert len(net.layers) == 3

    def test_output_shape(self):
        net = MLP(4, [8], 2, RNG)
        assert net(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_out_activation_softplus_positive(self):
        net = MLP(4, [8], 1, RNG, out_activation="softplus")
        out = net(Tensor(RNG.standard_normal((20, 4))))
        assert (out.data > 0).all()

    def test_gradcheck(self):
        net = MLP(2, [3], 1, np.random.default_rng(5), activation="tanh")
        x = Tensor(np.random.default_rng(6).standard_normal((3, 2)))
        assert_grads_close(lambda: net(x).sum(), list(net.parameters()), rtol=1e-4)


class TestGRUCell:
    def test_state_shape_preserved(self):
        cell = GRUCell(3, 5, RNG)
        h = cell(Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 5))))
        assert h.shape == (2, 5)

    def test_state_bounded(self):
        # GRU state is a convex combination of tanh candidates: |h| <= 1 from h0=0.
        cell = GRUCell(2, 4, RNG)
        h = Tensor(np.zeros((1, 4)))
        for _ in range(50):
            h = cell(Tensor(RNG.standard_normal((1, 2))), h)
        assert (np.abs(h.data) <= 1.0).all()

    def test_deterministic_given_seed(self):
        a = GRUCell(2, 3, np.random.default_rng(11))
        b = GRUCell(2, 3, np.random.default_rng(11))
        x, h = Tensor(np.ones((1, 2))), Tensor(np.zeros((1, 3)))
        np.testing.assert_array_equal(a(x, h).data, b(x, h).data)

    def test_gradcheck_single_step(self):
        cell = GRUCell(2, 3, np.random.default_rng(8))
        x = Tensor(np.random.default_rng(9).standard_normal((2, 2)))
        h0 = Tensor(np.random.default_rng(10).standard_normal((2, 3)))
        assert_grads_close(
            lambda: (cell(x, h0) ** 2).sum(), list(cell.parameters()), rtol=1e-4, atol=1e-6
        )

    def test_gradcheck_unrolled_two_steps(self):
        cell = GRUCell(2, 3, np.random.default_rng(12))
        xs = [Tensor(np.random.default_rng(s).standard_normal((1, 2))) for s in (1, 2)]

        def run():
            h = Tensor(np.zeros((1, 3)))
            for x in xs:
                h = cell(x, h)
            return (h**2).sum()

        assert_grads_close(run, list(cell.parameters()), rtol=1e-4, atol=1e-6)


class TestRNNCell:
    def test_state_shape(self):
        from repro.nn import RNNCell

        cell = RNNCell(3, 5, RNG)
        assert cell(Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 5)))).shape == (2, 5)

    def test_output_bounded_by_tanh(self):
        from repro.nn import RNNCell

        cell = RNNCell(2, 4, RNG)
        h = cell(Tensor(RNG.standard_normal((3, 2)) * 10), Tensor(np.zeros((3, 4))))
        assert (np.abs(h.data) <= 1.0).all()

    def test_gradcheck(self):
        from repro.nn import RNNCell

        cell = RNNCell(2, 3, np.random.default_rng(31))
        x = Tensor(np.random.default_rng(32).standard_normal((2, 2)))
        h0 = Tensor(np.random.default_rng(33).standard_normal((2, 3)))
        assert_grads_close(
            lambda: (cell(x, h0) ** 2).sum(), list(cell.parameters()), rtol=1e-4
        )

    def test_make_cell_factory(self):
        from repro.nn import GRUCell, RNNCell, make_cell

        assert isinstance(make_cell("gru", 2, 3, RNG), GRUCell)
        assert isinstance(make_cell("rnn", 2, 3, RNG), RNNCell)
        with pytest.raises(ValueError, match="cell type"):
            make_cell("lstm", 2, 3, RNG)


class TestOptimizers:
    def test_sgd_step_direction(self):
        p = _param([1.0])
        (p * 3.0).sum().backward()
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.7])

    def test_sgd_momentum_accumulates(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        for _ in range(2):
            opt.zero_grad()
            p.grad = np.array([1.0])
            opt.step()
        np.testing.assert_allclose(p.data, [-2.9])  # -1 then -(0.9+1)

    def test_adam_converges_on_quadratic(self):
        p = _param([5.0])
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            ((p - 2.0) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [2.0], atol=1e-2)

    def test_adam_skips_params_without_grad(self):
        p, q = _param([1.0]), _param([1.0])
        opt = Adam([p, q], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        np.testing.assert_array_equal(q.data, [1.0])

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([_param([1.0])], lr=0.0)

    def test_clip_global_norm(self):
        p, q = _param([3.0]), _param([4.0])
        p.grad, q.grad = np.array([3.0]), np.array([4.0])
        norm = clip_global_norm([p, q], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(p.grad[0] ** 2 + q.grad[0] ** 2)
        assert total == pytest.approx(1.0)

    def test_clip_noop_when_under_norm(self):
        p = _param([1.0])
        p.grad = np.array([0.5])
        clip_global_norm([p], max_norm=10.0)
        np.testing.assert_array_equal(p.grad, [0.5])


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        src = MLP(3, [4], 2, np.random.default_rng(20))
        dst = MLP(3, [4], 2, np.random.default_rng(21))
        save_module(tmp_path / "ckpt.npz", src, meta={"epoch": 3})
        meta = load_module(tmp_path / "ckpt.npz", dst)
        assert meta == {"epoch": 3}
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_array_equal(src(x).data, dst(x).data)

    def test_load_into_wrong_architecture_raises(self, tmp_path):
        save_module(tmp_path / "c.npz", MLP(3, [4], 2, RNG))
        with pytest.raises(KeyError):
            load_module(tmp_path / "c.npz", MLP(3, [4, 4], 2, RNG))
