"""Property-based fuzzing of the autodiff engine.

Builds random computation graphs and checks (i) forward values against a
pure-numpy replay and (ii) analytic gradients against central differences.
These are the deepest correctness guarantees we have for the engine that
trains RouteNet.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, ops

from .gradcheck import assert_grads_close

# Unary ops paired with their numpy reference.  All bounded or at most
# linear-growth, so arbitrary-depth chains stay finite (exp is excluded:
# exp∘exp overflows by design and is covered separately in test_ops).
SMOOTH_UNARY = [
    ("tanh", ops.tanh, np.tanh),
    ("sigmoid", ops.sigmoid, lambda x: 1 / (1 + np.exp(-np.clip(x, -500, 500)))),
    ("softplus", ops.softplus, lambda x: np.logaddexp(0, x)),
]

BINARY = [
    ("add", lambda a, b: a + b, np.add),
    ("sub", lambda a, b: a - b, np.subtract),
    ("mul", lambda a, b: a * b, np.multiply),
]


@st.composite
def random_chain(draw):
    """A random chain: matmul -> k unary ops -> binary combine with input."""
    rows = draw(st.integers(2, 5))
    inner = draw(st.integers(2, 4))
    cols = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    unary_picks = draw(st.lists(st.sampled_from(range(len(SMOOTH_UNARY))), min_size=1, max_size=3))
    binary_pick = draw(st.sampled_from(range(len(BINARY))))
    return rows, inner, cols, seed, unary_picks, binary_pick


class TestForwardAgainstNumpy:
    @given(chain=random_chain())
    @settings(max_examples=40, deadline=None)
    def test_random_chain_matches_numpy(self, chain):
        rows, inner, cols, seed, unary_picks, binary_pick = chain
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((rows, inner)) * 0.5
        w = rng.standard_normal((inner, cols)) * 0.5
        c = rng.standard_normal((rows, cols)) * 0.5

        out = Tensor(a) @ Tensor(w)
        ref = a @ w
        for pick in unary_picks:
            _, fn, np_fn = SMOOTH_UNARY[pick]
            out = fn(out)
            ref = np_fn(ref)
        _, bfn, np_bfn = BINARY[binary_pick]
        out = bfn(out, Tensor(c))
        ref = np_bfn(ref, c)
        np.testing.assert_allclose(out.numpy(), ref, rtol=1e-10, atol=1e-12)


class TestGradientsAgainstFiniteDifferences:
    @given(chain=random_chain())
    @settings(max_examples=20, deadline=None)
    def test_random_chain_gradcheck(self, chain):
        rows, inner, cols, seed, unary_picks, binary_pick = chain
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal((rows, inner)) * 0.5, requires_grad=True)
        w = Tensor(rng.standard_normal((inner, cols)) * 0.5, requires_grad=True)
        c = Tensor(rng.standard_normal((rows, cols)) * 0.5, requires_grad=True)

        def run():
            out = a @ w
            for pick in unary_picks:
                out = SMOOTH_UNARY[pick][1](out)
            out = BINARY[binary_pick][1](out, c)
            return (out * out).mean()

        assert_grads_close(run, [a, w, c], rtol=2e-4, atol=1e-7)

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 12),
        segments=st.integers(1, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_gather_segment_roundtrip_gradcheck(self, seed, n, segments):
        """Random gather -> nonlinearity -> segment_sum graphs (the exact
        primitive pattern of RouteNet's message passing)."""
        rng = np.random.default_rng(seed)
        table = Tensor(rng.standard_normal((segments + 1, 3)) * 0.5, requires_grad=True)
        idx = rng.integers(0, segments + 1, size=n)
        seg = rng.integers(0, segments, size=n)

        def run():
            rows = ops.gather(table, idx)
            hidden = ops.tanh(rows)
            pooled = ops.segment_sum(hidden, seg, segments)
            return (pooled * pooled).sum()

        assert_grads_close(run, [table], rtol=2e-4, atol=1e-7)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_where_mask_gradcheck(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        cond = rng.random((4, 1)) > 0.5  # broadcast mask, RouteNet-style

        def run():
            return (ops.where(cond, a, b) ** 2).sum()

        assert_grads_close(run, [a, b], rtol=1e-5)


class TestNumericalInvariants:
    @given(seed=st.integers(0, 2**31 - 1), scale=st.floats(0.1, 50.0))
    @settings(max_examples=25, deadline=None)
    def test_sigmoid_tanh_bounded_everywhere(self, seed, scale):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal(50) * scale)
        s = ops.sigmoid(x).numpy()
        t = ops.tanh(x).numpy()
        assert np.isfinite(s).all() and ((s >= 0) & (s <= 1)).all()
        assert np.isfinite(t).all() and ((t >= -1) & (t <= 1)).all()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_softmax_free_grad_accumulation_idempotent(self, seed):
        """Running the same backward twice from fresh forward passes gives
        identical gradients (no tape leakage between runs)."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((3, 3)), requires_grad=True)

        def grad_of_run():
            x.zero_grad()
            (ops.tanh(x @ x) ** 2).sum().backward()
            return x.grad.copy()

        np.testing.assert_array_equal(grad_of_run(), grad_of_run())
