"""Bit-identity of the allocation-free optimizer against the historical one.

``Adam.step`` and ``clip_global_norm`` were rewritten to run in preallocated
scratch buffers.  Every in-place expression mirrors the original out-of-place
arithmetic operation for operation (IEEE multiplication commutes bitwise,
``g * g`` equals ``g**2`` bitwise), so weight trajectories must be
*bit-identical*, not merely close.  These tests run the historical
implementations side by side for 50 steps and assert exact equality.
"""

import numpy as np
import pytest

from repro.nn import Adam, Parameter, clip_global_norm


def reference_adam_step(params, m, v, t, *, lr, beta1, beta2, eps, weight_decay):
    """The historical (allocating) Adam step, verbatim."""
    b1c = 1.0 - beta1**t
    b2c = 1.0 - beta2**t
    for p, mi, vi in zip(params, m, v):
        grad = p.grad
        if weight_decay:
            grad = grad + weight_decay * p.data
        mi *= beta1
        mi += (1.0 - beta1) * grad
        vi *= beta2
        vi += (1.0 - beta2) * grad**2
        p.data -= lr * (mi / b1c) / (np.sqrt(vi / b2c) + eps)


def reference_clip(params, max_norm):
    """The historical (allocating) global-norm clip, verbatim."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


def make_params(rng, seed_offset=0):
    shapes = [(16, 48), (16,), (8, 8), (48,), (3, 5, 2)]
    return [Parameter(rng.standard_normal(s), name=f"p{i}") for i, s in enumerate(shapes)]


@pytest.mark.parametrize("weight_decay", [0.0, 0.01])
def test_adam_bit_identical_over_50_steps(weight_decay):
    rng = np.random.default_rng(42)
    inplace_params = make_params(rng)
    ref_params = [Parameter(p.data.copy(), name=p.name) for p in inplace_params]
    opt = Adam(inplace_params, lr=1e-3, weight_decay=weight_decay)
    ref_m = [np.zeros_like(p.data) for p in ref_params]
    ref_v = [np.zeros_like(p.data) for p in ref_params]

    for t in range(1, 51):
        grads = [rng.standard_normal(p.data.shape) * 10.0**rng.integers(-3, 3)
                 for p in inplace_params]
        for p, rp, g in zip(inplace_params, ref_params, grads):
            p.grad = g.copy()
            rp.grad = g.copy()
        opt.step()
        reference_adam_step(
            ref_params, ref_m, ref_v, t,
            lr=1e-3, beta1=0.9, beta2=0.999, eps=1e-8, weight_decay=weight_decay,
        )
        for p, rp in zip(inplace_params, ref_params):
            assert np.array_equal(p.data, rp.data), f"step {t}: {p.name} diverged"


def test_clip_global_norm_bit_identical_over_50_steps():
    rng = np.random.default_rng(7)
    inplace_params = make_params(rng)
    ref_params = [Parameter(p.data.copy(), name=p.name) for p in inplace_params]

    for t in range(50):
        # Alternate between norms above and below the threshold.
        scale = 10.0 if t % 3 else 0.01
        grads = [rng.standard_normal(p.data.shape) * scale for p in inplace_params]
        for p, rp, g in zip(inplace_params, ref_params, grads):
            p.grad = g.copy()
            rp.grad = g.copy()
        norm = clip_global_norm(inplace_params, 5.0)
        ref_norm = reference_clip(ref_params, 5.0)
        # The returned pre-clip norm and the clipped gradients are both
        # bit-identical (same summation algorithm, commuted multiplies).
        assert norm == ref_norm, f"step {t}: pre-clip norm diverged"
        for p, rp in zip(inplace_params, ref_params):
            assert np.array_equal(p.grad, rp.grad), f"step {t}: {p.name} diverged"


def test_clip_handles_missing_grads():
    rng = np.random.default_rng(3)
    params = make_params(rng)
    params[1].grad = None
    for p in params[2:]:
        p.grad = rng.standard_normal(p.data.shape)
    params[0].grad = rng.standard_normal(params[0].data.shape)
    norm = clip_global_norm(params, 1e-9)
    assert norm > 0.0
