"""Unit + gradient-check tests for repro.nn.ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, ops

from .gradcheck import assert_grads_close


def _param(values) -> Tensor:
    return Tensor(np.asarray(values, dtype=np.float64), requires_grad=True)


RNG = np.random.default_rng(42)


class TestPointwise:
    @pytest.mark.parametrize(
        "fn,ref",
        [
            (ops.exp, np.exp),
            (ops.tanh, np.tanh),
            (ops.relu, lambda x: np.maximum(x, 0)),
            (ops.softplus, lambda x: np.logaddexp(0, x)),
            (ops.abs_, np.abs),
        ],
    )
    def test_forward_matches_numpy(self, fn, ref):
        x = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(fn(Tensor(x)).data, ref(x), rtol=1e-12)

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-30, 30, 101)
        y = ops.sigmoid(Tensor(x)).data
        assert np.all((y > 0) & (y < 1))
        np.testing.assert_allclose(y + y[::-1], np.ones_like(y), atol=1e-12)

    def test_sigmoid_extreme_inputs_stable(self):
        y = ops.sigmoid(Tensor(np.array([-1000.0, 1000.0]))).data
        assert np.isfinite(y).all()

    def test_log_sqrt(self):
        x = np.array([1.0, 4.0, 9.0])
        np.testing.assert_allclose(ops.log(Tensor(x)).data, np.log(x))
        np.testing.assert_allclose(ops.sqrt(Tensor(x)).data, [1, 2, 3])

    @pytest.mark.parametrize(
        "fn", [ops.exp, ops.tanh, ops.sigmoid, ops.softplus, lambda t: ops.leaky_relu(t, 0.1)]
    )
    def test_gradcheck_smooth(self, fn):
        x = _param(RNG.standard_normal(7))
        assert_grads_close(lambda: fn(x).sum(), [x], rtol=1e-4, atol=1e-6)

    def test_gradcheck_log_sqrt_positive_domain(self):
        x = _param(RNG.uniform(0.5, 3.0, size=5))
        assert_grads_close(lambda: ops.log(x).sum(), [x], rtol=1e-4)
        assert_grads_close(lambda: ops.sqrt(x).sum(), [x], rtol=1e-4)

    def test_relu_grad_at_positive_negative(self):
        x = _param([-2.0, 3.0])
        ops.relu(x).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0])

    def test_clip_values_and_grad(self):
        x = _param([-2.0, 0.5, 2.0])
        out = ops.clip(x, -1.0, 1.0)
        np.testing.assert_array_equal(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_where_select_and_grad(self):
        a, b = _param([1.0, 2.0]), _param([10.0, 20.0])
        cond = np.array([True, False])
        out = ops.where(cond, a, b)
        np.testing.assert_array_equal(out.data, [1.0, 20.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0])


class TestConcatStack:
    def test_concat_values(self):
        out = ops.concat([Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))], axis=1)
        assert out.shape == (2, 5)

    def test_concat_grad_routes_to_parts(self):
        a, b = _param(np.ones((2, 2))), _param(np.ones((2, 3)))
        out = ops.concat([a, b], axis=1)
        (out * np.arange(10.0).reshape(2, 5)).sum().backward()
        np.testing.assert_array_equal(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_array_equal(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_concat_axis0_gradcheck(self):
        a, b = _param(RNG.standard_normal((2, 3))), _param(RNG.standard_normal((1, 3)))
        assert_grads_close(lambda: (ops.concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_stack_shape_and_grad(self):
        a, b = _param([1.0, 2.0]), _param([3.0, 4.0])
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])


class TestGatherSegment:
    def test_gather_rows(self):
        x = Tensor(np.arange(12.0).reshape(4, 3))
        out = ops.gather(x, np.array([2, 0, 2]))
        np.testing.assert_array_equal(out.data[0], [6, 7, 8])
        np.testing.assert_array_equal(out.data[1], [0, 1, 2])

    def test_gather_grad_accumulates_duplicates(self):
        x = _param(np.zeros((3, 2)))
        ops.gather(x, np.array([1, 1, 0])).sum().backward()
        np.testing.assert_array_equal(x.grad, [[1, 1], [2, 2], [0, 0]])

    def test_segment_sum_values(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]))
        out = ops.segment_sum(x, np.array([0, 1, 0, 1]), 2)
        np.testing.assert_array_equal(out.data, [[4.0], [6.0]])

    def test_segment_sum_ignores_negative_ids(self):
        x = Tensor(np.ones((3, 2)))
        out = ops.segment_sum(x, np.array([0, -1, 0]), 1)
        np.testing.assert_array_equal(out.data, [[2.0, 2.0]])

    def test_segment_sum_empty_segment_is_zero(self):
        out = ops.segment_sum(Tensor(np.ones((2, 1))), np.array([0, 0]), 3)
        np.testing.assert_array_equal(out.data, [[2.0], [0.0], [0.0]])

    def test_segment_sum_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="segment_ids"):
            ops.segment_sum(Tensor(np.ones((3, 1))), np.array([0, 1]), 2)

    def test_segment_sum_gradcheck(self):
        x = _param(RNG.standard_normal((6, 2)))
        ids = np.array([0, 2, 1, -1, 2, 0])
        assert_grads_close(lambda: (ops.segment_sum(x, ids, 3) ** 2).sum(), [x])

    def test_segment_mean(self):
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = ops.segment_mean(x, np.array([0, 0, 1]), 2)
        np.testing.assert_array_equal(out.data, [[3.0], [6.0]])

    def test_gather_then_segment_roundtrip(self):
        # Scatter of a gather over the same index partition reproduces sums.
        x = _param(RNG.standard_normal((4, 3)))
        ids = np.array([0, 1, 2, 3])
        out = ops.segment_sum(ops.gather(x, ids), ids, 4)
        np.testing.assert_allclose(out.data, x.data)

    @given(
        n=st.integers(1, 20),
        segments=st.integers(1, 5),
        data=st.randoms(use_true_random=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_segment_sum_total_preserved(self, n, segments, data):
        """Property: summing all segments equals summing all (valid) rows."""
        rng = np.random.default_rng(data.randint(0, 10_000))
        x = Tensor(rng.standard_normal((n, 2)))
        ids = rng.integers(0, segments, size=n)
        out = ops.segment_sum(x, ids, segments)
        np.testing.assert_allclose(out.data.sum(axis=0), x.data.sum(axis=0), atol=1e-9)


class TestDropoutHuber:
    def test_dropout_identity_when_not_training(self):
        x = Tensor(np.ones(10))
        out = ops.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_scales_survivors(self):
        x = Tensor(np.ones(10_000))
        out = ops.dropout(x, 0.5, np.random.default_rng(0), training=True)
        survivors = out.data[out.data > 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 0.4 < survivors.size / 10_000 < 0.6

    def test_dropout_bad_rate_raises(self):
        with pytest.raises(ValueError):
            ops.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))

    def test_huber_quadratic_region(self):
        pred = _param([1.5])
        loss = ops.huber(pred, np.array([1.0]), delta=1.0)
        np.testing.assert_allclose(loss.data, [0.125])

    def test_huber_linear_region(self):
        pred = _param([5.0])
        loss = ops.huber(pred, np.array([1.0]), delta=1.0)
        np.testing.assert_allclose(loss.data, [3.5])  # |4|*1 - 0.5

    def test_huber_gradcheck_both_regions(self):
        pred = _param([0.3, 4.0, -3.0, 1.2])
        target = np.array([0.0, 0.0, 0.0, 0.0])
        assert_grads_close(lambda: ops.huber(pred, target).sum(), [pred], rtol=1e-4)
