"""Finite-difference gradient checking shared by the nn test modules."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import Tensor


def numeric_grad(
    fn: Callable[[], Tensor], wrt: Tensor, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of the scalar ``fn()`` w.r.t. ``wrt``."""
    grad = np.zeros_like(wrt.data)
    flat = wrt.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn().item()
        flat[i] = original - eps
        down = fn().item()
        flat[i] = original
        gflat[i] = (up - down) / (2.0 * eps)
    return grad


def assert_grads_close(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> None:
    """Assert analytic gradients of scalar ``fn()`` match finite differences."""
    for p in params:
        p.zero_grad()
    out = fn()
    out.backward()
    for i, p in enumerate(params):
        expected = numeric_grad(fn, p)
        assert p.grad is not None, f"param {i} received no gradient"
        np.testing.assert_allclose(
            p.grad, expected, rtol=rtol, atol=atol,
            err_msg=f"analytic vs numeric gradient mismatch for param {i}",
        )
