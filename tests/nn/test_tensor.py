"""Unit tests for the autodiff Tensor core: arithmetic, broadcasting, tape."""

import numpy as np
import pytest

from repro.nn import Tensor, tensor, no_grad

from .gradcheck import assert_grads_close


def _param(values) -> Tensor:
    return Tensor(np.asarray(values, dtype=np.float64), requires_grad=True)


class TestConstruction:
    def test_tensor_from_list(self):
        t = tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_tensor_passthrough(self):
        t = tensor([1.0])
        assert tensor(t) is t

    def test_int_input_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "f"

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(tensor([1.0, 2.0]))

    def test_item_on_scalar(self):
        assert tensor(3.5).item() == 3.5

    def test_len(self):
        assert len(tensor([1.0, 2.0, 3.0])) == 3


class TestArithmetic:
    def test_add_values(self):
        out = tensor([1.0, 2.0]) + tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_radd_scalar(self):
        out = 1.0 + tensor([1.0, 2.0])
        np.testing.assert_array_equal(out.data, [2.0, 3.0])

    def test_sub_and_rsub(self):
        np.testing.assert_array_equal((tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_array_equal((5.0 - tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_array_equal((tensor([2.0]) * 3.0).data, [6.0])
        np.testing.assert_array_equal((tensor([6.0]) / 3.0).data, [2.0])

    def test_rtruediv(self):
        np.testing.assert_allclose((1.0 / tensor([4.0])).data, [0.25])

    def test_pow(self):
        np.testing.assert_array_equal((tensor([3.0]) ** 2).data, [9.0])

    def test_matmul_values(self):
        a = tensor([[1.0, 2.0], [3.0, 4.0]])
        b = tensor([[1.0], [1.0]])
        np.testing.assert_array_equal((a @ b).data, [[3.0], [7.0]])

    def test_neg(self):
        np.testing.assert_array_equal((-tensor([1.0, -2.0])).data, [-1.0, 2.0])


class TestBackward:
    def test_add_grad(self):
        a, b = _param([1.0, 2.0]), _param([3.0, 4.0])
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 1.0])

    def test_mul_grad(self):
        a, b = _param([2.0]), _param([5.0])
        (a * b).sum().backward()
        np.testing.assert_array_equal(a.grad, [5.0])
        np.testing.assert_array_equal(b.grad, [2.0])

    def test_grad_accumulates_over_multiple_uses(self):
        a = _param([3.0])
        (a * a).sum().backward()  # d(a^2)/da = 2a
        np.testing.assert_array_equal(a.grad, [6.0])

    def test_broadcast_add_grad(self):
        a = _param(np.ones((2, 3)))
        b = _param(np.ones((3,)))
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        np.testing.assert_array_equal(b.grad, [2.0, 2.0, 2.0])

    def test_broadcast_mul_keepdim_grad(self):
        a = _param(np.ones((4, 3)))
        b = _param(np.full((4, 1), 2.0))
        (a * b).sum().backward()
        np.testing.assert_array_equal(b.grad, np.full((4, 1), 3.0))

    def test_backward_on_nonscalar_raises(self):
        a = _param([1.0, 2.0])
        with pytest.raises(ValueError, match="scalar"):
            (a * 2.0).backward()

    def test_backward_without_grad_flag_raises(self):
        with pytest.raises(ValueError):
            tensor([1.0]).backward()

    def test_zero_grad(self):
        a = _param([1.0])
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_accumulation(self):
        # f = (a + a*a); both branches feed the same parent.
        a = _param([2.0])
        b = a * a
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, [5.0])  # 1 + 2a

    def test_matmul_gradcheck(self):
        rng = np.random.default_rng(0)
        a = _param(rng.standard_normal((3, 4)))
        b = _param(rng.standard_normal((4, 2)))
        assert_grads_close(lambda: (a @ b).sum(), [a, b])

    def test_div_gradcheck(self):
        a = _param([1.0, 2.0, 3.0])
        b = _param([4.0, 5.0, 6.0])
        assert_grads_close(lambda: (a / b).sum(), [a, b])

    def test_pow_gradcheck(self):
        a = _param([1.5, 2.5])
        assert_grads_close(lambda: (a**3).sum(), [a])


class TestShaping:
    def test_sum_axis(self):
        a = _param(np.arange(6.0).reshape(2, 3))
        out = a.sum(axis=0)
        np.testing.assert_array_equal(out.data, [3.0, 5.0, 7.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        a = _param(np.ones((2, 3)))
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        a = _param([2.0, 4.0])
        out = a.mean()
        assert out.item() == 3.0
        out.backward()
        np.testing.assert_array_equal(a.grad, [0.5, 0.5])

    def test_mean_axis_gradcheck(self):
        a = _param(np.random.default_rng(1).standard_normal((3, 4)))
        assert_grads_close(lambda: a.mean(axis=1).sum(), [a])

    def test_reshape_roundtrip_grad(self):
        a = _param(np.arange(6.0))
        a.reshape(2, 3).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(6))

    def test_transpose(self):
        a = _param(np.arange(6.0).reshape(2, 3))
        out = a.T
        assert out.shape == (3, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 3)

    def test_getitem_slice_grad(self):
        a = _param(np.arange(5.0))
        a[1:3].sum().backward()
        np.testing.assert_array_equal(a.grad, [0, 1, 1, 0, 0])

    def test_getitem_column_slice_gradcheck(self):
        a = _param(np.random.default_rng(2).standard_normal((3, 6)))
        assert_grads_close(lambda: (a[:, 2:4] * a[:, 0:2]).sum(), [a])


class TestNoGrad:
    def test_no_grad_blocks_tape(self):
        a = _param([1.0])
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        from repro.nn import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        from repro.nn import is_grad_enabled

        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()
