"""Tests for the fixed-topology MLP baseline."""

import numpy as np
import pytest

from repro.baselines import FixedTopologyMLP
from repro.errors import ModelError
from repro.dataset import GenerationConfig, generate_dataset
from repro.topology import synthetic_topology


@pytest.fixture(scope="module")
def baseline(tiny_topology, tiny_samples):
    model = FixedTopologyMLP(tiny_topology, hidden=(32,), seed=0, learning_rate=3e-3)
    model.fit(tiny_samples, epochs=40, seed=1)
    return model


class TestFit:
    def test_losses_decrease(self, tiny_topology, tiny_samples):
        model = FixedTopologyMLP(tiny_topology, hidden=(32,), seed=0)
        losses = model.fit(tiny_samples, epochs=10, seed=1)
        assert losses[-1] < losses[0]

    def test_empty_train_raises(self, tiny_topology):
        with pytest.raises(ModelError):
            FixedTopologyMLP(tiny_topology, seed=0).fit([])

    def test_predict_before_fit_raises(self, tiny_topology, tiny_samples):
        model = FixedTopologyMLP(tiny_topology, seed=0)
        with pytest.raises(ModelError, match="untrained"):
            model.predict(tiny_samples[0])


class TestPredict:
    def test_shapes_and_positivity(self, baseline, tiny_samples):
        pred = baseline.predict(tiny_samples[0])
        assert pred.shape == (tiny_samples[0].num_pairs,)
        assert (pred > 0).all()

    def test_learns_on_its_own_topology(self, baseline, tiny_samples):
        """On-distribution the MLP should correlate with ground truth."""
        pred = np.concatenate([baseline.predict(s) for s in tiny_samples])
        true = np.concatenate([s.delay for s in tiny_samples])
        assert np.corrcoef(pred, true)[0, 1] > 0.5

    def test_cannot_transfer_to_other_topology(self, baseline):
        """The paper's motivating limitation: fixed input dimension."""
        other = synthetic_topology(9, seed=5)
        cfg = GenerationConfig(target_packets_per_pair=30, min_delivered=5)
        foreign = generate_dataset(other, 1, seed=9, config=cfg)[0]
        with pytest.raises(ModelError, match="fixed input dimension"):
            baseline.predict(foreign)

    def test_cannot_train_on_mixed_topologies(self, tiny_topology, tiny_samples):
        other = synthetic_topology(9, seed=5)
        cfg = GenerationConfig(target_packets_per_pair=30, min_delivered=5)
        foreign = generate_dataset(other, 1, seed=9, config=cfg)
        model = FixedTopologyMLP(tiny_topology, seed=0)
        with pytest.raises(ModelError):
            model.fit(list(tiny_samples) + foreign)
