"""Tests for the packet-loss prediction extension."""

import numpy as np
import pytest

from repro.core import DropsPredictor, HyperParams, LossRateCodec
from repro.dataset import GenerationConfig, generate_dataset
from repro.errors import ModelError
from repro.topology import synthetic_topology


@pytest.fixture(scope="module")
def lossy_samples():
    """High-intensity bursty scenarios on a small net: real packet loss."""
    topo = synthetic_topology(6, seed=3, mean_degree=2.5)
    cfg = GenerationConfig(
        target_packets_per_pair=150,
        min_delivered=15,
        arrivals="onoff",
        intensity_range=(0.75, 0.95),
        buffer_packets=16,
    )
    return generate_dataset(topo, 10, seed=21, config=cfg)


class TestLossRateCodec:
    def test_roundtrip_interior_values(self):
        codec = LossRateCodec.fit(np.array([0.01, 0.05, 0.2, 0.5]))
        values = np.array([0.02, 0.1, 0.4])
        np.testing.assert_allclose(codec.decode(codec.encode(values)), values, rtol=1e-9)

    def test_zero_maps_to_floor(self):
        codec = LossRateCodec.fit(np.array([0.0, 0.1, 0.2]))
        decoded = codec.decode(codec.encode(np.array([0.0])))
        assert 0.0 < decoded[0] <= codec.floor * 1.01

    def test_constant_rates_no_nan(self):
        codec = LossRateCodec.fit(np.zeros(10))
        assert np.isfinite(codec.encode(np.zeros(3))).all()

    def test_decode_bounded(self):
        codec = LossRateCodec.fit(np.array([0.01, 0.3]))
        out = codec.decode(np.array([-100.0, 0.0, 100.0]))
        assert ((out >= 0) & (out <= 1)).all()

    def test_dict_roundtrip(self):
        codec = LossRateCodec.fit(np.array([0.05, 0.2]))
        restored = LossRateCodec.from_dict(codec.to_dict())
        assert restored == codec

    def test_monotone(self):
        codec = LossRateCodec.fit(np.array([0.01, 0.1, 0.4]))
        encoded = codec.encode(np.array([0.01, 0.05, 0.2]))
        assert (np.diff(encoded) > 0).all()


class TestDropsPredictor:
    HP = HyperParams(
        link_state_dim=8, path_state_dim=8, message_passing_steps=2,
        readout_hidden=(12,), learning_rate=3e-3,
    )

    def test_dataset_actually_has_loss(self, lossy_samples):
        total = np.concatenate([s.loss_rate for s in lossy_samples])
        assert total.max() > 0.01

    def test_fit_reduces_loss(self, lossy_samples):
        predictor = DropsPredictor(self.HP, seed=0)
        losses = predictor.fit(lossy_samples, epochs=8)
        assert losses[-1] < losses[0]

    def test_predictions_in_unit_interval(self, lossy_samples):
        predictor = DropsPredictor(self.HP, seed=0)
        predictor.fit(lossy_samples, epochs=5)
        pred = predictor.predict(lossy_samples[0])
        assert ((pred >= 0) & (pred <= 1)).all()

    def test_learns_correlation(self, lossy_samples):
        predictor = DropsPredictor(self.HP, seed=1)
        predictor.fit(lossy_samples, epochs=25)
        metrics = predictor.evaluate(lossy_samples)
        assert metrics["pearson"] > 0.5
        assert metrics["mae"] < 0.2

    def test_readout_forced_to_one_target(self):
        predictor = DropsPredictor(HyperParams(), seed=0)
        assert predictor.model.hparams.readout_targets == 1

    def test_untrained_predict_raises(self, lossy_samples):
        with pytest.raises(ModelError, match="untrained"):
            DropsPredictor(self.HP, seed=0).predict(lossy_samples[0])

    def test_lossless_training_set_rejected(self, tiny_samples):
        # The low-intensity Poisson fixture has (almost) no loss; if it has
        # exactly zero everywhere the predictor must refuse.
        total = np.concatenate([s.loss_rate for s in tiny_samples])
        predictor = DropsPredictor(self.HP, seed=0)
        if (total == 0).all():
            with pytest.raises(ModelError, match="zero packet loss"):
                predictor.fit(list(tiny_samples))
        else:
            predictor.fit(list(tiny_samples), epochs=1)

    def test_empty_fit_raises(self):
        with pytest.raises(ModelError):
            DropsPredictor(self.HP, seed=0).fit([])
