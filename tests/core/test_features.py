"""Tests for model-input construction and feature scaling."""

import numpy as np
import pytest

from repro.core import FeatureScaler, build_model_input
from repro.errors import ModelError
from repro.routing import RoutingScheme
from repro.topology import nsfnet
from repro.traffic import TrafficMatrix, uniform_traffic


@pytest.fixture(scope="module")
def topo():
    return nsfnet()


@pytest.fixture(scope="module")
def routing(topo):
    return RoutingScheme.shortest_path(topo)


@pytest.fixture(scope="module")
def tm(topo):
    return uniform_traffic(topo.num_nodes, 100.0, seed=0)


class TestBuildModelInput:
    def test_shapes(self, topo, routing, tm):
        inp = build_model_input(topo, routing, tm)
        assert inp.num_paths == 182
        assert inp.num_links == topo.num_links
        assert inp.link_indices.shape == (182, inp.max_path_length)
        assert inp.mask.shape == inp.link_indices.shape

    def test_mask_matches_indices(self, topo, routing, tm):
        inp = build_model_input(topo, routing, tm)
        np.testing.assert_array_equal(inp.mask, inp.link_indices >= 0)

    def test_link_sequence_matches_routing(self, topo, routing, tm):
        inp = build_model_input(topo, routing, tm)
        for row, pair in zip(inp.link_indices, inp.pairs):
            expected = routing.link_path(*pair)
            assert tuple(row[row >= 0]) == expected

    def test_path_features_are_scaled_traffic(self, topo, routing, tm):
        scaler = FeatureScaler(2.0, 50.0, 2.0, np.zeros(2), np.ones(2))
        inp = build_model_input(topo, routing, tm, scaler=scaler)
        for feat, pair in zip(inp.path_features[:, 0], inp.pairs):
            assert feat == pytest.approx(tm.rate(*pair) / 50.0)

    def test_include_load_adds_feature_column(self, topo, routing, tm):
        inp = build_model_input(topo, routing, tm, include_load=True)
        assert inp.link_features.shape[1] == 2

    def test_explicit_pairs_subset(self, topo, routing, tm):
        inp = build_model_input(topo, routing, tm, pairs=[(0, 1), (3, 9)])
        assert inp.pairs == ((0, 1), (3, 9))

    def test_zero_traffic_raises(self, topo, routing):
        empty = TrafficMatrix(np.zeros((14, 14)))
        with pytest.raises(ModelError, match="no routed pairs"):
            build_model_input(topo, routing, empty)


class TestFeatureScaler:
    def test_identity_roundtrip(self):
        scaler = FeatureScaler.identity()
        targets = np.array([[0.5, 0.01], [1.5, 0.2]])
        np.testing.assert_allclose(
            scaler.decode_targets(scaler.encode_targets(targets)), targets
        )

    def test_fit_standardizes(self):
        rng = np.random.default_rng(0)
        targets = rng.lognormal(mean=-2.0, sigma=1.0, size=(500, 2))
        scaler = FeatureScaler.fit(
            np.array([1e4]), np.array([100.0]), np.log(targets)
        )
        encoded = scaler.encode_targets(targets)
        np.testing.assert_allclose(encoded.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(encoded.std(axis=0), 1.0, atol=1e-9)

    def test_fit_constant_targets_no_nan(self):
        targets_log = np.zeros((10, 2))
        scaler = FeatureScaler.fit(np.array([1.0]), np.array([1.0]), targets_log)
        assert (scaler.target_log_std == 1.0).all()

    def test_encode_clamps_nonpositive(self):
        scaler = FeatureScaler.identity()
        encoded = scaler.encode_targets(np.array([[0.0, 1.0]]))
        assert np.isfinite(encoded).all()

    def test_dict_roundtrip(self):
        scaler = FeatureScaler(3.0, 4.0, 5.0, np.array([0.1, 0.2]), np.array([1.1, 1.2]))
        restored = FeatureScaler.from_dict(scaler.to_dict())
        assert restored.capacity_scale == 3.0
        np.testing.assert_array_equal(restored.target_log_std, [1.1, 1.2])
