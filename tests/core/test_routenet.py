"""Tests for the RouteNet model: shapes, determinism, permutation behavior,
gradients, structural sensitivity, and checkpointing."""

import numpy as np
import pytest

from repro.core import (
    FeatureScaler,
    HyperParams,
    RouteNet,
    build_model_input,
)
from repro.errors import ModelError
from repro.routing import RoutingScheme
from repro.topology import nsfnet, geant2, synthetic_topology
from repro.traffic import uniform_traffic


@pytest.fixture(scope="module")
def topo():
    return nsfnet()


@pytest.fixture(scope="module")
def inputs(topo):
    routing = RoutingScheme.shortest_path(topo)
    tm = uniform_traffic(topo.num_nodes, 100.0, seed=0)
    return build_model_input(topo, routing, tm)


SMALL = HyperParams(
    link_state_dim=6, path_state_dim=6, message_passing_steps=2, readout_hidden=(8,)
)


class TestHyperParams:
    def test_defaults_valid(self):
        HyperParams()

    def test_bad_steps(self):
        with pytest.raises(ModelError):
            HyperParams(message_passing_steps=0)

    def test_bad_dropout(self):
        with pytest.raises(ModelError):
            HyperParams(dropout=1.0)

    def test_dict_roundtrip(self):
        hp = HyperParams(readout_hidden=(12, 8))
        assert HyperParams.from_dict(hp.to_dict()) == hp


class TestForward:
    def test_output_shape(self, inputs):
        model = RouteNet(SMALL, seed=0)
        out = model.forward(inputs)
        assert out.shape == (inputs.num_paths, 2)

    def test_deterministic_under_seed(self, inputs):
        a = RouteNet(SMALL, seed=1).forward(inputs).numpy()
        b = RouteNet(SMALL, seed=1).forward(inputs).numpy()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, inputs):
        a = RouteNet(SMALL, seed=1).forward(inputs).numpy()
        b = RouteNet(SMALL, seed=2).forward(inputs).numpy()
        assert not np.allclose(a, b)

    def test_wrong_feature_count_raises(self, topo):
        routing = RoutingScheme.shortest_path(topo)
        tm = uniform_traffic(topo.num_nodes, 100.0, seed=0)
        inputs_with_load = build_model_input(topo, routing, tm, include_load=True)
        model = RouteNet(SMALL, seed=0)  # expects 1 link feature
        with pytest.raises(ModelError, match="link features"):
            model.forward(inputs_with_load)

    def test_path_permutation_equivariance(self, topo):
        """Reordering input paths permutes outputs identically."""
        routing = RoutingScheme.shortest_path(topo)
        tm = uniform_traffic(topo.num_nodes, 100.0, seed=3)
        base = build_model_input(topo, routing, tm)
        perm = np.random.default_rng(0).permutation(base.num_paths)
        from repro.core.features import ModelInput

        permuted = ModelInput(
            pairs=tuple(base.pairs[i] for i in perm),
            link_features=base.link_features,
            path_features=base.path_features[perm],
            link_indices=base.link_indices[perm],
            mask=base.mask[perm],
        )
        model = RouteNet(SMALL, seed=4)
        out_base = model.forward(base).numpy()
        out_perm = model.forward(permuted).numpy()
        np.testing.assert_allclose(out_perm, out_base[perm], atol=1e-10)

    def test_traffic_sensitivity(self, topo):
        """More traffic on a path must change its prediction."""
        routing = RoutingScheme.shortest_path(topo)
        light = uniform_traffic(topo.num_nodes, 10.0, seed=5, spread=0.0)
        heavy = uniform_traffic(topo.num_nodes, 1_000.0, seed=5, spread=0.0)
        scaler = FeatureScaler(1e4, 100.0, 1e4, np.zeros(2), np.ones(2))
        model = RouteNet(SMALL, seed=6)
        out_light = model.forward(build_model_input(topo, routing, light, scaler)).numpy()
        out_heavy = model.forward(build_model_input(topo, routing, heavy, scaler)).numpy()
        assert not np.allclose(out_light, out_heavy)

    def test_handles_different_topology_sizes(self):
        """The same weights must run on 14, 24 and 50-node networks."""
        model = RouteNet(SMALL, seed=7)
        for topo in (nsfnet(), geant2(), synthetic_topology(50, seed=0)):
            routing = RoutingScheme.shortest_path(topo)
            tm = uniform_traffic(topo.num_nodes, 100.0, seed=1)
            out = model.forward(build_model_input(topo, routing, tm))
            assert out.shape[0] == topo.num_nodes * (topo.num_nodes - 1)
            assert np.isfinite(out.numpy()).all()

    def test_rnn_cell_variant_runs(self, inputs):
        hp = HyperParams(
            link_state_dim=6, path_state_dim=6, message_passing_steps=2,
            readout_hidden=(8,), cell_type="rnn",
        )
        out = RouteNet(hp, seed=15).forward(inputs)
        assert np.isfinite(out.numpy()).all()

    def test_unknown_cell_type_rejected(self):
        with pytest.raises(ModelError, match="cell type"):
            HyperParams(cell_type="lstm")

    def test_more_message_passing_steps_changes_output(self, inputs):
        shallow = RouteNet(HyperParams(link_state_dim=6, path_state_dim=6,
                                       message_passing_steps=1, readout_hidden=(8,)), seed=8)
        deep = RouteNet(HyperParams(link_state_dim=6, path_state_dim=6,
                                    message_passing_steps=4, readout_hidden=(8,)), seed=8)
        assert not np.allclose(
            shallow.forward(inputs).numpy(), deep.forward(inputs).numpy()
        )


class TestGradients:
    def test_all_parameters_receive_gradients(self, inputs):
        model = RouteNet(SMALL, seed=9)
        loss = (model.forward(inputs) ** 2).mean()
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"{name} got no gradient"
            assert np.isfinite(param.grad).all(), f"{name} gradient not finite"

    def test_gradcheck_tiny_scenario(self):
        """Full RouteNet gradient vs finite differences on a 3-node net."""
        from repro.topology import Topology
        from tests.nn.gradcheck import assert_grads_close

        topo = Topology.from_edges(3, [(0, 1), (1, 2), (0, 2)], capacity=1.0)
        routing = RoutingScheme.shortest_path(topo)
        tm = uniform_traffic(3, 1.0, seed=0)
        inputs = build_model_input(topo, routing, tm)
        hp = HyperParams(
            link_state_dim=3, path_state_dim=3, message_passing_steps=2,
            readout_hidden=(4,), readout_targets=1,
        )
        model = RouteNet(hp, seed=10)
        assert_grads_close(
            lambda: (model.forward(inputs) ** 2).sum(),
            list(model.parameters()),
            rtol=5e-4,
            atol=1e-7,
        )


class TestPredictAndCheckpoint:
    def test_predict_returns_raw_units(self, inputs):
        model = RouteNet(SMALL, seed=11)
        scaler = FeatureScaler(1.0, 1.0, 1.0, np.array([-2.0, -4.0]), np.array([0.5, 0.5]))
        pred = model.predict(inputs, scaler)
        assert set(pred) == {"delay", "jitter"}
        assert (pred.delay > 0).all()

    def test_single_target_predict_has_no_jitter(self, inputs):
        hp = HyperParams(link_state_dim=6, path_state_dim=6,
                         message_passing_steps=2, readout_hidden=(8,), readout_targets=1)
        model = RouteNet(hp, seed=12)
        scaler = FeatureScaler(1.0, 1.0, 1.0, np.zeros(1), np.ones(1))
        pred = model.predict(inputs, scaler)
        assert "jitter" not in pred

    def test_save_load_roundtrip(self, inputs, tmp_path):
        model = RouteNet(SMALL, seed=13)
        scaler = FeatureScaler(2.0, 3.0, 4.0, np.zeros(2), np.ones(2))
        path = tmp_path / "routenet.npz"
        model.save(str(path), scaler, extra_meta={"trained_on": ["nsfnet"]})
        restored, restored_scaler, extra = RouteNet.load(str(path))
        assert extra == {"trained_on": ["nsfnet"]}
        assert restored_scaler.capacity_scale == 2.0
        np.testing.assert_array_equal(
            model.forward(inputs).numpy(), restored.forward(inputs).numpy()
        )

    def test_load_garbage_checkpoint_raises(self, tmp_path):
        from repro import nn

        path = tmp_path / "bad.npz"
        nn.save_state(path, {"w": np.zeros(3)}, meta={})
        with pytest.raises(ModelError, match="metadata"):
            RouteNet.load(str(path))
