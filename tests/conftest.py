"""Shared fixtures: small cached datasets so expensive simulation happens once.

Setting ``REPRO_TSAN=1`` in the environment runs the whole suite with the
dynamic lockset checker installed (``repro.analysis.concurrency.runtime``):
every ``tsan.make_lock``/``make_condition`` in the serving and pool layers
becomes an instrumented wrapper, and each test ends by asserting no race
candidate or lock-order inversion was observed during it.
"""

import pytest

from repro.analysis.concurrency import runtime as _tsan_runtime
from repro.dataset import GenerationConfig, generate_dataset
from repro.topology import nsfnet, synthetic_topology

#: Fast generation profile used across the test suite: short simulations,
#: permissive label filter.  Quality is enough for learning tests, not for
#: paper-grade numbers.
FAST_CONFIG = GenerationConfig(
    target_packets_per_pair=60.0,
    min_delivered=10,
    intensity_range=(0.3, 0.7),
)


@pytest.fixture(scope="session", autouse=True)
def _tsan_from_env():
    """Install the dynamic lockset checker when ``REPRO_TSAN=1``."""
    installed = _tsan_runtime.install_from_env()
    yield
    if installed:
        _tsan_runtime.uninstall()


@pytest.fixture(autouse=True)
def _tsan_per_test(_tsan_from_env):
    """Per-test isolation + end-of-test assertions under ``REPRO_TSAN=1``."""
    if not _tsan_runtime.installed():
        yield
        return
    _tsan_runtime.reset()
    yield
    _tsan_runtime.assert_race_free()
    _tsan_runtime.assert_no_lock_inversion()


@pytest.fixture
def tsan_runtime():
    """Explicitly-installed checker for tests that exercise it directly.

    Unlike the env-gated autouse fixture this always installs, so race
    regression tests run in every CI job, not only the ``REPRO_TSAN=1`` one.
    """
    was_installed = _tsan_runtime.installed()
    _tsan_runtime.install()
    _tsan_runtime.reset()
    yield _tsan_runtime
    _tsan_runtime.reset()
    if not was_installed:
        _tsan_runtime.uninstall()


@pytest.fixture(scope="session")
def nsfnet_topology():
    return nsfnet()


@pytest.fixture(scope="session")
def nsfnet_samples(nsfnet_topology):
    """12 simulated NSFNET scenarios (session-cached)."""
    return generate_dataset(nsfnet_topology, 12, seed=101, config=FAST_CONFIG)


@pytest.fixture(scope="session")
def tiny_topology():
    return synthetic_topology(6, seed=77, mean_degree=2.5)


@pytest.fixture(scope="session")
def tiny_samples(tiny_topology):
    """8 simulated scenarios on a 6-node synthetic network (fast)."""
    return generate_dataset(tiny_topology, 8, seed=55, config=FAST_CONFIG)
