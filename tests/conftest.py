"""Shared fixtures: small cached datasets so expensive simulation happens once."""

import pytest

from repro.dataset import GenerationConfig, generate_dataset
from repro.topology import nsfnet, synthetic_topology

#: Fast generation profile used across the test suite: short simulations,
#: permissive label filter.  Quality is enough for learning tests, not for
#: paper-grade numbers.
FAST_CONFIG = GenerationConfig(
    target_packets_per_pair=60.0,
    min_delivered=10,
    intensity_range=(0.3, 0.7),
)


@pytest.fixture(scope="session")
def nsfnet_topology():
    return nsfnet()


@pytest.fixture(scope="session")
def nsfnet_samples(nsfnet_topology):
    """12 simulated NSFNET scenarios (session-cached)."""
    return generate_dataset(nsfnet_topology, 12, seed=101, config=FAST_CONFIG)


@pytest.fixture(scope="session")
def tiny_topology():
    return synthetic_topology(6, seed=77, mean_degree=2.5)


@pytest.fixture(scope="session")
def tiny_samples(tiny_topology):
    """8 simulated scenarios on a 6-node synthetic network (fast)."""
    return generate_dataset(tiny_topology, 8, seed=55, config=FAST_CONFIG)
