"""End-to-end behaviour of bursty (on-off) workloads in the simulator.

The baselines experiment hinges on bursty traffic producing more queueing
than Poisson at equal mean rate; these tests pin that physical property.
"""

import numpy as np
import pytest

from repro.routing import RoutingScheme
from repro.simulator import SimulationConfig, simulate
from repro.topology import Topology
from repro.traffic import TrafficMatrix


def scenario():
    topo = Topology.from_edges(2, [(0, 1)], capacity=10_000.0)
    routing = RoutingScheme.shortest_path(topo)
    rates = np.zeros((2, 2))
    rates[0, 1] = 6_000.0  # mean utilization 0.6
    return topo, routing, TrafficMatrix(rates)


def run(arrivals: str, seed: int = 5):
    topo, routing, tm = scenario()
    cfg = SimulationConfig(
        duration=2_000.0, warmup=200.0, seed=seed, arrivals=arrivals,
        buffer_packets=10_000,
    )
    return simulate(topo, routing, tm, cfg).flows[(0, 1)]


class TestBurstyVsPoisson:
    def test_equal_mean_rate(self):
        poisson = run("poisson")
        onoff = run("onoff")
        # Same offered rate -> comparable delivered counts (within 20%; the
        # on-off process has a long burst timescale so finite-horizon rate
        # estimates wobble more than Poisson's).
        assert onoff.delivered == pytest.approx(poisson.delivered, rel=0.2)

    def test_onoff_has_higher_mean_delay(self):
        """Burstiness inflates queueing delay at equal utilization — the
        physical fact that breaks the M/M/1 baseline."""
        assert run("onoff").mean_delay > 1.3 * run("poisson").mean_delay

    def test_onoff_has_higher_jitter(self):
        assert run("onoff").jitter > run("poisson").jitter

    def test_deterministic_arrivals_have_lower_delay(self):
        """CBR smooths arrivals: less queueing than Poisson (M/D/1 < M/M/1
        in the arrival dimension too)."""
        assert run("deterministic").mean_delay < run("poisson").mean_delay
