"""Tests for the end-to-end discrete-event simulator.

Includes validation against closed-form M/M/1 results: a single-link network
with Poisson arrivals and exponential packet sizes *is* an M/M/1 queue, so
the simulator's mean delay must converge to 1/(mu - lambda).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.queueing import mm1_mean_delay
from repro.routing import RoutingScheme
from repro.simulator import NetworkSimulator, SimulationConfig, simulate
from repro.topology import Topology, nsfnet
from repro.traffic import TrafficMatrix, uniform_traffic, scale_to_utilization


def two_node(capacity=10_000.0) -> Topology:
    return Topology.from_edges(2, [(0, 1)], capacity=capacity)


def one_flow_tm(n, src, dst, rate) -> TrafficMatrix:
    rates = np.zeros((n, n))
    rates[src, dst] = rate
    return TrafficMatrix(rates)


class TestConfig:
    def test_bad_duration(self):
        with pytest.raises(SimulationError):
            SimulationConfig(duration=0.0)

    def test_bad_warmup(self):
        with pytest.raises(SimulationError):
            SimulationConfig(duration=10.0, warmup=10.0)

    def test_bad_packet_size_model(self):
        with pytest.raises(SimulationError):
            SimulationConfig(packet_size="pareto")


class TestBasicRuns:
    def test_conservation_reported(self):
        topo = two_node()
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, 3_000.0)
        res = simulate(topo, routing, tm, SimulationConfig(duration=30.0, seed=1))
        assert res.generated == res.delivered + res.dropped
        assert res.in_flight == 0

    def test_no_traffic_raises(self):
        topo = two_node()
        routing = RoutingScheme.shortest_path(topo)
        with pytest.raises(SimulationError, match="no routed positive-demand"):
            simulate(topo, routing, TrafficMatrix(np.zeros((2, 2))))

    def test_wrong_tm_size_raises(self):
        topo = two_node()
        routing = RoutingScheme.shortest_path(topo)
        with pytest.raises(SimulationError):
            NetworkSimulator(topo, routing, one_flow_tm(3, 0, 1, 100.0))

    def test_deterministic_under_seed(self):
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        tm = scale_to_utilization(
            uniform_traffic(14, 1.0, seed=0), topo, routing, 0.5
        )
        cfg = SimulationConfig(duration=10.0, seed=42)
        a = simulate(topo, routing, tm, cfg)
        b = simulate(topo, routing, tm, cfg)
        assert a.generated == b.generated
        for pair in a.flows:
            np.testing.assert_equal(
                a.flows[pair].mean_delay, b.flows[pair].mean_delay
            )  # nan-aware equality: unobserved flows stay unobserved

    def test_different_seed_changes_run(self):
        topo = two_node()
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, 3_000.0)
        a = simulate(topo, routing, tm, SimulationConfig(duration=20.0, seed=1))
        b = simulate(topo, routing, tm, SimulationConfig(duration=20.0, seed=2))
        assert a.flows[(0, 1)].mean_delay != b.flows[(0, 1)].mean_delay

    def test_propagation_delay_adds_to_path_delay(self):
        base = Topology.from_edges(2, [(0, 1)], capacity=1e9)
        slow = Topology.from_edges(2, [(0, 1)], capacity=1e9, propagation_delay=0.5)
        tm = one_flow_tm(2, 0, 1, 10_000.0)
        cfg = SimulationConfig(duration=10.0, seed=0)
        fast_res = simulate(base, RoutingScheme.shortest_path(base), tm, cfg)
        slow_res = simulate(slow, RoutingScheme.shortest_path(slow), tm, cfg)
        delta = slow_res.flows[(0, 1)].mean_delay - fast_res.flows[(0, 1)].mean_delay
        assert delta == pytest.approx(0.5, rel=1e-6)


class TestAgainstTheory:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_single_link_matches_mm1(self, rho):
        """Poisson + exponential sizes on one link == M/M/1."""
        capacity = 10_000.0
        mean_packet = 1_000.0
        mu = capacity / mean_packet  # 10 packets/s
        lam = rho * mu
        topo = two_node(capacity)
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, lam * mean_packet)
        cfg = SimulationConfig(
            duration=4_000.0, warmup=200.0, seed=7, buffer_packets=10_000
        )
        res = simulate(topo, routing, tm, cfg)
        expected = mm1_mean_delay(lam, mu)
        assert res.flows[(0, 1)].mean_delay == pytest.approx(expected, rel=0.08)

    def test_single_link_jitter_matches_mm1_variance(self):
        capacity, mean_packet, rho = 10_000.0, 1_000.0, 0.5
        mu = capacity / mean_packet
        lam = rho * mu
        topo = two_node(capacity)
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, lam * mean_packet)
        cfg = SimulationConfig(duration=4_000.0, warmup=200.0, seed=3, buffer_packets=10_000)
        res = simulate(topo, routing, tm, cfg)
        expected_var = mm1_mean_delay(lam, mu) ** 2  # exponential sojourn
        assert res.flows[(0, 1)].jitter == pytest.approx(expected_var, rel=0.2)

    def test_overload_drops_packets(self):
        topo = two_node(1_000.0)
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, 3_000.0)  # 3x overload
        cfg = SimulationConfig(duration=60.0, seed=0, buffer_packets=8)
        res = simulate(topo, routing, tm, cfg)
        assert res.overall_loss_rate > 0.4

    def test_saturated_link_utilization_at_most_one(self):
        """Regression: drain-phase service used to accrue busy time past the
        generation window, and a silent clamp hid the resulting > 1 ratio.
        A saturated link must now report utilization <= 1 structurally."""
        topo = two_node(1_000.0)
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, 3_000.0)  # 3x overload
        cfg = SimulationConfig(duration=60.0, seed=0, buffer_packets=64)
        res = simulate(topo, routing, tm, cfg)
        util = res.links[topo.link_id(0, 1)].utilization
        assert util <= 1.0
        assert util == pytest.approx(1.0, abs=0.05)  # saturated, not clamped

    def test_light_load_delay_close_to_service_time(self):
        topo = two_node(10_000.0)
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, 100.0)  # rho = 0.01
        res = simulate(topo, routing, tm, SimulationConfig(duration=2_000.0, seed=5))
        # Delay ~ service time = 1000 bits / 10000 bps = 0.1 s
        assert res.flows[(0, 1)].mean_delay == pytest.approx(0.1, rel=0.15)


class TestMultiHop:
    def test_tandem_delay_additive_at_light_load(self):
        """At negligible load, delay over k hops ~ k * service time."""
        topo = Topology.from_edges(4, [(0, 1), (1, 2), (2, 3)], capacity=10_000.0)
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(4, 0, 3, 100.0)
        res = simulate(topo, routing, tm, SimulationConfig(duration=2_000.0, seed=6))
        assert res.flows[(0, 3)].mean_delay == pytest.approx(0.3, rel=0.15)

    def test_link_utilization_reflects_load(self):
        topo = two_node(10_000.0)
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, 5_000.0)
        res = simulate(topo, routing, tm, SimulationConfig(duration=500.0, seed=2))
        forward = res.links[topo.link_id(0, 1)]
        assert forward.utilization == pytest.approx(0.5, rel=0.1)
        backward = res.links[topo.link_id(1, 0)]
        assert backward.utilization == 0.0

    def test_flow_stats_fields(self):
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        tm = scale_to_utilization(uniform_traffic(14, 1.0, seed=1), topo, routing, 0.5)
        res = simulate(topo, routing, tm, SimulationConfig(duration=50.0, seed=9))
        some = next(iter(res.flows.values()))
        assert some.min_delay <= some.mean_delay <= some.max_delay
        assert some.jitter >= 0

    def test_per_flow_totals_sum_to_run_counters(self):
        """Drop/delivery accounting invariant: the run-level conservation
        counters cover every packet (warmup included) and the per-flow
        ``*_total`` counters partition them exactly; the plain per-flow
        counters are the post-warmup subset feeding the labels."""
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        tm = scale_to_utilization(
            uniform_traffic(14, 1.0, seed=3), topo, routing, 0.95
        )
        cfg = SimulationConfig(duration=40.0, warmup=8.0, seed=3, buffer_packets=8)
        res = simulate(topo, routing, tm, cfg)
        assert res.dropped > 0  # near-saturation with tiny buffers
        assert res.generated == res.delivered + res.dropped + res.in_flight
        assert sum(f.delivered_total for f in res.flows.values()) == res.delivered
        assert sum(f.dropped_total for f in res.flows.values()) == res.dropped
        for flow in res.flows.values():
            assert flow.delivered <= flow.delivered_total
            assert flow.dropped <= flow.dropped_total
        # Warmup packets are dropped too — the recorded counters must not
        # see them, the totals must.
        assert sum(f.dropped for f in res.flows.values()) < res.dropped

    @given(seed=st.integers(0, 1_000))
    @settings(max_examples=5, deadline=None)
    def test_property_conservation_on_random_scenarios(self, seed):
        topo = nsfnet()
        routing = RoutingScheme.random_weighted(topo, seed=seed)
        tm = scale_to_utilization(
            uniform_traffic(14, 1.0, seed=seed), topo, routing, 0.7
        )
        res = simulate(topo, routing, tm, SimulationConfig(duration=15.0, seed=seed))
        assert res.generated == res.delivered + res.dropped
        total_link_drops = sum(l.packets_dropped for l in res.links)
        assert total_link_drops == res.dropped


class TestDelayQuantiles:
    def _run(self, quantiles: bool):
        topo = two_node(10_000.0)
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, 5_000.0)
        cfg = SimulationConfig(
            duration=1_000.0, warmup=100.0, seed=4, delay_quantiles=quantiles
        )
        return simulate(topo, routing, tm, cfg).flows[(0, 1)]

    def test_disabled_by_default_gives_nan(self):
        flow = self._run(False)
        assert np.isnan(flow.p50) and np.isnan(flow.p90)

    def test_quantiles_ordered(self):
        flow = self._run(True)
        assert flow.min_delay <= flow.p50 <= flow.p90 <= flow.p99 <= flow.max_delay

    def test_p50_near_mm1_median(self):
        """M/M/1 sojourn is exponential: median = mean * ln 2."""
        flow = self._run(True)
        expected_mean = mm1_mean_delay(5.0, 10.0)
        assert flow.p50 == pytest.approx(expected_mean * np.log(2), rel=0.15)

    def test_p90_near_mm1_quantile(self):
        flow = self._run(True)
        expected = -mm1_mean_delay(5.0, 10.0) * np.log(0.1)
        assert flow.p90 == pytest.approx(expected, rel=0.2)

    def test_bad_reservoir_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(quantile_reservoir=0)


class TestResultHelpers:
    def test_delay_matrix(self):
        topo = two_node()
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, 3_000.0)
        res = simulate(topo, routing, tm, SimulationConfig(duration=30.0, seed=1))
        matrix = res.delay_matrix(2)
        assert np.isfinite(matrix[0, 1])
        assert np.isnan(matrix[1, 0])

    def test_mean_delay_vector_order(self):
        topo = two_node()
        routing = RoutingScheme.shortest_path(topo)
        tm = one_flow_tm(2, 0, 1, 3_000.0)
        res = simulate(topo, routing, tm, SimulationConfig(duration=30.0, seed=1))
        vec = res.mean_delay_vector([(0, 1), (1, 0)])
        assert np.isfinite(vec[0]) and np.isnan(vec[1])
