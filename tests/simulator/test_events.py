"""Tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.simulator import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_now_tracks_pops(self):
        q = EventQueue()
        q.push(5.0, "x")
        assert q.now == 0.0
        q.pop()
        assert q.now == 5.0

    def test_push_in_past_raises(self):
        q = EventQueue()
        q.push(5.0, "x")
        q.pop()
        with pytest.raises(SimulationError, match="before current time"):
            q.push(4.0, "y")

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        q.push(2.5, "x")
        assert q.peek_time() == 2.5
        assert len(q) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().peek_time()

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(1.0, "x")
        assert q and len(q) == 1

    def test_payloads_never_compared(self):
        """Unorderable payloads at equal times must not raise."""
        q = EventQueue()
        q.push(1.0, object())
        q.push(1.0, object())
        q.pop()
        q.pop()
