"""Tests for per-link FIFO queues."""

import pytest

from repro.errors import SimulationError
from repro.simulator import LinkQueue, Packet
from repro.topology import Link


def make_queue(capacity=1000.0, buffer_packets=3, horizon=None) -> LinkQueue:
    return LinkQueue(
        Link(0, 0, 1, capacity), buffer_packets=buffer_packets, horizon=horizon
    )


def make_packet(size=500.0) -> Packet:
    return Packet(flow=0, size_bits=size, created_at=0.0, route=(0,))


class TestLinkQueue:
    def test_enqueue_accepts_until_buffer_full(self):
        q = make_queue(buffer_packets=2)
        assert q.try_enqueue(make_packet())
        assert q.try_enqueue(make_packet())
        assert not q.try_enqueue(make_packet())
        assert q.packets_dropped == 1

    def test_occupancy_counts_in_service(self):
        q = make_queue()
        q.try_enqueue(make_packet())
        q.start_service(0.0)
        assert q.occupancy == 1
        q.try_enqueue(make_packet())
        assert q.occupancy == 2

    def test_service_time_is_size_over_capacity(self):
        q = make_queue(capacity=1000.0)
        q.try_enqueue(make_packet(size=500.0))
        _, done = q.start_service(10.0)
        assert done == pytest.approx(10.5)

    def test_fifo_order(self):
        q = make_queue()
        first, second = make_packet(100.0), make_packet(200.0)
        q.try_enqueue(first)
        q.try_enqueue(second)
        served, _ = q.start_service(0.0)
        assert served is first

    def test_start_service_when_busy_raises(self):
        q = make_queue()
        q.try_enqueue(make_packet())
        q.try_enqueue(make_packet())
        q.start_service(0.0)
        with pytest.raises(SimulationError, match="busy"):
            q.start_service(0.0)

    def test_start_service_empty_raises(self):
        with pytest.raises(SimulationError, match="no packet"):
            make_queue().start_service(0.0)

    def test_finish_service_updates_counters(self):
        q = make_queue(capacity=1000.0)
        q.try_enqueue(make_packet(size=500.0))
        q.start_service(0.0)
        packet = q.finish_service(0.5)
        assert packet.size_bits == 500.0
        assert q.packets_sent == 1
        assert q.bits_sent == 500.0
        assert q.busy_time == pytest.approx(0.5)

    def test_finish_idle_raises(self):
        with pytest.raises(SimulationError, match="idle"):
            make_queue().finish_service(0.0)

    def test_utilization(self):
        q = make_queue(capacity=1000.0)
        q.try_enqueue(make_packet(size=1000.0))
        q.start_service(0.0)
        q.finish_service(1.0)
        assert q.utilization(4.0) == pytest.approx(0.25)

    def test_utilization_bad_duration_raises(self):
        with pytest.raises(SimulationError):
            make_queue().utilization(0.0)

    def test_buffer_must_hold_one(self):
        with pytest.raises(SimulationError):
            make_queue(buffer_packets=0)


class TestMeasurementHorizon:
    """Busy time is clipped to [0, horizon] so drain-phase service — packets
    still being serialized after the generation window closes — can never
    push utilization past 1."""

    def test_service_inside_horizon_counts_fully(self):
        q = make_queue(capacity=1000.0, horizon=10.0)
        q.try_enqueue(make_packet(size=1000.0))
        q.start_service(0.0)
        q.finish_service(1.0)
        assert q.busy_time == pytest.approx(1.0)

    def test_service_straddling_horizon_counts_partially(self):
        q = make_queue(capacity=1000.0, horizon=1.0)
        q.try_enqueue(make_packet(size=1000.0))
        q.start_service(0.5)
        q.finish_service(1.5)  # only [0.5, 1.0] lies inside the horizon
        assert q.busy_time == pytest.approx(0.5)

    def test_service_entirely_past_horizon_counts_nothing(self):
        q = make_queue(capacity=1000.0, horizon=1.0)
        q.try_enqueue(make_packet(size=1000.0))
        q.start_service(2.0)
        q.finish_service(3.0)
        assert q.busy_time == 0.0

    def test_saturated_horizon_utilization_never_exceeds_one(self):
        """Back-to-back service past the window — the old accounting kept
        accruing and relied on a silent clamp to hide utilization > 1."""
        q = make_queue(capacity=1000.0, buffer_packets=10, horizon=3.0)
        now = 0.0
        for _ in range(5):  # 5 s of service against a 3 s window
            q.try_enqueue(make_packet(size=1000.0))
        for _ in range(5):
            _, done = q.start_service(now)
            q.finish_service(done)
            now = done
        assert q.utilization(3.0) == pytest.approx(1.0)

    def test_no_horizon_utilization_unclamped(self):
        """Without a horizon the ratio reports what was measured — a value
        above 1 is a real signal, not something to clamp away."""
        q = make_queue(capacity=1000.0)
        q.try_enqueue(make_packet(size=2000.0))
        q.start_service(0.0)
        q.finish_service(2.0)
        assert q.utilization(1.0) == pytest.approx(2.0)

    def test_bad_horizon_raises(self):
        with pytest.raises(SimulationError, match="horizon"):
            make_queue(horizon=0.0)
