"""Tests for the Packet dataclass."""

from repro.simulator import Packet


def make(route=(3, 5, 7)) -> Packet:
    return Packet(flow=1, size_bits=800.0, created_at=2.0, route=route)


class TestPacket:
    def test_initial_hop(self):
        p = make()
        assert p.hop == 0
        assert p.current_link() == 3
        assert p.remaining_hops == 3

    def test_advance_through_route(self):
        p = make()
        assert not p.advance()
        assert p.current_link() == 5
        assert not p.advance()
        assert p.current_link() == 7
        assert p.advance()  # delivered after last hop
        assert p.remaining_hops == 0

    def test_single_hop_delivery(self):
        p = make(route=(9,))
        assert p.advance()

    def test_default_priority_zero(self):
        assert make().priority == 0

    def test_record_flag(self):
        p = Packet(flow=0, size_bits=1.0, created_at=0.0, route=(0,), record=False)
        assert not p.record
