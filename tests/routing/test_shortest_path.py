"""Tests for Dijkstra and all-pairs shortest paths (networkx as oracle)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import dijkstra, shortest_path, all_pairs_shortest_paths
from repro.topology import Topology, nsfnet, synthetic_topology


def line(n=4) -> Topology:
    return Topology.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestDijkstra:
    def test_distances_on_line(self):
        dist, _ = dijkstra(line(), 0)
        np.testing.assert_array_equal(dist, [0, 1, 2, 3])

    def test_predecessors_on_line(self):
        _, prev = dijkstra(line(), 0)
        assert prev[3] == 2 and prev[1] == 0 and prev[0] == -1

    def test_weighted_route_change(self):
        # square 0-1-2 and 0-3-2; make 0-1 expensive
        topo = Topology.from_edges(4, [(0, 1), (1, 2), (0, 3), (3, 2)])
        w = np.ones(topo.num_links)
        w[topo.link_id(0, 1)] = 10.0
        path = shortest_path(topo, 0, 2, weights=w)
        assert path == [0, 3, 2]

    def test_bad_source_raises(self):
        with pytest.raises(RoutingError):
            dijkstra(line(), 99)

    def test_wrong_weight_shape_raises(self):
        with pytest.raises(RoutingError, match="one entry per link"):
            dijkstra(line(), 0, weights=[1.0, 2.0])

    def test_negative_weights_raise(self):
        topo = line()
        w = -np.ones(topo.num_links)
        with pytest.raises(RoutingError, match="negative"):
            dijkstra(topo, 0, weights=w)

    def test_matches_networkx_on_nsfnet_unit_weights(self):
        topo = nsfnet()
        g = topo.to_networkx()
        dist, _ = dijkstra(topo, 0)
        expected = nx.single_source_shortest_path_length(g, 0)
        for node, d in expected.items():
            assert dist[node] == d

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_matches_networkx_random_weights(self, seed):
        """Property: Dijkstra distances equal networkx on random graphs."""
        rng = np.random.default_rng(seed)
        topo = synthetic_topology(12, seed=seed)
        w = rng.uniform(0.1, 5.0, size=topo.num_links)
        g = topo.to_networkx()
        for link in topo.links:
            g[link.src][link.dst]["w"] = w[link.id]
        dist, _ = dijkstra(topo, 0, weights=w)
        expected = nx.single_source_dijkstra_path_length(g, 0, weight="w")
        for node, d in expected.items():
            assert dist[node] == pytest.approx(d)


class TestShortestPath:
    def test_same_endpoints_raise(self):
        with pytest.raises(RoutingError):
            shortest_path(line(), 1, 1)

    def test_unreachable_raises(self):
        topo = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(RoutingError, match="unreachable"):
            shortest_path(topo, 0, 3)

    def test_path_is_valid_walk(self):
        topo = nsfnet()
        path = shortest_path(topo, 0, 13)
        for u, v in zip(path[:-1], path[1:]):
            assert topo.has_link(u, v)
        assert path[0] == 0 and path[-1] == 13


class TestAllPairs:
    def test_every_pair_present(self):
        topo = nsfnet()
        paths = all_pairs_shortest_paths(topo)
        assert len(paths) == 14 * 13

    def test_paths_minimal_hop_count(self):
        topo = nsfnet()
        g = topo.to_networkx()
        paths = all_pairs_shortest_paths(topo)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for (s, d), path in paths.items():
            assert len(path) - 1 == lengths[s][d]

    def test_disconnected_raises(self):
        topo = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(RoutingError):
            all_pairs_shortest_paths(topo)
