"""Tests for RoutingScheme validation and factories."""

import pytest

from repro.errors import RoutingError
from repro.routing import RoutingScheme
from repro.topology import nsfnet, geant2


@pytest.fixture(scope="module")
def topo():
    return nsfnet()


@pytest.fixture(scope="module")
def sp(topo):
    return RoutingScheme.shortest_path(topo)


class TestValidation:
    def test_path_wrong_endpoints_rejected(self, topo):
        with pytest.raises(RoutingError, match="does not join"):
            RoutingScheme(topo, {(0, 2): [0, 1, 3]})

    def test_loop_rejected(self, topo):
        with pytest.raises(RoutingError, match="loop"):
            RoutingScheme(topo, {(0, 2): [0, 1, 0, 2]})

    def test_missing_link_rejected(self, topo):
        with pytest.raises(RoutingError, match="missing link"):
            RoutingScheme(topo, {(0, 9): [0, 9]})

    def test_short_path_rejected(self, topo):
        with pytest.raises(RoutingError, match="fewer than 2"):
            RoutingScheme(topo, {(0, 1): [0]})


class TestShortestPathScheme:
    def test_covers_all_pairs(self, sp, topo):
        assert len(sp) == topo.num_nodes * (topo.num_nodes - 1)

    def test_link_path_matches_node_path(self, sp, topo):
        for (s, d), node_path in sp.items():
            link_path = sp.link_path(s, d)
            assert len(link_path) == len(node_path) - 1
            for lid, (u, v) in zip(link_path, zip(node_path[:-1], node_path[1:])):
                assert topo.links[lid].src == u and topo.links[lid].dst == v

    def test_missing_pair_raises(self, sp):
        with pytest.raises(RoutingError):
            sp.node_path(0, 0)

    def test_contains(self, sp):
        assert (0, 1) in sp
        assert (0, 0) not in sp

    def test_max_path_length(self, sp):
        assert 1 <= sp.max_path_length() <= 8

    def test_links_used_subset(self, sp, topo):
        assert sp.links_used() <= set(range(topo.num_links))

    def test_paths_through_link_consistent(self, sp):
        lid = next(iter(sp.links_used()))
        for pair in sp.paths_through_link(lid):
            assert lid in sp.link_path(*pair)


class TestRandomSchemes:
    def test_random_weighted_deterministic_under_seed(self, topo):
        a = RoutingScheme.random_weighted(topo, seed=3)
        b = RoutingScheme.random_weighted(topo, seed=3)
        assert a.to_dict() == b.to_dict()

    def test_random_weighted_varies_with_seed(self, topo):
        a = RoutingScheme.random_weighted(topo, seed=1)
        b = RoutingScheme.random_weighted(topo, seed=2)
        assert a.to_dict() != b.to_dict()

    def test_random_weighted_all_pairs(self, topo):
        scheme = RoutingScheme.random_weighted(topo, seed=0)
        assert len(scheme) == topo.num_nodes * (topo.num_nodes - 1)

    def test_random_ksp_paths_valid(self):
        topo = geant2()
        scheme = RoutingScheme.random_ksp(topo, k=3, seed=0)
        # construction validates: reaching here means all paths were legal
        assert len(scheme) == topo.num_nodes * (topo.num_nodes - 1)

    def test_random_ksp_differs_from_shortest_sometimes(self, topo, sp):
        scheme = RoutingScheme.random_ksp(topo, k=3, seed=5)
        differing = sum(
            1 for pair in scheme.pairs if scheme.node_path(*pair) != sp.node_path(*pair)
        )
        assert differing > 0


class TestSerialization:
    def test_dict_roundtrip(self, topo, sp):
        data = sp.to_dict()
        restored = RoutingScheme.from_dict(topo, data, name=sp.name)
        assert restored.to_dict() == data

    def test_repr(self, sp):
        assert "pairs=182" in repr(sp)
