"""Tests for Yen's k-shortest paths (networkx shortest_simple_paths oracle)."""

from itertools import islice

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import k_shortest_paths
from repro.topology import Topology, nsfnet, synthetic_topology


def square() -> Topology:
    return Topology.from_edges(4, [(0, 1), (1, 2), (0, 3), (3, 2), (0, 2)])


class TestKsp:
    def test_first_path_is_shortest(self):
        paths = k_shortest_paths(square(), 0, 2, k=3)
        assert paths[0] == [0, 2]

    def test_costs_nondecreasing(self):
        paths = k_shortest_paths(nsfnet(), 0, 13, k=5)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_paths_unique(self):
        paths = k_shortest_paths(nsfnet(), 0, 9, k=6)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_paths_loopless(self):
        for path in k_shortest_paths(nsfnet(), 3, 8, k=6):
            assert len(set(path)) == len(path)

    def test_fewer_paths_when_graph_small(self):
        topo = Topology.from_edges(2, [(0, 1)])
        assert k_shortest_paths(topo, 0, 1, k=5) == [[0, 1]]

    def test_k_one_matches_shortest(self):
        paths = k_shortest_paths(square(), 0, 2, k=1)
        assert len(paths) == 1

    def test_bad_k_raises(self):
        with pytest.raises(RoutingError):
            k_shortest_paths(square(), 0, 2, k=0)

    def test_same_endpoints_raise(self):
        with pytest.raises(RoutingError):
            k_shortest_paths(square(), 1, 1, k=2)

    def test_unreachable_raises(self):
        topo = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(RoutingError, match="unreachable"):
            k_shortest_paths(topo, 0, 2, k=2)

    def test_matches_networkx_hop_counts_on_nsfnet(self):
        topo = nsfnet()
        g = topo.to_networkx()
        ours = k_shortest_paths(topo, 0, 12, k=4)
        reference = list(islice(nx.shortest_simple_paths(g, 0, 12), 4))
        assert [len(p) for p in ours] == [len(p) for p in reference]

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=10, deadline=None)
    def test_property_matches_networkx_on_random_graphs(self, seed):
        topo = synthetic_topology(10, seed=seed)
        g = topo.to_networkx()
        rng = np.random.default_rng(seed)
        s, d = rng.choice(10, size=2, replace=False)
        ours = k_shortest_paths(topo, int(s), int(d), k=3)
        reference = list(islice(nx.shortest_simple_paths(g, int(s), int(d)), 3))
        assert [len(p) for p in ours] == [len(p) for p in reference]
