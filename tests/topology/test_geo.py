"""Tests for geographic positions and propagation delays."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    NODE_POSITIONS,
    TOPOLOGY_LIBRARY,
    by_name,
    edge_propagation_delay,
    haversine_km,
    synthetic_topology,
    with_geographic_delays,
)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km((40.0, -75.0), (40.0, -75.0)) == 0.0

    def test_known_distance_ny_la(self):
        ny, la = (40.71, -74.01), (34.05, -118.24)
        assert haversine_km(ny, la) == pytest.approx(3940, rel=0.03)

    def test_symmetric(self):
        a, b = (47.6, -122.3), (29.8, -95.4)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_triangle_inequality(self):
        a, b, c = (47.6, -122.3), (40.0, -105.3), (29.8, -95.4)
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-9


class TestPropagationDelay:
    def test_transcontinental_is_tens_of_ms(self):
        seattle, dc = (47.61, -122.33), (38.91, -77.04)
        delay = edge_propagation_delay(seattle, dc)
        assert 0.015 < delay < 0.040  # one-way, through fiber with detour

    def test_scales_with_detour_factor(self):
        a, b = (47.6, -122.3), (40.7, -74.0)
        assert edge_propagation_delay(a, b, 2.0) == pytest.approx(
            2 * edge_propagation_delay(a, b, 1.0)
        )


class TestPositionsTable:
    @pytest.mark.parametrize("name", sorted(NODE_POSITIONS))
    def test_every_node_has_coordinates(self, name):
        topo = by_name(name)
        assert set(NODE_POSITIONS[name]) == set(range(topo.num_nodes))

    def test_all_reference_topologies_covered(self):
        assert set(NODE_POSITIONS) == set(TOPOLOGY_LIBRARY)


class TestWithGeographicDelays:
    @pytest.mark.parametrize("name", sorted(NODE_POSITIONS))
    def test_positive_delays_everywhere(self, name):
        topo = with_geographic_delays(by_name(name))
        assert all(l.propagation_delay > 0 for l in topo.links)

    def test_symmetric_per_edge(self):
        topo = with_geographic_delays(by_name("nsfnet"))
        for link in topo.links:
            reverse = topo.links[topo.link_id(link.dst, link.src)]
            assert link.propagation_delay == pytest.approx(reverse.propagation_delay)

    def test_capacities_and_structure_preserved(self):
        base = by_name("abilene")
        geo = with_geographic_delays(base)
        assert geo.num_links == base.num_links
        assert [l.capacity for l in geo.links] == [l.capacity for l in base.links]

    def test_longer_edges_have_more_delay(self):
        topo = with_geographic_delays(by_name("abilene"))
        seattle_sunnyvale = topo.links[topo.link_id(0, 1)].propagation_delay
        ny_dc = topo.links[topo.link_id(9, 10)].propagation_delay
        assert seattle_sunnyvale > ny_dc  # ~1100 km vs ~330 km

    def test_unknown_topology_raises(self):
        with pytest.raises(TopologyError, match="coordinates"):
            with_geographic_delays(synthetic_topology(5, seed=0))

    def test_explicit_positions(self):
        topo = synthetic_topology(3, seed=1)
        positions = {0: (0.0, 0.0), 1: (0.0, 1.0), 2: (1.0, 0.0)}
        geo = with_geographic_delays(topo, positions=positions)
        assert all(l.propagation_delay > 0 for l in geo.links)

    def test_missing_node_position_raises(self):
        topo = synthetic_topology(3, seed=1)
        with pytest.raises(TopologyError, match="no coordinates"):
            with_geographic_delays(topo, positions={0: (0.0, 0.0)})

    def test_simulator_consumes_geo_delays(self):
        """End to end: propagation shows up in simulated path delay."""
        import numpy as np

        from repro.routing import RoutingScheme
        from repro.simulator import SimulationConfig, simulate
        from repro.traffic import TrafficMatrix

        base = by_name("abilene", capacity=1e9)  # queueing negligible
        geo = with_geographic_delays(base)
        routing = RoutingScheme.shortest_path(geo)
        rates = np.zeros((11, 11))
        rates[0, 10] = 1e6  # Seattle -> New York
        res = simulate(
            geo, routing, TrafficMatrix(rates),
            SimulationConfig(duration=5.0, warmup=0.5, seed=0),
        )
        expected = sum(
            geo.links[l].propagation_delay for l in routing.link_path(0, 10)
        )
        assert res.flows[(0, 10)].mean_delay == pytest.approx(expected, rel=0.05)
