"""Tests for the Topology/Link graph model."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import Link, Topology


def triangle() -> Topology:
    return Topology.from_edges(3, [(0, 1), (1, 2), (0, 2)], capacity=100.0, name="tri")


class TestLink:
    def test_valid_link(self):
        link = Link(0, 1, 2, 10.0, 0.001)
        assert link.capacity == 10.0

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError, match="self-loop"):
            Link(0, 1, 1, 10.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(TopologyError, match="capacity"):
            Link(0, 0, 1, 0.0)

    def test_negative_propagation_rejected(self):
        with pytest.raises(TopologyError, match="propagation"):
            Link(0, 0, 1, 10.0, -1.0)


class TestConstruction:
    def test_from_edges_creates_two_links_per_edge(self):
        topo = triangle()
        assert topo.num_links == 6

    def test_per_edge_capacities(self):
        topo = Topology.from_edges(3, [(0, 1), (1, 2)], capacity=[5.0, 7.0])
        assert topo.links[topo.link_id(0, 1)].capacity == 5.0
        assert topo.links[topo.link_id(1, 0)].capacity == 5.0
        assert topo.links[topo.link_id(1, 2)].capacity == 7.0

    def test_capacity_list_length_mismatch_raises(self):
        with pytest.raises(TopologyError, match="capacity"):
            Topology.from_edges(3, [(0, 1), (1, 2)], capacity=[5.0])

    def test_too_few_nodes_rejected(self):
        with pytest.raises(TopologyError, match="at least 2"):
            Topology(1, [])

    def test_duplicate_link_rejected(self):
        links = [Link(0, 0, 1, 1.0), Link(1, 0, 1, 1.0)]
        with pytest.raises(TopologyError, match="duplicate"):
            Topology(2, links)

    def test_non_dense_link_ids_rejected(self):
        with pytest.raises(TopologyError, match="dense"):
            Topology(2, [Link(1, 0, 1, 1.0)])

    def test_unknown_node_rejected(self):
        with pytest.raises(TopologyError, match="unknown node"):
            Topology(2, [Link(0, 0, 5, 1.0)])


class TestQueries:
    def test_link_id_lookup(self):
        topo = triangle()
        lid = topo.link_id(1, 2)
        assert topo.links[lid].src == 1 and topo.links[lid].dst == 2

    def test_link_id_missing_raises(self):
        topo = Topology.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        with pytest.raises(TopologyError, match="no link"):
            topo.link_id(0, 3)

    def test_has_link(self):
        topo = triangle()
        assert topo.has_link(0, 1)
        assert not topo.has_link(0, 0)

    def test_neighbors_symmetric_for_undirected_build(self):
        topo = triangle()
        assert sorted(topo.neighbors(0)) == [1, 2]

    def test_degree(self):
        topo = Topology.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert topo.degree(0) == 3
        assert topo.degree(1) == 1

    def test_node_pairs_count(self):
        topo = triangle()
        pairs = list(topo.node_pairs())
        assert len(pairs) == 6
        assert (0, 0) not in pairs

    def test_capacities_vector(self):
        topo = triangle()
        np.testing.assert_array_equal(topo.capacities(), np.full(6, 100.0))

    def test_out_links(self):
        topo = triangle()
        outs = topo.out_links(0)
        assert all(l.src == 0 for l in outs)
        assert len(outs) == 2


class TestConnectivity:
    def test_connected_triangle(self):
        assert triangle().is_connected()

    def test_disconnected_graph(self):
        topo = Topology.from_edges(4, [(0, 1), (2, 3)])
        assert not topo.is_connected()

    def test_validate_raises_on_disconnected(self):
        topo = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(TopologyError, match="connected"):
            topo.validate()

    def test_one_way_link_not_strongly_connected(self):
        links = [Link(0, 0, 1, 1.0), Link(1, 1, 0, 1.0), Link(2, 1, 2, 1.0)]
        topo = Topology(3, links)
        assert not topo.is_connected()


class TestWithoutEdge:
    def test_removes_both_directions(self):
        topo = triangle()
        reduced = topo.without_edge(0, 1)
        assert reduced.num_links == 4
        assert not reduced.has_link(0, 1)
        assert not reduced.has_link(1, 0)

    def test_link_ids_redensified(self):
        reduced = triangle().without_edge(0, 1)
        assert [l.id for l in reduced.links] == list(range(reduced.num_links))

    def test_missing_edge_raises(self):
        topo = Topology.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        with pytest.raises(TopologyError):
            topo.without_edge(0, 2)

    def test_original_untouched(self):
        topo = triangle()
        topo.without_edge(0, 1)
        assert topo.num_links == 6


class TestInterop:
    def test_to_networkx_roundtrip_structure(self):
        topo = triangle()
        g = topo.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 6
        assert g[0][1]["capacity"] == 100.0

    def test_equality_and_hash(self):
        assert triangle() == triangle()
        assert hash(triangle()) == hash(triangle())

    def test_inequality_different_capacity(self):
        other = Topology.from_edges(3, [(0, 1), (1, 2), (0, 2)], capacity=5.0, name="tri")
        assert triangle() != other

    def test_repr(self):
        assert "nodes=3" in repr(triangle())
