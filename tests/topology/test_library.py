"""Tests for the reference topology library (NSFNET, Geant2, GBN)."""

import networkx as nx
import pytest

from repro.topology import nsfnet, geant2, gbn, abilene, by_name, TOPOLOGY_LIBRARY


class TestNsfnet:
    def test_node_and_edge_counts(self):
        topo = nsfnet()
        assert topo.num_nodes == 14
        assert topo.num_links == 42  # 21 undirected edges

    def test_connected(self):
        assert nsfnet().is_connected()

    def test_custom_capacity(self):
        topo = nsfnet(capacity=40_000.0)
        assert all(l.capacity == 40_000.0 for l in topo.links)


class TestGeant2:
    def test_node_count_is_24(self):
        """The paper evaluates generalization on the 24-node Geant2."""
        assert geant2().num_nodes == 24

    def test_connected(self):
        assert geant2().is_connected()

    def test_every_node_has_a_link(self):
        topo = geant2()
        assert all(topo.degree(n) >= 1 for n in range(topo.num_nodes))


class TestGbn:
    def test_node_count(self):
        assert gbn().num_nodes == 17

    def test_connected(self):
        assert gbn().is_connected()


class TestAbilene:
    def test_node_and_edge_counts(self):
        topo = abilene()
        assert topo.num_nodes == 11
        assert topo.num_links == 28  # 14 undirected trunks

    def test_connected(self):
        assert abilene().is_connected()


class TestLibraryLookup:
    @pytest.mark.parametrize("name", sorted(TOPOLOGY_LIBRARY))
    def test_by_name_builds_validated_topology(self, name):
        topo = by_name(name)
        topo.validate()
        assert topo.name == name

    def test_unknown_name_raises_with_options(self):
        with pytest.raises(KeyError, match="nsfnet"):
            by_name("arpanet")

    @pytest.mark.parametrize("name", sorted(TOPOLOGY_LIBRARY))
    def test_reasonable_diameter(self, name):
        """Backbones are small-diameter graphs; routing depends on this."""
        g = by_name(name).to_networkx().to_undirected()
        assert nx.diameter(g) <= 8
