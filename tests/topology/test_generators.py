"""Tests for synthetic topology generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import synthetic_topology, variable_size_family, CAPACITY_TIERS


class TestSyntheticTopology:
    def test_requested_size(self):
        assert synthetic_topology(50, seed=0).num_nodes == 50

    def test_always_connected(self):
        for seed in range(5):
            assert synthetic_topology(30, seed=seed).is_connected()

    def test_deterministic_under_seed(self):
        a = synthetic_topology(20, seed=5)
        b = synthetic_topology(20, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = synthetic_topology(20, seed=1)
        b = synthetic_topology(20, seed=2)
        assert a != b

    def test_mean_degree_close_to_target(self):
        topo = synthetic_topology(40, seed=3, mean_degree=4.0)
        mean_degree = topo.num_links / topo.num_nodes  # directed links = 2E/N
        assert 3.0 <= mean_degree <= 5.0

    def test_max_degree_respected(self):
        topo = synthetic_topology(30, seed=4, mean_degree=5.0, max_degree=6)
        # Spanning-tree construction may exceed the cap only via tree edges,
        # which for a random recursive tree stays modest; extra edges never
        # violate it.  Verify the hard invariant on extra-edge additions by
        # checking the overall cap with slack for tree attachment.
        assert max(topo.degree(n) for n in range(30)) <= 2 * 6

    def test_tiered_capacities(self):
        topo = synthetic_topology(25, seed=6, capacity=None)
        caps = {l.capacity for l in topo.links}
        assert caps <= set(CAPACITY_TIERS)

    def test_uniform_capacity(self):
        topo = synthetic_topology(10, seed=7, capacity=123.0)
        assert {l.capacity for l in topo.links} == {123.0}

    def test_too_few_nodes_raises(self):
        with pytest.raises(TopologyError):
            synthetic_topology(1, seed=0)

    def test_bad_mean_degree_raises(self):
        with pytest.raises(TopologyError):
            synthetic_topology(10, seed=0, mean_degree=0.5)

    @given(n=st.integers(2, 60), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_connected_and_sized(self, n, seed):
        topo = synthetic_topology(n, seed=seed)
        assert topo.num_nodes == n
        assert topo.is_connected()


class TestVariableSizeFamily:
    def test_sizes_respected(self):
        family = variable_size_family([10, 20, 30], seed=0)
        assert [t.num_nodes for t in family] == [10, 20, 30]

    def test_unique_names(self):
        family = variable_size_family([10, 10, 10], seed=0)
        assert len({t.name for t in family}) == 3

    def test_deterministic(self):
        a = variable_size_family([15, 25], seed=9)
        b = variable_size_family([15, 25], seed=9)
        assert a == b
