"""End-to-end CLI tests driving ``repro.cli.main`` with real artifacts."""

import pytest

from repro.cli import main, build_parser
from repro.dataset import save_dataset


@pytest.fixture(scope="module")
def dataset_path(tiny_samples, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tiny.jsonl"
    save_dataset(tiny_samples, path)
    return str(path)


@pytest.fixture(scope="module")
def model_path(dataset_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    code = main(
        [
            "train",
            "-d", dataset_path,
            "-o", str(path),
            "--epochs", "3",
            "--state-dim", "8",
            "--steps", "2",
            "--quiet",
        ]
    )
    assert code == 0
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro 1.0.0" in capsys.readouterr().out


class TestTopologies:
    def test_lists_reference_networks(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("nsfnet", "geant2", "gbn"):
            assert name in out


class TestGenerate:
    def test_generates_archive(self, tmp_path, capsys):
        out_path = tmp_path / "ds.jsonl"
        code = main(
            [
                "generate",
                "--topology", "synthetic:6:3",
                "-n", "2",
                "-o", str(out_path),
                "--packets-per-pair", "40",
            ]
        )
        assert code == 0
        assert out_path.exists()
        assert "wrote 2 samples" in capsys.readouterr().out

    def test_unknown_topology_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["generate", "--topology", "arpanet", "-o", str(tmp_path / "x.jsonl")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().out


class TestTrainEvaluate:
    def test_train_writes_checkpoint(self, model_path):
        import os

        assert os.path.exists(model_path)

    def test_evaluate_prints_metrics(self, model_path, dataset_path, capsys):
        code = main(["evaluate", "-m", model_path, "-d", dataset_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "MRE" in out and "delay" in out

    def test_evaluate_cdf_table(self, model_path, dataset_path, capsys):
        code = main(["evaluate", "-m", model_path, "-d", dataset_path, "--cdf"])
        assert code == 0
        assert "P50" in capsys.readouterr().out

    def test_evaluate_missing_model_fails_cleanly(self, dataset_path, capsys):
        code = main(["evaluate", "-m", "/nonexistent.npz", "-d", dataset_path])
        assert code == 1
        assert "error:" in capsys.readouterr().out

    def test_train_missing_dataset_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["train", "-d", "/nonexistent.jsonl", "-o", str(tmp_path / "m.npz")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().out


class TestOptimize:
    def test_prints_candidate_table(self, model_path, dataset_path, capsys):
        code = main(
            [
                "optimize", "-m", model_path, "-d", dataset_path,
                "--candidates", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "picked" in out
        assert "shortest-path" in out

    def test_objective_choice(self, model_path, dataset_path, capsys):
        code = main(
            [
                "optimize", "-m", model_path, "-d", dataset_path,
                "--candidates", "2", "--objective", "worst",
            ]
        )
        assert code == 0
        assert "worst delay" in capsys.readouterr().out


class TestWhatIf:
    def test_traffic_scaling_table(self, model_path, dataset_path, capsys):
        code = main(
            [
                "whatif", "-m", model_path, "-d", dataset_path,
                "--scale", "1.0", "2.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "traffic x1.00" in out and "traffic x2.00" in out

    def test_bad_sample_index_fails_cleanly(self, model_path, dataset_path, capsys):
        code = main(
            ["whatif", "-m", model_path, "-d", dataset_path, "--sample", "99"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().out


class TestPredict:
    def test_prints_top_paths(self, model_path, dataset_path, capsys):
        code = main(
            ["predict", "-m", model_path, "-d", dataset_path, "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out and "predicted" in out

    def test_bad_sample_index(self, model_path, dataset_path, capsys):
        code = main(
            ["predict", "-m", model_path, "-d", dataset_path, "--sample", "999"]
        )
        assert code == 1
        assert "outside" in capsys.readouterr().out

    def test_batched_serving(self, model_path, dataset_path, capsys):
        code = main(
            ["predict", "-m", model_path, "-d", dataset_path, "--batch", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sample" in out
        assert "paths/s" in out
        assert "forward" in out  # per-stage engine stats block

    def test_bad_batch_size(self, model_path, dataset_path, capsys):
        code = main(
            ["predict", "-m", model_path, "-d", dataset_path, "--batch", "0"]
        )
        assert code == 1

class TestServeBench:
    def test_reports_latency_per_rate_point(self, model_path, dataset_path, capsys):
        code = main(
            [
                "serve-bench",
                "-m", model_path,
                "-d", dataset_path,
                "--rps", "200", "400",
                "--duration", "0.1",
                "--max-batch", "4",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("offered") == 2  # one line per rate point
        assert "p50" in out and "p99" in out
        assert "cache hits" in out

    def test_bad_config_fails_cleanly(self, model_path, dataset_path, capsys):
        code = main(
            [
                "serve-bench",
                "-m", model_path,
                "-d", dataset_path,
                "--rps", "100",
                "--max-batch", "0",
            ]
        )
        assert code == 1
        assert "max_batch" in capsys.readouterr().out
