"""Tests for the fig3 relative-error CDF harness."""

import numpy as np
import pytest

from repro.evaluation import ErrorCDF, compute_error_cdf, cdf_table


def cdf_from(noise=0.1, n=1000, seed=0, label="d"):
    rng = np.random.default_rng(seed)
    true = rng.uniform(0.5, 2.0, size=n)
    pred = true * (1.0 + noise * rng.standard_normal(n))
    return compute_error_cdf(pred, true, label=label)


class TestErrorCDF:
    def test_errors_sorted(self):
        cdf = cdf_from()
        assert (np.diff(cdf.errors) >= 0).all()

    def test_median_near_zero_for_unbiased(self):
        assert abs(cdf_from(noise=0.1).quantile(0.5)) < 0.02

    def test_abs_quantile_monotone(self):
        cdf = cdf_from()
        assert cdf.abs_quantile(0.5) <= cdf.abs_quantile(0.9)

    def test_fraction_within_monotone(self):
        cdf = cdf_from()
        assert cdf.fraction_within(0.05) <= cdf.fraction_within(0.2)

    def test_fraction_within_all(self):
        cdf = cdf_from()
        assert cdf.fraction_within(1e9) == 1.0

    def test_negative_threshold_raises(self):
        with pytest.raises(ValueError):
            cdf_from().fraction_within(-0.1)

    def test_series_is_valid_cdf(self):
        series = cdf_from().series(num_points=11)
        fs = [f for _, f in series]
        assert fs == sorted(fs)
        assert fs[-1] == pytest.approx(1.0)

    def test_series_needs_two_points(self):
        with pytest.raises(ValueError):
            cdf_from().series(num_points=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorCDF(label="x", errors=np.array([]))

    def test_tighter_model_dominates(self):
        """Lower-noise predictions give a CDF that rises faster."""
        tight = cdf_from(noise=0.05, seed=1)
        loose = cdf_from(noise=0.5, seed=1)
        for q in (0.5, 0.9):
            assert tight.abs_quantile(q) < loose.abs_quantile(q)


class TestCdfTable:
    def test_contains_all_labels(self):
        table = cdf_table([cdf_from(label="nsfnet"), cdf_from(label="geant2")])
        assert "nsfnet" in table and "geant2" in table

    def test_has_quantile_rows(self):
        table = cdf_table([cdf_from()])
        assert "P50" in table and "P90" in table
        assert "count" in table

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            cdf_table([])
