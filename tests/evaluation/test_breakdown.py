"""Tests for the per-path-length error breakdown."""

import numpy as np
import pytest

from repro.evaluation import error_by_path_length, format_breakdown


class TestErrorByPathLength:
    def test_buckets_cover_all_paths(self, tiny_samples):
        samples = list(tiny_samples[:3])
        predictions = [s.delay * 1.1 for s in samples]
        breakdown = error_by_path_length(samples, predictions)
        assert sum(int(v["count"]) for v in breakdown.values()) == sum(
            s.num_pairs for s in samples
        )

    def test_hop_keys_match_routing(self, tiny_samples):
        sample = tiny_samples[0]
        breakdown = error_by_path_length([sample], [sample.delay])
        hop_counts = {
            len(sample.routing.link_path(s, d)) for s, d in sample.pairs
        }
        assert set(breakdown) == hop_counts

    def test_known_error_per_bucket(self, tiny_samples):
        sample = tiny_samples[0]
        breakdown = error_by_path_length([sample], [sample.delay * 1.2])
        for stats in breakdown.values():
            assert stats["mre"] == pytest.approx(0.2)

    def test_sorted_by_hops(self, tiny_samples):
        sample = tiny_samples[0]
        breakdown = error_by_path_length([sample], [sample.delay])
        keys = list(breakdown)
        assert keys == sorted(keys)

    def test_length_mismatch_raises(self, tiny_samples):
        with pytest.raises(ValueError, match="prediction arrays"):
            error_by_path_length(list(tiny_samples[:2]), [tiny_samples[0].delay])

    def test_shape_mismatch_raises(self, tiny_samples):
        with pytest.raises(ValueError, match="does not match"):
            error_by_path_length([tiny_samples[0]], [np.ones(3)])


class TestFormat:
    def test_renders(self, tiny_samples):
        sample = tiny_samples[0]
        text = format_breakdown(error_by_path_length([sample], [sample.delay]))
        assert "hops" in text and "MRE" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            format_breakdown({})
