"""Tests for ASCII rendering utilities."""

import numpy as np
import pytest

from repro.evaluation import scatter, cdf_curve, histogram


class TestScatter:
    def test_contains_markers(self):
        text = scatter(np.array([1.0, 2.0]), np.array([1.0, 2.0]), title="t")
        assert "o" in text
        assert "t" in text

    def test_diagonal_reference(self):
        text = scatter(
            np.linspace(0, 1, 5), np.linspace(0, 1, 5), diagonal=True
        )
        assert "." in text or "o" in text

    def test_dimensions_respected(self):
        text = scatter(np.array([1.0]), np.array([1.0]), width=30, height=10)
        body_lines = [l for l in text.splitlines() if "|" in l]
        assert len(body_lines) == 10

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            scatter(np.array([]), np.array([]))

    def test_constant_values_no_crash(self):
        scatter(np.ones(5), np.ones(5))


class TestCdfCurve:
    def test_contains_curve(self):
        text = cdf_curve(np.random.default_rng(0).standard_normal(100))
        assert "#" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_curve(np.array([]))

    def test_single_value_no_crash(self):
        cdf_curve(np.array([1.0]))


class TestHistogram:
    def test_counts_sum(self):
        values = np.random.default_rng(1).uniform(0, 1, 50)
        text = histogram(values, bins=5)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()[1:]]
        assert sum(counts) == 50

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            histogram(np.array([]))
