"""Tests for the fig2 regression-data harness."""

import numpy as np
import pytest

from repro.evaluation import collect_regression, binned_means


def make_data(n=50, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    true = rng.uniform(0.1, 1.0, size=n)
    pred = true * (1.0 + noise * rng.standard_normal(n))
    pairs = tuple((i, i + 1) for i in range(n))
    return collect_regression(pred, true, pairs)


class TestRegressionData:
    def test_perfect_prediction_stats(self):
        data = make_data(noise=0.0)
        summary = data.summary()
        assert summary["r2"] == pytest.approx(1.0)
        assert summary["mre"] == pytest.approx(0.0)
        assert data.slope_through_origin() == pytest.approx(1.0)

    def test_biased_prediction_slope(self):
        data = make_data()
        biased = collect_regression(data.pred * 1.2, data.true, data.pairs)
        assert biased.slope_through_origin() == pytest.approx(1.2)

    def test_points_export(self):
        data = make_data(n=5)
        points = data.points()
        assert len(points) == 5
        assert points[0] == (data.true[0], data.pred[0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="inconsistent"):
            collect_regression(np.ones(3), np.ones(4), tuple((i, i + 1) for i in range(3)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            collect_regression(np.array([]), np.array([]), ())

    def test_zero_truth_slope_raises(self):
        data = collect_regression(np.zeros(2), np.zeros(2) + 0.0, ((0, 1), (1, 0)))
        with pytest.raises(ValueError):
            data.slope_through_origin()


class TestBinnedMeans:
    def test_bins_cover_all_points(self):
        data = make_data(n=100, noise=0.05, seed=2)
        rows = binned_means(data, num_bins=8)
        assert sum(n for _, _, n in rows) == 100

    def test_trend_monotone_for_good_model(self):
        data = make_data(n=500, noise=0.02, seed=3)
        rows = binned_means(data, num_bins=6)
        means = [m for _, m, _ in rows]
        assert means == sorted(means)

    def test_bad_bins_raise(self):
        with pytest.raises(ValueError):
            binned_means(make_data(), num_bins=0)
