"""Tests for the fig4 Top-N path ranking harness."""

import numpy as np
import pytest

from repro.evaluation import top_n_paths, ranking_agreement, format_top_paths


PAIRS = ((0, 1), (0, 2), (1, 2), (2, 0))
DELAYS = np.array([0.4, 0.9, 0.1, 0.6])


class TestTopN:
    def test_descending_order(self):
        rows = top_n_paths(PAIRS, DELAYS, n=4)
        values = [r.predicted_delay for r in rows]
        assert values == sorted(values, reverse=True)

    def test_ranks_sequential(self):
        rows = top_n_paths(PAIRS, DELAYS, n=3)
        assert [r.rank for r in rows] == [1, 2, 3]

    def test_top_1_is_max(self):
        rows = top_n_paths(PAIRS, DELAYS, n=1)
        assert (rows[0].src, rows[0].dst) == (0, 2)

    def test_n_larger_than_paths_truncates(self):
        assert len(top_n_paths(PAIRS, DELAYS, n=100)) == 4

    def test_true_delay_attached(self):
        truth = DELAYS * 1.1
        rows = top_n_paths(PAIRS, DELAYS, n=2, true_delay=truth)
        assert rows[0].true_delay == pytest.approx(0.99)

    def test_tie_break_deterministic(self):
        equal = np.ones(4)
        rows_a = top_n_paths(PAIRS, equal, n=4)
        rows_b = top_n_paths(PAIRS, equal, n=4)
        assert [(r.src, r.dst) for r in rows_a] == [(r.src, r.dst) for r in rows_b]

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            top_n_paths(PAIRS, DELAYS[:2], n=1)

    def test_bad_n_raises(self):
        with pytest.raises(ValueError):
            top_n_paths(PAIRS, DELAYS, n=0)


class TestRankingAgreement:
    def test_perfect_agreement(self):
        stats = ranking_agreement(DELAYS, DELAYS, n=2)
        assert stats["top_n_overlap"] == 1.0
        assert stats["spearman"] == pytest.approx(1.0)

    def test_reversed_ranking(self):
        stats = ranking_agreement(DELAYS, -DELAYS + 1.0, n=4)
        assert stats["spearman"] == pytest.approx(-1.0)

    def test_partial_overlap(self):
        pred = np.array([10.0, 9.0, 1.0, 2.0])
        true = np.array([10.0, 1.0, 9.0, 2.0])
        stats = ranking_agreement(pred, true, n=2)
        assert stats["top_n_overlap"] == 0.5

    def test_n_clipped_to_size(self):
        stats = ranking_agreement(DELAYS, DELAYS, n=100)
        assert stats["n"] == 4.0

    def test_too_few_paths_raise(self):
        with pytest.raises(ValueError):
            ranking_agreement(np.array([1.0]), np.array([1.0]))


class TestFormat:
    def test_table_contains_paths(self):
        rows = top_n_paths(PAIRS, DELAYS, n=2, true_delay=DELAYS)
        text = format_top_paths(rows)
        assert "0->2" in text
        assert "rel.err" in text

    def test_without_truth_no_relerr_column(self):
        text = format_top_paths(top_n_paths(PAIRS, DELAYS, n=2))
        assert "rel.err" not in text

    def test_empty_rows_raise(self):
        with pytest.raises(ValueError):
            format_top_paths([])
