"""Tests for CSV export of figure data."""

import csv

import numpy as np
import pytest

from repro.evaluation import (
    collect_regression,
    compute_error_cdf,
    export_cdf_csv,
    export_matrix_csv,
    export_regression_csv,
    export_top_paths_csv,
    top_n_paths,
)


def _read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


@pytest.fixture()
def regression():
    rng = np.random.default_rng(0)
    true = rng.uniform(0.1, 1.0, size=20)
    pred = true * 1.05
    pairs = tuple((i, i + 1) for i in range(20))
    return collect_regression(pred, true, pairs)


class TestRegressionExport:
    def test_row_count_and_header(self, regression, tmp_path):
        path = tmp_path / "fig2.csv"
        assert export_regression_csv(regression, path) == 20
        rows = _read_csv(path)
        assert rows[0] == ["src", "dst", "true_delay", "predicted_delay"]
        assert len(rows) == 21

    def test_values_roundtrip(self, regression, tmp_path):
        path = tmp_path / "fig2.csv"
        export_regression_csv(regression, path)
        rows = _read_csv(path)[1:]
        assert float(rows[0][2]) == pytest.approx(regression.true[0])
        assert float(rows[0][3]) == pytest.approx(regression.pred[0])

    def test_creates_parent_dirs(self, regression, tmp_path):
        path = tmp_path / "deep" / "nested" / "fig2.csv"
        export_regression_csv(regression, path)
        assert path.exists()


class TestCdfExport:
    def test_long_format(self, tmp_path):
        rng = np.random.default_rng(1)
        cdfs = [
            compute_error_cdf(rng.uniform(0.9, 1.1, 50), np.ones(50), label=name)
            for name in ("a", "b")
        ]
        path = tmp_path / "fig3.csv"
        count = export_cdf_csv(cdfs, path, num_points=11)
        assert count == 22
        rows = _read_csv(path)
        assert {r[0] for r in rows[1:]} == {"a", "b"}

    def test_fractions_monotone_per_dataset(self, tmp_path):
        rng = np.random.default_rng(2)
        cdf = compute_error_cdf(rng.uniform(0.5, 1.5, 100), np.ones(100), label="x")
        path = tmp_path / "fig3.csv"
        export_cdf_csv([cdf], path, num_points=21)
        fractions = [float(r[2]) for r in _read_csv(path)[1:]]
        assert fractions == sorted(fractions)

    def test_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            export_cdf_csv([], tmp_path / "x.csv")


class TestTopPathsExport:
    def test_rows_with_truth(self, tmp_path):
        pred = np.array([0.5, 0.9, 0.2])
        rows = top_n_paths(((0, 1), (1, 2), (2, 0)), pred, n=3, true_delay=pred)
        path = tmp_path / "fig4.csv"
        assert export_top_paths_csv(rows, path) == 3
        data = _read_csv(path)
        assert data[1][0] == "1"  # best rank first

    def test_rows_without_truth_blank_column(self, tmp_path):
        rows = top_n_paths(((0, 1), (1, 2)), np.array([0.5, 0.9]), n=2)
        path = tmp_path / "fig4.csv"
        export_top_paths_csv(rows, path)
        assert _read_csv(path)[1][4] == ""

    def test_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            export_top_paths_csv([], tmp_path / "x.csv")


class TestMatrixExport:
    def test_long_format(self, tmp_path):
        matrix = {"nsfnet": {"mre": 0.1, "r2": 0.9}, "geant2": {"mre": 0.12, "r2": 0.85}}
        path = tmp_path / "matrix.csv"
        assert export_matrix_csv(matrix, path) == 4
        rows = _read_csv(path)
        assert ["nsfnet", "mre", "0.1"] in rows

    def test_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            export_matrix_csv({}, tmp_path / "x.csv")
