"""Fixture-driven tests for every lint rule: positive, negative, disable."""

import textwrap

import pytest

from repro.analysis import RULES, format_violations, lint_source
from repro.errors import AnalysisError

#: Default location for fixtures: an ordinary library module, none of the
#: location-based exemptions apply.
PLAIN = "src/repro/evaluation/fixture.py"


def codes(source, relpath=PLAIN, rules=None):
    return [v.code for v in lint_source(textwrap.dedent(source), relpath, rules)]


# ----------------------------------------------------------------------
# RP001 — bare RNG calls
# ----------------------------------------------------------------------
class TestRP001:
    def test_np_random_call_flagged(self):
        assert codes("import numpy as np\nx = np.random.rand(3)\n") == ["RP001"]

    def test_numpy_random_longhand_flagged(self):
        src = "import numpy\nx = numpy.random.default_rng(0)\n"
        assert codes(src) == ["RP001"]

    def test_stdlib_random_flagged_when_imported(self):
        assert codes("import random\nx = random.random()\n") == ["RP001"]

    def test_generator_method_ok(self):
        src = "from repro.random import make_rng\nrng = make_rng(0)\nx = rng.normal()\n"
        assert codes(src) == []

    def test_local_name_random_not_flagged(self):
        # No `import random` => `random.choice` is some local object.
        assert codes("x = random.choice([1, 2])\n") == []

    def test_random_module_itself_exempt(self):
        src = "import numpy as np\nx = np.random.default_rng(0)\n"
        assert codes(src, relpath="src/repro/random.py") == []

    def test_trailing_disable(self):
        src = "import numpy as np\nx = np.random.rand(3)  # repro-lint: disable=RP001\n"
        assert codes(src) == []


# ----------------------------------------------------------------------
# RP002 — float equality
# ----------------------------------------------------------------------
class TestRP002:
    def test_eq_float_literal_flagged(self):
        assert codes("ok = x == 1.5\n") == ["RP002"]

    def test_neq_float_literal_flagged(self):
        assert codes("ok = 0.0 != y\n") == ["RP002"]

    def test_int_equality_ok(self):
        assert codes("ok = x == 1\n") == []

    def test_isclose_ok(self):
        assert codes("import numpy as np\nok = np.isclose(x, 1.5)\n") == []

    def test_ordering_ok(self):
        assert codes("ok = x < 1.5\n") == []

    def test_trailing_disable(self):
        assert codes("ok = x == 0.0  # repro-lint: disable=RP002\n") == []


# ----------------------------------------------------------------------
# RP003 — mutable default arguments
# ----------------------------------------------------------------------
class TestRP003:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()", "list()"])
    def test_mutable_default_flagged(self, default):
        assert codes(f"def f(x={default}):\n    return x\n") == ["RP003"]

    def test_kwonly_default_flagged(self):
        assert codes("def f(*, x=[]):\n    return x\n") == ["RP003"]

    def test_lambda_default_flagged(self):
        assert codes("f = lambda x=[]: x\n") == ["RP003"]

    def test_none_default_ok(self):
        assert codes("def f(x=None):\n    return x or []\n") == []

    def test_immutable_defaults_ok(self):
        assert codes("def f(x=(), y=0, z='a'):\n    return x, y, z\n") == []

    def test_trailing_disable(self):
        assert codes("def f(x=[]):  # repro-lint: disable=RP003\n    return x\n") == []


# ----------------------------------------------------------------------
# RP004 — swallowed exceptions
# ----------------------------------------------------------------------
SWALLOW = """
try:
    work()
except Exception:
    pass
"""

class TestRP004:
    def test_silent_broad_except_flagged(self):
        assert codes(SWALLOW) == ["RP004"]

    def test_bare_except_flagged(self):
        assert codes("try:\n    work()\nexcept:\n    pass\n") == ["RP004"]

    def test_tuple_with_exception_flagged(self):
        src = "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n"
        assert codes(src) == ["RP004"]

    def test_narrow_type_ok(self):
        assert codes("try:\n    work()\nexcept ValueError:\n    pass\n") == []

    def test_logged_ok(self):
        src = "try:\n    work()\nexcept Exception as exc:\n    logger.warning('x: %s', exc)\n"
        assert codes(src) == []

    def test_reraise_ok(self):
        src = "try:\n    work()\nexcept Exception:\n    raise\n"
        assert codes(src) == []

    def test_trailing_disable(self):
        src = "try:\n    work()\nexcept Exception:  # repro-lint: disable=RP004\n    pass\n"
        assert codes(src) == []


# ----------------------------------------------------------------------
# RP005 — dtype literals outside repro/nn
# ----------------------------------------------------------------------
class TestRP005:
    def test_np_attribute_flagged(self):
        assert codes("import numpy as np\nx = np.zeros(3, dtype=np.float32)\n") == ["RP005"]

    def test_string_literal_flagged(self):
        assert codes("x = arr.astype('float64')\n") == ["RP005"]

    def test_inside_nn_exempt(self):
        src = "import numpy as np\nx = np.float32(1.0)\n"
        assert codes(src, relpath="src/repro/nn/tensor.py") == []

    def test_inside_analysis_exempt(self):
        src = "import numpy as np\nx = np.float64(1.0)\n"
        assert codes(src, relpath="src/repro/analysis/gradcheck.py") == []

    def test_other_dtypes_ok(self):
        assert codes("import numpy as np\nx = np.zeros(3, dtype=np.int64)\n") == []

    def test_trailing_disable(self):
        src = "import numpy as np\nx = np.float32(1)  # repro-lint: disable=RP005\n"
        assert codes(src) == []


# ----------------------------------------------------------------------
# RP006 — Tensor.data / .grad mutation outside repro/nn
# ----------------------------------------------------------------------
class TestRP006:
    def test_data_assign_flagged(self):
        assert codes("t.data = x\n") == ["RP006"]

    def test_grad_augassign_flagged(self):
        assert codes("t.grad += g\n") == ["RP006"]

    def test_subscript_store_flagged(self):
        assert codes("t.data[0] = 1\n") == ["RP006"]

    def test_read_ok(self):
        assert codes("x = t.data\ng = t.grad\n") == []

    def test_inside_nn_exempt(self):
        assert codes("t.data = x\n", relpath="src/repro/nn/optim.py") == []

    def test_trailing_disable(self):
        assert codes("t.grad = None  # repro-lint: disable=RP006\n") == []


# ----------------------------------------------------------------------
# RP007 — wall-clock calls inside the simulator
# ----------------------------------------------------------------------
SIM = "src/repro/simulator/fixture.py"

class TestRP007:
    def test_time_time_flagged_in_simulator(self):
        assert codes("import time\nnow = time.time()\n", relpath=SIM) == ["RP007"]

    def test_perf_counter_flagged_in_simulator(self):
        src = "import time\nnow = time.perf_counter()\n"
        assert codes(src, relpath=SIM) == ["RP007"]

    def test_datetime_now_flagged_in_simulator(self):
        src = "from datetime import datetime\nnow = datetime.now()\n"
        assert codes(src, relpath=SIM) == ["RP007"]

    def test_ok_outside_simulator(self):
        assert codes("import time\nnow = time.time()\n") == []

    def test_virtual_time_ok(self):
        assert codes("now = self.clock.now\n", relpath=SIM) == []

    def test_trailing_disable(self):
        src = "import time\nnow = time.time()  # repro-lint: disable=RP007\n"
        assert codes(src, relpath=SIM) == []


# ----------------------------------------------------------------------
# Escape-hatch plumbing and API edges
# ----------------------------------------------------------------------
class TestPlumbing:
    def test_file_level_disable(self):
        src = (
            "# repro-lint: disable=RP002\n"
            "a = x == 1.5\n"
            "b = y == 2.5\n"
        )
        assert codes(src) == []

    def test_file_level_disable_is_per_code(self):
        src = (
            "# repro-lint: disable=RP002\n"
            "a = x == 1.5\n"
            "def f(x=[]):\n    return x\n"
        )
        assert codes(src) == ["RP003"]

    def test_multi_code_disable(self):
        src = "t.data = x == 1.5  # repro-lint: disable=RP002,RP006\n"
        assert codes(src) == []

    def test_unknown_code_in_disable_comment_raises(self):
        with pytest.raises(AnalysisError, match="unknown lint code"):
            lint_source("x = 1  # repro-lint: disable=RP999\n", PLAIN)

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(AnalysisError, match="unknown lint rule"):
            lint_source("x = 1\n", PLAIN, rules=["RPxyz"])

    def test_rule_subset(self):
        src = "import numpy as np\nx = np.random.rand(3)\nok = y == 1.5\n"
        assert codes(src, rules=["RP002"]) == ["RP002"]

    def test_syntax_error_raises(self):
        with pytest.raises(AnalysisError, match="syntax error"):
            lint_source("def f(:\n", PLAIN)

    def test_violation_format(self):
        (v,) = lint_source("ok = x == 1.5\n", PLAIN)
        assert v.format() == f"{PLAIN}:1:6: RP002 {RULES['RP002']}"

    def test_format_violations_summary(self):
        vs = lint_source("ok = x == 1.5\n", PLAIN)
        out = format_violations(vs)
        assert "1 violation(s)" in out
        assert format_violations([]) == "no lint violations"
