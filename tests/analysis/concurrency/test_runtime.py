"""Dynamic lockset (Eraser) checker: races, inversions, install discipline.

The acceptance-critical cases mirror the static suite: the same two
injected bugs — an unguarded ``PredictionCache._entries`` mutation and a
lock-order inversion against a live ``ServingService`` — must be caught
at runtime by the instrumented wrappers.
"""

from __future__ import annotations

import threading

import pytest

from repro import tsan
from repro.analysis.concurrency import runtime


class Box:
    """Plain attribute holder for Eraser state-machine tests."""

    def __init__(self):
        self.value = 0


def hammer(threads, fn, iterations=200):
    def loop():
        for _ in range(iterations):
            fn()

    workers = [threading.Thread(target=loop) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()


class TestEraserStateMachine:
    def test_unguarded_cross_thread_write_races(self, tsan_runtime):
        box = Box()

        def mutate():
            tsan.note_access(box, "value", "write")
            box.value += 1

        hammer(2, mutate)
        races = tsan_runtime.races()
        assert races
        assert any(r["object"].endswith(".value") for r in races)
        with pytest.raises(AssertionError, match="race candidate"):
            tsan_runtime.assert_race_free()

    def test_consistently_guarded_writes_are_race_free(self, tsan_runtime):
        box = Box()
        lock = tsan.make_lock()

        def mutate():
            with lock:
                tsan.note_access(box, "value", "write")
                box.value += 1

        hammer(3, mutate)
        tsan_runtime.assert_race_free()

    def test_single_thread_ownership_is_race_free(self, tsan_runtime):
        """The InputCache contract: unguarded is fine while single-owner."""
        box = Box()
        for _ in range(100):
            tsan.note_access(box, "value", "write")
            box.value += 1
        tsan_runtime.assert_race_free()

    def test_cross_thread_reads_of_immutable_state_are_race_free(
            self, tsan_runtime):
        box = Box()
        tsan.note_access(box, "value", "write")  # construct on this thread
        done = threading.Event()

        def reader():
            for _ in range(100):
                tsan.note_access(box, "value", "read")
                _ = box.value
            done.set()

        t = threading.Thread(target=reader)
        t.start()
        t.join()
        assert done.is_set()
        tsan_runtime.assert_race_free()

    def test_rlock_guarding_counts(self, tsan_runtime):
        box = Box()
        lock = tsan.make_rlock()

        def mutate():
            with lock:
                with lock:  # reentrant acquire must not unbalance the stack
                    tsan.note_access(box, "value", "write")
                    box.value += 1

        hammer(2, mutate)
        tsan_runtime.assert_race_free()

    def test_ring_buffer_is_bounded(self, tsan_runtime):
        tsan_runtime.reset(capacity=64)
        box = Box()
        for _ in range(500):
            tsan.note_access(box, "value", "write")
        assert len(tsan_runtime.events()) <= 64
        tsan_runtime.reset()  # restore the default capacity


class TestLockOrder:
    def test_opposite_acquisition_orders_invert(self, tsan_runtime):
        a, b = tsan.make_lock(), tsan.make_lock()

        def ab():
            with a:
                with b:
                    pass

        def ba():
            with b:
                with a:
                    pass

        for fn in (ab, ba):
            t = threading.Thread(target=fn)
            t.start()
            t.join()
        assert tsan_runtime.inversions()
        with pytest.raises(AssertionError, match="lock-order cycle"):
            tsan_runtime.assert_no_lock_inversion()
        tsan_runtime.reset()

    def test_consistent_order_is_clean(self, tsan_runtime):
        a, b = tsan.make_lock(), tsan.make_lock()
        for _ in range(3):
            with a:
                with b:
                    pass
        assert tsan_runtime.lock_order_edges()
        tsan_runtime.assert_no_lock_inversion()


class TestConditionSemantics:
    def test_wait_releases_only_its_own_lock(self, tsan_runtime):
        cond = tsan.make_condition()
        box = Box()
        started = threading.Event()

        def waiter():
            with cond:
                started.set()
                ok = cond.wait_for(lambda: box.value > 0, timeout=5.0)
                assert ok
                tsan.note_access(box, "value", "write")
                box.value += 10

        t = threading.Thread(target=waiter)
        t.start()
        assert started.wait(timeout=5.0)
        with cond:
            tsan.note_access(box, "value", "write")
            box.value = 1
            cond.notify_all()
        t.join(timeout=5.0)
        assert box.value == 11
        tsan_runtime.assert_race_free()
        tsan_runtime.assert_no_lock_inversion()


class TestInstallDiscipline:
    def test_install_uninstall_restores_the_seam(self):
        was_installed = runtime.installed()
        runtime.install()
        try:
            assert runtime.installed()
            lock = tsan.make_lock()
            assert isinstance(lock, runtime.TsanLock)
        finally:
            if not was_installed:
                runtime.uninstall()
        if not was_installed:
            assert tsan.make_lock is threading.Lock
            assert tsan.make_rlock is threading.RLock
            assert tsan.make_condition is threading.Condition

    def test_install_is_idempotent(self, tsan_runtime):
        before = tsan.make_lock
        runtime.install()
        assert tsan.make_lock is before

    def test_install_from_env(self, monkeypatch):
        was_installed = runtime.installed()
        if was_installed:
            pytest.skip("session runs under REPRO_TSAN=1 already")
        assert runtime.install_from_env({"REPRO_TSAN": "0"}) is False
        assert not runtime.installed()
        assert runtime.install_from_env({"REPRO_TSAN": "1"}) is True
        try:
            assert runtime.installed()
        finally:
            runtime.uninstall()

    def test_uninstalled_note_access_is_a_noop(self):
        if runtime.installed():
            pytest.skip("session runs under REPRO_TSAN=1 already")
        tsan.note_access(object(), "anything", "write")  # must not record
        assert runtime.races() == []


class TestInjectedBugsDynamic:
    """Acceptance criteria: the static suite's injected bugs, caught live."""

    def test_unguarded_prediction_cache_mutation_races(self, tsan_runtime):
        from repro.serving.cache import PredictionCache

        cache = PredictionCache(capacity=64)
        stop = threading.Event()

        def legit():
            n = 0
            while not stop.is_set() and n < 400:
                cache.put(f"k{n % 8}", n)
                cache.get(f"k{(n + 1) % 8}")
                n += 1

        def injected():
            # The bug: mutating the LRU dict without taking cache._lock.
            for n in range(400):
                tsan.note_access(cache, "_entries", "write")
                cache._entries[f"x{n % 8}"] = n

        t1 = threading.Thread(target=legit)
        t2 = threading.Thread(target=injected)
        t1.start(); t2.start()
        t1.join(); t2.join()
        stop.set()
        races = tsan_runtime.races()
        assert any(r["object"].endswith("._entries") for r in races), races
        tsan_runtime.reset()

    def test_guarded_prediction_cache_use_is_race_free(self, tsan_runtime):
        from repro.serving.cache import PredictionCache

        cache = PredictionCache(capacity=64)

        def legit(base):
            for n in range(300):
                cache.put(f"{base}-{n % 16}", n)
                cache.get(f"{base}-{(n + 5) % 16}")

        workers = [threading.Thread(target=legit, args=(i,)) for i in range(3)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        tsan_runtime.assert_race_free()

    def test_service_lock_order_inversion_is_caught(self, tsan_runtime):
        """Acquire stats-lock -> shard-cond against the service's cond ->
        stats-lock order; the checker must report the cycle by lock name."""
        from repro.core import FeatureScaler, RouteNet
        from repro.serving import ServeConfig, ServingService

        scaler = FeatureScaler(
            capacity_scale=1.0, traffic_scale=1.0, load_scale=1.0,
            target_log_mean=0.0, target_log_std=1.0,
        )
        service = ServingService(
            RouteNet(seed=3), scaler,
            ServeConfig(workers=1, queue_depth=8),
        )
        try:
            # Production direction: submit/stats paths take cond then stats
            # lock; prime the edge without needing a full request.
            with service._conds[0]:
                with service._stats_lock:
                    pass
            # Injected inversion.
            with service._stats_lock:
                with service._conds[0]:
                    pass
            inversions = tsan_runtime.inversions()
            assert inversions
        finally:
            service.close(drain=False)
            tsan_runtime.reset()
