"""Fixtures for the RP5xx concurrency pass: synthetic trees + real-tree copies."""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis.flow import CallGraph, index_project

_REPO_SRC = Path(__file__).resolve().parents[3] / "src"


@pytest.fixture
def make_graph(tmp_path):
    """Write a package from {relpath: source}; return (index, graph).

    Same contract as the flow-pass fixture: keys relative to the package
    directory, leading ``/`` relative to the source root.
    """

    def build(files: dict[str, str], pkg: str = "proj"):
        root = tmp_path / "srcroot"
        (root / pkg).mkdir(parents=True, exist_ok=True)
        (root / pkg / "__init__.py").write_text("")
        for rel, source in files.items():
            path = (root / rel[1:]) if rel.startswith("/") else (root / pkg / rel)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        index = index_project(root)
        return index, CallGraph(index)

    return build


@pytest.fixture(scope="session")
def repo_index_and_graph():
    """Index the real ``src/`` tree once per test session."""
    index = index_project(_REPO_SRC)
    return index, CallGraph(index)


@pytest.fixture
def patched_repo(tmp_path):
    """Copy the real src tree, apply textual patches, return (index, graph).

    ``patches`` maps a path relative to ``src/`` to a list of
    ``(anchor, replacement)`` pairs applied with ``str.replace`` (the
    anchor must occur exactly once), or to a string appended verbatim to
    the file — appending 4-space-indented methods extends the file's last
    class, which is how the acceptance tests inject bugs into
    ``PredictionCache`` and ``ServingService``.
    """

    def build(patches: dict[str, object]):
        root = tmp_path / "srcroot"
        shutil.copytree(_REPO_SRC, root)
        for rel, patch in patches.items():
            path = root / rel
            source = path.read_text()
            if isinstance(patch, str):
                source = source + patch
            else:
                for anchor, replacement in patch:
                    assert source.count(anchor) == 1, f"anchor not unique: {anchor!r}"
                    source = source.replace(anchor, replacement)
            path.write_text(source)
        index = index_project(root)
        return index, CallGraph(index)

    return build
