"""RP5xx static lockset / guardedness proofs.

The acceptance-critical cases: an unguarded write injected into
``PredictionCache`` and a lock-order inversion injected into
``ServingService`` must each be caught on a (patched copy of the) real
tree, with the full root→access call chain in the message; and the real
tree itself must be RP5xx-clean.
"""

from __future__ import annotations

from repro.analysis.concurrency import (
    check_concurrency,
    find_thread_roots,
    run_concurrency,
)
from repro.analysis.concurrency.static import _discover_shared


def run_pass(make_graph, files):
    index, graph = make_graph(files)
    return check_concurrency(index, graph)


def codes(findings):
    return sorted(v.code for v in findings)


def rp5(findings):
    return [v for v in findings if v.code.startswith("RP5")]


class TestRootDetection:
    def test_thread_target_and_public_methods(self, make_graph):
        index, _ = make_graph({
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._thread = threading.Thread(target=self._loop)

                    def _loop(self):
                        pass

                    def poke(self):
                        pass

                    def _private(self):
                        pass
            """,
        })
        roots = {r.qualname: r.reason
                 for r in find_thread_roots(index, _discover_shared(index))}
        assert roots["proj.svc.Service._loop"] == "thread-target"
        assert roots["proj.svc.Service.poke"] == "public-method"
        assert "proj.svc.Service._private" not in roots

    def test_condition_wait_method_is_a_root(self, make_graph):
        index, _ = make_graph({
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._cond = threading.Condition()

                    def _drain(self):
                        with self._cond:
                            self._cond.wait()
            """,
        })
        roots = {r.qualname: r.reason
                 for r in find_thread_roots(index, _discover_shared(index))}
        assert roots["proj.svc.Service._drain"] == "condition-wait"

    def test_lockless_class_has_no_method_roots(self, make_graph):
        index, _ = make_graph({
            "plain.py": """
                class Plain:
                    def poke(self):
                        pass
            """,
        })
        roots = find_thread_roots(index, _discover_shared(index))
        assert not any("Plain" in r.qualname for r in roots)


class TestRP501InconsistentLockset:
    def test_guarded_then_unguarded_write_flags(self, make_graph):
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def sloppy(self):
                        self._count += 1
            """,
        }))
        assert codes(findings) == ["RP501"]
        (v,) = findings
        assert "_count" in v.message
        assert "proj.svc.Service.sloppy" in v.message  # call chain

    def test_consistent_locking_is_clean(self, make_graph):
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def read(self):
                        with self._lock:
                            return self._count
            """,
        }))
        assert findings == []

    def test_lock_held_through_helper_call(self, make_graph):
        """Interprocedural: the lockset propagates into callees."""
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def _bump(self):
                        self._count += 1

                    def guarded(self):
                        with self._lock:
                            self._bump()

                    def reader(self):
                        with self._lock:
                            return self._count
            """,
        }))
        assert findings == []


class TestRP502UnguardedSharedWrite:
    def test_write_reachable_from_two_roots_flags(self, make_graph):
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def _bump(self):
                        self._count += 1

                    def first(self):
                        self._bump()

                    def second(self):
                        self._bump()
            """,
        }))
        assert codes(findings) == ["RP502"]
        (v,) = findings
        assert "2 thread roots" in v.message
        assert "proj.svc.Service._bump" in v.message  # chain reaches offender

    def test_single_writer_is_proved_clean(self, make_graph):
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def _bump(self):
                        self._count += 1

                    def only(self):
                        self._bump()
            """,
        }))
        assert findings == []

    def test_suppression_comment_waives_the_finding(self, make_graph):
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def _bump(self):
                        self._count += 1  # repro-lint: disable=RP502

                    def first(self):
                        self._bump()

                    def second(self):
                        self._bump()
            """,
        }))
        assert findings == []


class TestRP503BlockingWhileLocked:
    def test_sleep_under_lock_flags(self, make_graph):
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import threading
                import time

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def nap(self):
                        with self._lock:
                            time.sleep(0.1)
            """,
        }))
        assert codes(findings) == ["RP503"]

    def test_queue_get_under_lock_flags(self, make_graph):
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import queue
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._inbox = queue.Queue()

                    def take(self):
                        with self._lock:
                            return self._inbox.get()
            """,
        }))
        assert codes(findings) == ["RP503"]

    def test_wait_on_own_condition_is_exempt(self, make_graph):
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._cond = threading.Condition()
                        self._ready = False

                    def block(self):
                        with self._cond:
                            while not self._ready:
                                self._cond.wait()
            """,
        }))
        assert findings == []

    def test_sleep_without_lock_is_clean(self, make_graph):
        findings = rp5(run_pass(make_graph, {
            "svc.py": """
                import time

                def nap():
                    time.sleep(0.1)
            """,
        }))
        assert findings == []


class TestRP504LockOrderCycle:
    def test_opposite_orders_flag_a_cycle(self, make_graph):
        index, graph = make_graph({
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def ab(self):
                        with self._a:
                            with self._b:
                                pass

                    def ba(self):
                        with self._b:
                            with self._a:
                                pass
            """,
        })
        findings, report = run_concurrency(index, graph)
        assert codes(rp5(findings)) == ["RP504"]
        assert report["cycles"] == [
            ["proj.svc.Service._a", "proj.svc.Service._b"]
        ]

    def test_consistent_order_is_clean_and_reported(self, make_graph):
        index, graph = make_graph({
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def ab(self):
                        with self._a:
                            with self._b:
                                pass

                    def also_ab(self):
                        with self._a:
                            with self._b:
                                pass
            """,
        })
        findings, report = run_concurrency(index, graph)
        assert rp5(findings) == []
        assert report["cycles"] == []
        assert {
            (edge["from"], edge["to"]) for edge in report["edges"]
        } == {("proj.svc.Service._a", "proj.svc.Service._b")}


class TestRealTree:
    def test_tree_is_rp5xx_clean(self, repo_index_and_graph):
        index, graph = repo_index_and_graph
        findings, _ = run_concurrency(index, graph)
        assert rp5(findings) == [], [v.message for v in rp5(findings)]

    def test_report_covers_the_serving_and_pool_locks(self, repo_index_and_graph):
        index, graph = repo_index_and_graph
        _, report = run_concurrency(index, graph)
        locks = set(report["locks"])
        assert "repro.serving.service.ServingService._conds[]" in locks
        assert "repro.serving.service.ServingService._stats_lock" in locks
        assert "repro.serving.cache.PredictionCache._lock" in locks
        assert "repro.runner.persistent.PersistentPool._stats_lock" in locks
        # The only lock-order edge is shard cond -> stats lock, acyclic.
        assert {
            (edge["from"], edge["to"]) for edge in report["edges"]
        } == {(
            "repro.serving.service.ServingService._conds[]",
            "repro.serving.service.ServingService._stats_lock",
        )}
        assert report["cycles"] == []

    def test_worker_loop_is_a_thread_target_root(self, repo_index_and_graph):
        index, graph = repo_index_and_graph
        _, report = run_concurrency(index, graph)
        roots = {r["qualname"]: r["reason"] for r in report["roots"]}
        assert roots["repro.serving.service.ServingService._worker_loop"] == (
            "thread-target"
        )


class TestInjectedBugs:
    """Acceptance criteria: injected bugs must be caught with call chains."""

    def test_unguarded_prediction_cache_write_is_caught(self, patched_repo):
        index, graph = patched_repo({
            "repro/serving/cache.py": (
                "\n"
                "    def evict_unguarded(self, key):\n"
                "        self._entries.pop(key, None)\n"
            ),
        })
        findings, _ = run_concurrency(index, graph)
        hits = [v for v in rp5(findings) if "_entries" in v.message
                and "PredictionCache" in v.message]
        assert hits, [v.message for v in rp5(findings)]
        (v,) = hits
        assert v.code == "RP501"  # guarded everywhere else -> inconsistent
        assert v.severity == "error"  # repro.serving is a strict module
        assert "repro.serving.cache.PredictionCache.evict_unguarded" in v.message

    def test_lock_order_inversion_in_service_is_caught(self, patched_repo):
        index, graph = patched_repo({
            "repro/serving/service.py": (
                "\n"
                "    def introspect(self, shard):\n"
                "        with self._stats_lock:\n"
                "            with self._conds[shard]:\n"
                "                return len(self._queues[shard])\n"
            ),
        })
        findings, report = run_concurrency(index, graph)
        hits = [v for v in rp5(findings) if v.code == "RP504"]
        assert hits, [v.message for v in rp5(findings)]
        v = hits[0]
        assert v.severity == "error"
        assert "repro.serving.service.ServingService._conds[]" in v.message
        assert "repro.serving.service.ServingService._stats_lock" in v.message
        assert "repro.serving.service.ServingService.introspect" in v.message
        assert report["cycles"] == [[
            "repro.serving.service.ServingService._conds[]",
            "repro.serving.service.ServingService._stats_lock",
        ]]
