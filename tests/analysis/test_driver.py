"""The ``python -m repro.analysis`` driver: formats, exit codes, audits.

Synthetic trees are injected by monkeypatching ``_default_src_root`` so
every exit path is exercised without touching the real source tree.
"""

from __future__ import annotations

import json
import textwrap

import pytest

import repro.analysis.__main__ as driver

UNITS = """
    Seconds = float
    Bits = float
    BitsPerSecond = float
"""

CLEAN = {
    "units.py": UNITS,
    "ok.py": """
        from .units import Bits, BitsPerSecond, Seconds

        def transfer_time(size: Bits, capacity: BitsPerSecond) -> Seconds:
            return size / capacity
    """,
}

MIXED_UNITS = {
    "units.py": UNITS,
    "bad.py": """
        from .units import BitsPerSecond, Seconds

        def broken(delay: Seconds, capacity: BitsPerSecond):
            return delay + capacity
    """,
}

COLD_ALLOC = {
    "slow.py": """
        import numpy as np

        def per_round(n, rounds):
            total = 0.0
            for _ in range(rounds):
                total += np.zeros(n).sum()
            return total
    """,
}


@pytest.fixture
def fake_tree(monkeypatch, tmp_path):
    """Write {relpath: source} under a fake src root and point main() at it."""

    def build(files):
        root = tmp_path / "srcroot"
        (root / "proj").mkdir(parents=True, exist_ok=True)
        (root / "proj" / "__init__.py").write_text("")
        for rel, source in files.items():
            path = root / "proj" / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        monkeypatch.setattr(driver, "_default_src_root", lambda: root)
        # The tape dataflow pass records the *real* model — meaningless
        # (and slow) against a fake source tree, so stub it out here; the
        # real-tree tests below exercise it for real.
        import repro.analysis.dataflow as dataflow_pkg

        monkeypatch.setattr(
            dataflow_pkg, "run_dataflow",
            lambda repo_root=None, families=None: ([], {"stubbed": True}),
        )
        return root

    return build


def run_json(capsys, argv):
    rc = driver.main([*argv, "--format", "json", "--no-shapes"])
    return rc, json.loads(capsys.readouterr().out)


class TestFormats:
    def test_json_payload_shape(self, fake_tree, capsys):
        fake_tree(CLEAN)
        rc, payload = run_json(capsys, [])
        assert rc == 0
        assert set(payload) >= {"findings", "lint", "counts", "elapsed_seconds"}
        assert payload["counts"] == {"errors": 0, "warnings": 0}
        assert payload["findings"] == []

    def test_json_finding_fields(self, fake_tree, capsys):
        fake_tree(MIXED_UNITS)
        rc, payload = run_json(capsys, [])
        assert rc == 0  # non-strict: findings never gate
        (finding,) = payload["findings"]
        assert finding["code"] == "RP301"
        assert finding["severity"] == "error"
        assert finding["path"].endswith("proj/bad.py")
        assert {"line", "col", "message"} <= set(finding)

    def test_deprecated_json_flag(self, fake_tree, capsys):
        fake_tree(CLEAN)
        rc = driver.main(["--json", "--no-shapes"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0 and payload["counts"]["errors"] == 0

    def test_github_annotations(self, fake_tree, capsys):
        fake_tree(MIXED_UNITS)
        rc = driver.main(["--format", "github", "--no-shapes"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = [ln for ln in out.splitlines() if ln.startswith("::error ")]
        assert len(lines) == 1
        assert "file=" in lines[0] and "line=" in lines[0]
        assert "RP301" in lines[0]

    def test_github_warning_level(self, fake_tree, capsys):
        fake_tree(COLD_ALLOC)
        driver.main(["--format", "github", "--no-shapes"])
        out = capsys.readouterr().out
        assert any(ln.startswith("::warning ") and "RP402" in ln
                   for ln in out.splitlines())

    def test_text_hides_warnings_by_default(self, fake_tree, capsys):
        fake_tree(COLD_ALLOC)
        rc = driver.main(["--strict", "--no-shapes"])
        out = capsys.readouterr().out
        assert rc == 0  # warnings never gate, even under --strict
        assert "warning(s) hidden" in out
        assert "RP402" not in out

    def test_text_show_warnings(self, fake_tree, capsys):
        fake_tree(COLD_ALLOC)
        driver.main(["--show-warnings", "--no-shapes"])
        out = capsys.readouterr().out
        assert "RP402" in out


class TestExitCodes:
    def test_strict_gates_on_errors(self, fake_tree, capsys):
        fake_tree(MIXED_UNITS)
        assert driver.main(["--strict", "--no-shapes"]) == 1
        capsys.readouterr()

    def test_non_strict_reports_but_passes(self, fake_tree, capsys):
        fake_tree(MIXED_UNITS)
        assert driver.main(["--no-shapes"]) == 0
        assert "non-strict" in capsys.readouterr().out

    def test_unknown_rule_is_config_error(self, fake_tree, capsys):
        fake_tree(CLEAN)
        assert driver.main(["--rules", "RP999", "--no-shapes"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_unparsable_source_is_config_error(self, fake_tree, capsys):
        fake_tree({"broken.py": "def nope(:\n"})
        assert driver.main(["--no-shapes"]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_max_seconds_budget_failure(self, fake_tree, capsys):
        fake_tree(CLEAN)
        assert driver.main(["--no-shapes", "--max-seconds", "0.0"]) == 1
        assert "budget" in capsys.readouterr().err


class TestStaleSuppressionAudit:
    def test_stale_disable_reported_rp008(self, fake_tree, capsys):
        fake_tree({
            "m.py": """
                def fine():
                    return 1  # repro-lint: disable=RP002
            """,
        })
        rc, payload = run_json(capsys, ["--strict"])
        assert rc == 1
        codes = [f["code"] for f in payload["findings"]]
        assert codes == ["RP008"]
        assert "disable=RP002" in payload["findings"][0]["message"]

    def test_used_disable_not_stale(self, fake_tree, capsys):
        fake_tree({
            "units.py": UNITS,
            "m.py": """
                from .units import Bits, Seconds

                def known(size: Bits, horizon: Seconds):
                    return size + horizon  # repro-lint: disable=RP301
            """,
        })
        rc, payload = run_json(capsys, ["--strict"])
        assert rc == 0
        assert payload["findings"] == []

    def test_audit_skipped_with_rule_subset(self, fake_tree, capsys):
        """A subset run cannot distinguish stale from not-yet-checked."""
        fake_tree({
            "m.py": """
                def fine():
                    return 1  # repro-lint: disable=RP002
            """,
        })
        rc, payload = run_json(capsys, ["--strict", "--rules", "RP002"])
        assert rc == 0
        assert payload["findings"] == []


class TestLockOrderPayload:
    def test_json_payload_carries_the_lock_order_graph(self, fake_tree, capsys):
        fake_tree({
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def nested(self):
                        with self._a:
                            with self._b:
                                pass
            """,
        })
        rc, payload = run_json(capsys, [])
        assert rc == 0
        graph = payload["lock_order"]
        assert set(graph) == {"roots", "locks", "edges", "cycles"}
        assert {"proj.svc.Service._a", "proj.svc.Service._b"} <= set(graph["locks"])
        assert [(e["from"], e["to"]) for e in graph["edges"]] == [
            ("proj.svc.Service._a", "proj.svc.Service._b")
        ]
        assert graph["edges"][0]["sites"]  # witness acquisition sites
        assert graph["cycles"] == []

    def test_rp504_cycle_fails_strict_and_lands_in_payload(
            self, fake_tree, capsys):
        fake_tree({
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def ab(self):
                        with self._a:
                            with self._b:
                                pass

                    def ba(self):
                        with self._b:
                            with self._a:
                                pass
            """,
        })
        rc, payload = run_json(capsys, [])
        assert rc == 0  # non-strict; RP5xx is a warning outside serving/runner
        assert payload["lock_order"]["cycles"] == [
            ["proj.svc.Service._a", "proj.svc.Service._b"]
        ]
        assert "RP504" in {f["code"] for f in payload["findings"]}


class TestCache:
    def test_cache_dir_populated_and_reused(self, fake_tree, tmp_path, capsys):
        fake_tree(CLEAN)
        cache = tmp_path / "cache"
        rc1, _ = run_json(capsys, ["--cache-dir", str(cache)])
        assert rc1 == 0
        cached = set(cache.glob("*.pkl"))
        assert cached
        rc2, payload = run_json(capsys, ["--cache-dir", str(cache)])
        assert rc2 == 0 and payload["counts"]["errors"] == 0
        assert set(cache.glob("*.pkl")) == cached


class TestRealTree:
    def test_repo_passes_strict(self, capsys):
        """Acceptance: the full suite over the real tree is clean.

        Includes the tape dataflow pass (RP6xx) recording the real model —
        the repo's own tape must be free of RP601/RP602/RP603 findings.
        """
        assert driver.main(["--strict", "--no-shapes"]) == 0
        capsys.readouterr()

    def test_dataflow_payload_and_flag(self, capsys):
        rc = driver.main(
            ["--format", "json", "--no-shapes", "--no-flow", "--no-lint"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        plans = payload["dataflow"]["arena_plans"]
        assert set(plans) == {"nsfnet", "geant2", "synthetic50"}
        for family in plans.values():
            for kind in ("tape", "inference"):
                proof = family[kind]["proof"]
                assert proof["violations"] == []
                assert proof["pairs_checked"] >= proof["live_pairs"]

        rc = driver.main([
            "--format", "json", "--no-shapes", "--no-flow", "--no-lint",
            "--no-dataflow",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0 and "dataflow" not in payload
