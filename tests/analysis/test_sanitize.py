"""Tape-sanitizer tests: NaN/Inf localization and trainer integration."""

import numpy as np
import pytest

from repro.analysis import NonFiniteError, sanitize_tape
from repro.errors import AnalysisError
from repro.nn import ops
from repro.nn.tensor import Tensor


def _make_func():
    return Tensor.__dict__["_make"].__func__


class TestSanitizeTape:
    def test_forward_nan_names_the_op(self):
        x = Tensor(np.array([-1.0, 0.5]), requires_grad=True)
        with pytest.raises(NonFiniteError) as err:
            with sanitize_tape(), np.errstate(invalid="ignore"):
                ops.log(x)
        assert err.value.op == "log"
        assert err.value.stage == "forward"
        assert "log" in str(err.value)

    def test_forward_inf_names_the_op(self):
        x = Tensor(np.array([1000.0]), requires_grad=True)
        with pytest.raises(NonFiniteError) as err:
            with sanitize_tape(), np.errstate(over="ignore"):
                ops.exp(x)
        assert err.value.op == "exp" and err.value.stage == "forward"

    def test_backward_nan_is_caught(self):
        """A NaN injected into an upstream gradient is caught as it flows."""
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with pytest.raises(NonFiniteError) as err:
            with sanitize_tape():
                y = ops.tanh(x)
                # Seed the backward pass with a poisoned gradient.
                y.backward(np.array([np.nan, 1.0]))
        assert err.value.stage.startswith("backward")

    def test_clean_graph_passes_and_restores(self):
        original = _make_func()
        x = Tensor(np.array([0.5, 1.5]), requires_grad=True)
        with sanitize_tape():
            ops.sigmoid(x).sum().backward()
        assert np.isfinite(x.grad).all()
        assert _make_func() is original

    def test_restores_after_error(self):
        original = _make_func()
        x = Tensor(np.array([-1.0]))
        with pytest.raises(NonFiniteError):
            with sanitize_tape(), np.errstate(invalid="ignore"):
                ops.sqrt(x)
        assert _make_func() is original

    def test_is_an_analysis_error(self):
        assert issubclass(NonFiniteError, AnalysisError)


class TestTrainerIntegration:
    def test_sanitized_training_runs_clean(self, nsfnet_samples):
        from repro.core import HyperParams, RouteNet
        from repro.training import Trainer

        model = RouteNet(HyperParams(message_passing_steps=2), seed=0)
        trainer = Trainer(model, seed=1, sanitize=True)
        history = trainer.fit(list(nsfnet_samples[:3]), epochs=1)
        assert np.isfinite(history.last().train_loss)
        assert _make_func().__qualname__.startswith("Tensor")

    def test_divergence_names_the_op(self, nsfnet_samples):
        """A poisoned parameter turns 'loss is not finite' into an op name."""
        from repro.core import HyperParams, RouteNet
        from repro.training import Trainer

        model = RouteNet(HyperParams(message_passing_steps=2), seed=0)
        model.readout.layers[-1].weight.data[0, 0] = np.nan
        trainer = Trainer(model, seed=1, sanitize=True)
        with pytest.raises(NonFiniteError) as err:
            trainer.fit(list(nsfnet_samples[:1]), epochs=1)
        assert err.value.op  # localized to a specific op, not just "loss"

    def test_api_train_accepts_sanitize(self, nsfnet_samples):
        from repro import api

        result = api.train(list(nsfnet_samples[:2]), epochs=1, sanitize=True)
        assert np.isfinite(result.final_train_loss)

    def test_cli_flag_exists(self):
        from repro.cli.main import build_parser

        ns = build_parser().parse_args(
            ["train", "-d", "d.jsonl", "-o", "m.npz", "--sanitize"]
        )
        assert ns.sanitize is True
        ns = build_parser().parse_args(["train", "-d", "d.jsonl", "-o", "m.npz"])
        assert ns.sanitize is False
