"""Finite-difference audit of the full op registry, plus harness self-checks."""

import numpy as np
import pytest

from repro.analysis import (
    GRADCHECK_SPECS,
    GradSpec,
    finite_difference_check,
    format_gradcheck,
    gradcheck_all,
    gradcheck_op,
)
from repro.errors import AnalysisError
from repro.nn import ops
from repro.nn.ops import OP_REGISTRY
from repro.nn.tensor import Tensor

TOL = 1e-6


class TestFullRegistry:
    def test_every_registered_op_has_specs(self):
        missing = set(OP_REGISTRY) - set(GRADCHECK_SPECS())
        assert not missing, f"ops without gradcheck specs: {sorted(missing)}"

    def test_gradcheck_all_passes(self):
        reports = gradcheck_all()
        failing = {n: r.max_rel_error for n, r in reports.items() if not r.ok}
        assert not failing, f"bad gradients: {failing}"
        assert all(r.max_rel_error < TOL for r in reports.values())
        # The registry is fully covered: every functional op is audited.
        assert set(OP_REGISTRY) <= set(reports)

    def test_report_formatting(self):
        reports = gradcheck_all()
        text = format_gradcheck(reports)
        assert "0 failing" in text
        assert "exp" in text


class TestHarness:
    def test_detects_wrong_backward(self):
        """A deliberately wrong backward must be caught, not averaged away."""

        def crooked_double(x):
            def backward(grad):
                x.grad = (x.grad if x.grad is not None else 0) + 3.0 * grad

            return Tensor._make(x.data * 2.0, (x,), backward)

        err = finite_difference_check(
            lambda t: crooked_double(t), [np.array([1.0, 2.0, 3.0])]
        )
        assert err > 0.1

    def test_correct_op_passes(self):
        err = finite_difference_check(
            lambda t: ops.tanh(t), [np.array([0.3, -0.8, 1.2])]
        )
        assert err < TOL

    def test_missing_gradient_raises(self):
        """An op that never writes a gradient is a spec error, not a pass."""

        def detached(x):
            return Tensor(x.data * 2.0)

        with pytest.raises(AnalysisError, match="no gradient can flow"):
            finite_difference_check(lambda t: detached(t), [np.array([1.0, 2.0])])

    def test_gradcheck_op_single(self):
        spec = GradSpec(
            fn=lambda t: ops.sigmoid(t),
            inputs=lambda: [np.array([0.2, 0.9, -0.4])],
            label="sigmoid-basic",
        )
        report = gradcheck_op("sigmoid", [spec])
        assert report.ok and report.specs_checked == 1
