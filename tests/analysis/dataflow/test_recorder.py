"""Tape recorder + RP6xx checks: alias classes, liveness, injected bugs."""

import json

import numpy as np
import pytest

from repro import nn
from repro.analysis.dataflow import (
    RecordedStep,
    TapeRecorder,
    check_tape,
    record_fused_step,
    run_dataflow,
    tape_arena_plan,
)
from repro.analysis.shapes import TopologySignature
from repro.core import HyperParams, RouteNet


def tiny_signature():
    link_indices = np.array([[0, 1, -1], [1, 2, 0], [2, -1, -1]])
    return TopologySignature(
        name="tiny",
        num_nodes=4,
        num_links=3,
        num_paths=3,
        link_indices=link_indices,
        mask=link_indices >= 0,
    )


def tiny_model():
    return RouteNet(
        HyperParams(
            link_state_dim=4,
            path_state_dim=4,
            message_passing_steps=2,
            readout_hidden=(4,),
        ),
        seed=0,
    )


def record(build):
    """Run ``build`` under a recorder; returns the finished RecordedStep."""
    recorder = TapeRecorder()
    with recorder.recording():
        keep = build(recorder)
    mutations = recorder.verify_retained()
    recorder.graph.finalize()
    recorder.release()
    del keep
    return RecordedStep(
        graph=recorder.graph,
        mutations=mutations,
        escaped=recorder.escaped_values(),
    )


def by_op(graph, op):
    return [v for v in graph.values if v.op == op]


class TestAliasClasses:
    def test_view_chain_shares_storage(self):
        def build(recorder):
            x = nn.tensor(np.arange(24.0).reshape(4, 6), requires_grad=True)
            r = x.reshape(6, 4)   # view
            t = r.T               # view of view
            s = t[1:3]            # basic slice: still a view
            loss = s.sum()
            recorder.mark_loss(loss)
            loss.backward()
            return x, r, t, s, loss

        graph = record(build).graph
        (leaf,) = [v for v in graph.values if v.is_leaf and v.shape == (4, 6)]
        (reshape,) = by_op(graph, "reshape")
        (transpose,) = by_op(graph, "T")
        (getitem,) = by_op(graph, "getitem")
        assert reshape.storage == leaf.storage
        assert transpose.storage == leaf.storage
        assert getitem.storage == leaf.storage
        assert set(graph.alias_class(leaf.vid)) >= {
            leaf.vid, reshape.vid, transpose.vid, getitem.vid
        }

    def test_fancy_index_copies_into_new_storage(self):
        def build(recorder):
            x = nn.tensor(np.arange(8.0), requires_grad=True)
            # Integer-array indexing may repeat positions
            # (_indexes_unique_positions is False): numpy copies, so the
            # result must land in its own alias class.
            gathered = x[np.array([0, 3, 3, 5])]
            loss = gathered.sum()
            recorder.mark_loss(loss)
            loss.backward()
            return x, gathered, loss

        graph = record(build).graph
        (leaf,) = [v for v in graph.values if v.is_leaf]
        (getitem,) = by_op(graph, "getitem")
        assert getitem.storage != leaf.storage
        assert graph.alias_class(getitem.vid) == [getitem.vid]

    def test_boolean_mask_copies_too(self):
        def build(recorder):
            x = nn.tensor(np.arange(6.0), requires_grad=True)
            # Boolean masks select unique positions (fast backward path)
            # but still copy on the forward side.
            picked = x[np.array([1, 0, 1, 0, 1, 0], dtype=bool)]
            loss = picked.sum()
            recorder.mark_loss(loss)
            loss.backward()
            return x, picked, loss

        graph = record(build).graph
        (leaf,) = [v for v in graph.values if v.is_leaf]
        (getitem,) = by_op(graph, "getitem")
        assert getitem.storage != leaf.storage


class TestLiveness:
    def test_retained_value_lives_to_its_backward_point(self):
        def build(recorder):
            x = nn.tensor(np.ones(4), requires_grad=True)
            y = nn.ops.exp(x)  # exp retains its own output for backward
            loss = y.sum()
            recorder.mark_loss(loss)
            loss.backward()
            return x, y, loss

        graph = record(build).graph
        (expv,) = by_op(graph, "exp")
        live = graph.liveness()
        assert live[expv.vid][1] == graph.backward_point(expv.vid)

    def test_leaves_span_whole_timeline(self):
        def build(recorder):
            x = nn.tensor(np.ones(4), requires_grad=True)
            loss = (x * 2.0).sum()
            recorder.mark_loss(loss)
            loss.backward()
            return x, loss

        graph = record(build).graph
        live = graph.liveness()
        for v in graph.values:
            if v.is_leaf:
                assert live[v.vid] == (0, graph.num_points - 1)

    def test_phases_segment_the_model_tape(self):
        step = record_fused_step(
            tiny_model(), tiny_signature().model_input(), np.zeros((3, 2))
        )
        phases = {v.phase for v in step.graph.values}
        assert {"round/0", "round/1"} <= phases

    def test_tape_arena_plan_verifies(self):
        step = record_fused_step(
            tiny_model(), tiny_signature().model_input(), np.zeros((3, 2))
        )
        plan = tape_arena_plan(step.graph)
        proof = plan.verify()
        assert proof["violations"] == []
        assert 0 < plan.total_bytes <= sum(
            iv.nbytes for iv in plan.intervals
        ) + plan.alignment * len(plan.intervals)


class TestInjectedRP601:
    def test_early_adam_scratch_write_is_caught(self):
        """The classic bug: optimizer scratch aliased onto a live tape
        buffer, updated in place between forward and backward."""
        model = tiny_model()

        def early_adam_step(loss):
            stack = [loss]
            while stack:
                t = stack.pop()
                for arr in t.backward_retains:
                    if arr.size and arr.flags.writeable:
                        scratch = arr.reshape(-1)  # aliased "moment" buffer
                        scratch += 0.123           # in-place update
                        return
                stack.extend(t._parents)
            raise AssertionError("no retained buffer found to corrupt")

        step = record_fused_step(
            model,
            tiny_signature().model_input(),
            np.zeros((3, 2)),
            between_forward_and_backward=early_adam_step,
        )
        assert step.mutations
        findings = check_tape(step, "tiny")
        rp601 = [f for f in findings if f.code == "RP601"]
        assert rp601
        message = rp601[0].message
        assert "in-place write" in message
        assert "crc" in message
        assert "def  " in message  # full def–use chain attached
        assert rp601[0].severity == "error"

    def test_clean_step_has_no_mutations(self):
        step = record_fused_step(
            tiny_model(), tiny_signature().model_input(), np.zeros((3, 2))
        )
        assert step.mutations == []
        assert not [f for f in check_tape(step, "tiny") if f.code == "RP601"]


class TestInjectedRP602:
    def test_dead_store_is_reported_with_chain(self):
        def build(recorder):
            x = nn.tensor(np.ones(8), requires_grad=True)
            dead = nn.ops.exp(x) * 2.0  # computed, never consumed
            loss = (x * 3.0).sum()
            recorder.mark_loss(loss)
            loss.backward()
            return x, dead, loss

        step = record(build)
        findings = check_tape(step, "inject")
        rp602 = [f for f in findings if f.code == "RP602"]
        assert rp602
        assert all(f.severity == "warning" for f in rp602)
        assert any("dead store" in f.message and "def  " in f.message
                   for f in rp602)


class TestInjectedRP603:
    def test_escaped_buffer_is_reported(self):
        leak = []

        def build(recorder):
            x = nn.tensor(np.ones(16), requires_grad=True)
            y = nn.ops.exp(x)
            leak.append(y.data)  # a "cache" holds the interior buffer
            loss = y.sum()
            recorder.mark_loss(loss)
            loss.backward()
            return x, y, loss

        step = record(build)
        assert step.escaped
        findings = check_tape(step, "inject")
        rp603 = [f for f in findings if f.code == "RP603"]
        assert rp603
        assert "escaped its tape scope" in rp603[0].message
        assert "def  " in rp603[0].message
        leak.clear()

    def test_clean_step_has_no_escapes(self):
        step = record_fused_step(
            tiny_model(), tiny_signature().model_input(), np.zeros((3, 2))
        )
        assert step.escaped == []


class TestInjectedRP604:
    def _run(self, tmp_path, budget):
        bench = {"arena": {"budgets": {"tiny": {"tape_arena_bytes": budget}}}}
        (tmp_path / "BENCH_training.json").write_text(json.dumps(bench))
        return run_dataflow(
            repo_root=tmp_path, families={"tiny": tiny_signature()}
        )

    def test_over_budget_fires(self, tmp_path):
        findings, payload = self._run(tmp_path, budget=1)
        rp604 = [f for f in findings if f.code == "RP604"]
        assert rp604
        assert "regression" in rp604[0].message
        assert rp604[0].path == "BENCH_training.json"

    def test_within_budget_is_clean(self, tmp_path):
        findings, payload = self._run(tmp_path, budget=10**12)
        assert not [f for f in findings if f.code == "RP604"]
        stats = payload["families"]["tiny"]
        assert stats["tape_arena_bytes"] > 0
        assert stats["budget_tape_arena_bytes"] == 10**12

    def test_missing_budget_skips_the_check(self, tmp_path):
        findings, payload = run_dataflow(
            repo_root=tmp_path, families={"tiny": tiny_signature()}
        )
        assert not [f for f in findings if f.code == "RP604"]


class TestPayload:
    def test_family_stats_and_plans(self, tmp_path):
        findings, payload = run_dataflow(
            repo_root=tmp_path, families={"tiny": tiny_signature()}
        )
        assert findings == []
        stats = payload["families"]["tiny"]
        assert stats["values"] > 0
        assert stats["program_points"] == 2 * stats["values"]
        assert stats["tape_arena_bytes"] >= stats["peak_tape_bytes"] > 0
        plans = payload["arena_plans"]["tiny"]
        assert plans["tape"]["proof"]["violations"] == []
        assert plans["inference"]["proof"]["violations"] == []
