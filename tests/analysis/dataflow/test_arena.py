"""Arena planner: greedy interval coloring and the soundness proof."""

import numpy as np
import pytest

from repro.analysis.dataflow import (
    ArenaPlan,
    ArenaPlanError,
    BufferInterval,
    plan_arena,
)


def iv(name, nbytes, start, end):
    return BufferInterval(name=name, nbytes=nbytes, start=start, end=end)


class TestIntervals:
    def test_rejects_zero_bytes(self):
        with pytest.raises(ArenaPlanError):
            iv("a", 0, 0, 1)

    def test_rejects_backwards_interval(self):
        with pytest.raises(ArenaPlanError):
            iv("a", 8, 3, 2)

    def test_time_overlap_is_inclusive(self):
        assert iv("a", 8, 0, 2).overlaps_time(iv("b", 8, 2, 4))
        assert not iv("a", 8, 0, 2).overlaps_time(iv("b", 8, 3, 4))


class TestColoring:
    def test_disjoint_lifetimes_share_bytes(self):
        plan = plan_arena([iv("a", 100, 0, 1), iv("b", 100, 2, 3)])
        assert plan.offsets["a"] == plan.offsets["b"] == 0
        assert plan.total_bytes == 128  # 100 rounded up to alignment

    def test_live_overlap_forces_disjoint_ranges(self):
        plan = plan_arena([iv("a", 100, 0, 2), iv("b", 100, 1, 3)])
        a, b = plan.offsets["a"], plan.offsets["b"]
        assert a + 100 <= b or b + 100 <= a

    def test_offsets_respect_alignment(self):
        plan = plan_arena(
            [iv("a", 7, 0, 2), iv("b", 7, 0, 2), iv("c", 7, 0, 2)],
            alignment=32,
        )
        assert all(off % 32 == 0 for off in plan.offsets.values())

    def test_small_buffer_fits_in_gap(self):
        # a and c overlap b but not each other: c should reuse a's slot
        # region rather than grow the arena past b.
        plan = plan_arena([
            iv("a", 64, 0, 1),
            iv("b", 64, 0, 3),
            iv("c", 64, 2, 3),
        ])
        assert plan.total_bytes == 128
        assert plan.offsets["c"] == plan.offsets["a"]

    def test_peak_not_sum(self):
        # Ten sequential buffers: the arena is one slot, not ten.
        plan = plan_arena([iv(f"v{i}", 256, i, i) for i in range(10)])
        assert plan.total_bytes == 256
        assert set(plan.offsets.values()) == {0}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ArenaPlanError, match="duplicate"):
            plan_arena([iv("a", 8, 0, 1), iv("a", 8, 2, 3)])

    def test_empty_plan(self):
        plan = plan_arena([])
        assert plan.total_bytes == 0
        assert plan.verify()["violations"] == []

    def test_randomized_plans_always_verify(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n = int(rng.integers(1, 30))
            intervals = []
            for i in range(n):
                start = int(rng.integers(0, 40))
                intervals.append(iv(
                    f"v{i}", int(rng.integers(1, 5000)),
                    start, start + int(rng.integers(0, 10)),
                ))
            proof = plan_arena(intervals).verify()
            assert proof["violations"] == []
            assert proof["buffers"] == n


class TestProof:
    def test_proof_fields(self):
        plan = plan_arena([iv("a", 100, 0, 2), iv("b", 100, 1, 3)])
        proof = plan.verify()
        assert proof["buffers"] == 2
        assert proof["pairs_checked"] == 1
        assert proof["live_pairs"] == 1
        assert proof["violations"] == []
        assert proof["total_bytes"] == plan.total_bytes

    def test_unsound_plan_raises_with_violation(self):
        bad = ArenaPlan(
            total_bytes=128,
            alignment=64,
            offsets={"a": 0, "b": 64},
            intervals=(iv("a", 100, 0, 2), iv("b", 64, 1, 3)),
        )
        with pytest.raises(ArenaPlanError, match="unsound"):
            bad.verify()

    def test_misaligned_plan_raises(self):
        bad = ArenaPlan(
            total_bytes=128,
            alignment=64,
            offsets={"a": 8},
            intervals=(iv("a", 16, 0, 1),),
        )
        with pytest.raises(ArenaPlanError, match="alignment"):
            bad.verify()

    def test_out_of_bounds_plan_raises(self):
        bad = ArenaPlan(
            total_bytes=64,
            alignment=64,
            offsets={"a": 0},
            intervals=(iv("a", 100, 0, 1),),
        )
        with pytest.raises(ArenaPlanError, match="outside"):
            bad.verify()

    def test_to_json_carries_proof(self):
        payload = plan_arena([iv("a", 8, 0, 1)]).to_json()
        assert payload["proof"]["violations"] == []
        (buf,) = payload["buffers"]
        assert buf == {"name": "a", "nbytes": 8, "offset": 0, "live": [0, 1]}
