"""Shape-checker tests: the paper topologies pass, injected bugs localize."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_SIGNATURE_NAMES,
    ShapeCheckError,
    ShapeTensor,
    TopologySignature,
    abstract_graph,
    check_model,
    paper_signatures,
)
from repro.core import HyperParams, RouteNet
from repro.nn import ops


@pytest.fixture(scope="module")
def signatures():
    return paper_signatures()


@pytest.fixture(scope="module")
def model():
    return RouteNet(HyperParams())


# ----------------------------------------------------------------------
# The paper's three topologies type-check
# ----------------------------------------------------------------------
class TestPaperSignatures:
    def test_names(self, signatures):
        assert tuple(signatures) == PAPER_SIGNATURE_NAMES

    @pytest.mark.parametrize("name", PAPER_SIGNATURE_NAMES)
    def test_signature_passes(self, model, signatures, name):
        report = check_model(model, signatures[name])
        assert report.ok, report.format()
        sig = signatures[name]
        assert report.output_shape == (sig.num_paths, model.hparams.readout_targets)
        assert report.output_dtype == "float64"
        assert report.ops_checked > 0

    def test_paper_sizes(self, signatures):
        nsf, geant = signatures["nsfnet"], signatures["geant2"]
        assert (nsf.num_nodes, nsf.num_links) == (14, 42)
        assert nsf.num_paths == 14 * 13
        assert (geant.num_nodes, geant.num_links) == (24, 76)
        assert geant.num_paths == 24 * 23
        assert signatures["synthetic50"].num_paths == 50 * 49

    def test_two_target_model(self, signatures):
        model = RouteNet(HyperParams(readout_targets=2))
        report = check_model(model, signatures["nsfnet"])
        assert report.ok and report.output_shape[1] == 2

    def test_is_fast(self, model, signatures):
        import time

        started = time.perf_counter()
        for sig in signatures.values():
            assert check_model(model, sig).ok
        assert time.perf_counter() - started < 2.0


# ----------------------------------------------------------------------
# Injected bugs produce op-level diagnostics
# ----------------------------------------------------------------------
class TestInjectedBug:
    def test_broken_weight_is_localized(self, signatures):
        model = RouteNet(HyperParams())
        hp = model.hparams
        good = model.link_embed.weight.data
        # Grow the link-embedding weight's input dim by one: the first
        # matmul of the forward pass no longer matches link_feature_dim.
        model.link_embed.weight.data = np.zeros(
            (hp.link_feature_dim + 1, hp.link_state_dim)
        )
        try:
            report = check_model(model, signatures["nsfnet"])
        finally:
            model.link_embed.weight.data = good
        assert not report.ok
        assert report.failed_op == "matmul"
        shapes = list(report.failed_operands)
        assert (hp.link_feature_dim + 1, hp.link_state_dim) in shapes
        assert "matmul" in report.format()

    def test_mismatched_feature_dim_reported(self, signatures):
        model = RouteNet(HyperParams(path_feature_dim=3))
        report = check_model(model, signatures["nsfnet"])
        assert not report.ok
        assert report.failed_op is not None
        assert report.error


# ----------------------------------------------------------------------
# ShapeTensor semantics
# ----------------------------------------------------------------------
class TestShapeTensor:
    def test_broadcast_add(self):
        a = ShapeTensor((4, 1))
        b = ShapeTensor((1, 5))
        assert (a + b).shape == (4, 5)

    def test_incompatible_broadcast_raises(self):
        with pytest.raises(ShapeCheckError, match="add"):
            ShapeTensor((4, 3)) + ShapeTensor((4, 2))

    def test_matmul_inner_dim(self):
        assert (ShapeTensor((3, 4)) @ ShapeTensor((4, 5))).shape == (3, 5)
        with pytest.raises(ShapeCheckError, match="matmul"):
            ShapeTensor((3, 4)) @ ShapeTensor((5, 6))

    def test_getitem_slices(self):
        t = ShapeTensor((7, 9))
        assert t[:, 3:6].shape == (7, 3)
        assert t[0].shape == (9,)

    def test_reductions(self):
        t = ShapeTensor((4, 5))
        assert t.sum().shape == ()
        assert t.mean(axis=0).shape == (5,)
        assert t.sum(axis=1, keepdims=True).shape == (4, 1)

    def test_numerics_are_refused(self):
        t = ShapeTensor((2, 2))
        with pytest.raises(ShapeCheckError):
            t.numpy()
        with pytest.raises(ShapeCheckError):
            t.backward()


# ----------------------------------------------------------------------
# The abstract op layer
# ----------------------------------------------------------------------
class TestAbstractGraph:
    def test_ops_are_patched_and_restored(self):
        real_gather = ops.gather
        with abstract_graph():
            assert ops.gather is not real_gather
            out = ops.segment_sum(
                ShapeTensor((6, 3)), np.zeros(6, dtype=int), num_segments=4
            )
            assert out.shape == (4, 3)
        assert ops.gather is real_gather

    def test_gather_bounds_checked(self):
        with abstract_graph():
            with pytest.raises(ShapeCheckError, match="gather"):
                ops.gather(ShapeTensor((5, 3)), np.array([0, 7]))

    def test_segment_ids_length_checked(self):
        with abstract_graph():
            with pytest.raises(ShapeCheckError, match="segment_sum"):
                ops.segment_sum(
                    ShapeTensor((6, 3)), np.zeros(4, dtype=int), num_segments=2
                )


# ----------------------------------------------------------------------
# TopologySignature construction
# ----------------------------------------------------------------------
class TestTopologySignature:
    def test_from_topology_matches_routing(self):
        from repro.topology import nsfnet

        sig = TopologySignature.from_topology(nsfnet())
        assert sig.link_indices.shape[0] == sig.num_paths
        assert sig.mask.shape == sig.link_indices.shape
        # Padded entries are -1 and masked out; real entries are valid links.
        real = sig.link_indices[sig.mask.astype(bool)]
        assert real.min() >= 0 and real.max() < sig.num_links
        assert (sig.link_indices[~sig.mask.astype(bool)] == -1).all()

    def test_model_input_is_concrete(self):
        from repro.topology import nsfnet

        inputs = TopologySignature.from_topology(nsfnet()).model_input()
        assert inputs.path_features.shape[0] == 14 * 13
