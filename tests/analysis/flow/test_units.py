"""RP3xx dimensional analysis: unit algebra, propagation, and reports."""

from __future__ import annotations

from repro.analysis.flow.units import UNIT_ALIASES, _inv, _mul, check_units

UNITS_MODULE = {
    "units.py": """
        Seconds = float
        Bits = float
        Packets = float
        BitsPerSecond = float
        PacketsPerSecond = float
        BitsPerPacket = float
        Dimensionless = float
    """,
}


def findings_for(make_project, files):
    merged = dict(UNITS_MODULE)
    merged.update(files)
    return check_units(make_project(merged))


class TestAlgebra:
    def test_rate_times_time_is_bits(self):
        bps = UNIT_ALIASES["BitsPerSecond"]
        s = UNIT_ALIASES["Seconds"]
        assert _mul(bps, s) == UNIT_ALIASES["Bits"]

    def test_bps_over_bits_per_packet_is_pps(self):
        bps = UNIT_ALIASES["BitsPerSecond"]
        bpp = UNIT_ALIASES["BitsPerPacket"]
        assert _mul(bps, _inv(bpp)) == UNIT_ALIASES["PacketsPerSecond"]

    def test_unit_over_itself_is_dimensionless(self):
        s = UNIT_ALIASES["Seconds"]
        assert _mul(s, _inv(s)) == UNIT_ALIASES["Dimensionless"]


class TestDetection:
    def test_rp301_mixed_addition(self, make_project):
        findings = findings_for(make_project, {
            "m.py": """
                from .units import BitsPerSecond, Seconds

                def broken(delay: Seconds, capacity: BitsPerSecond):
                    return delay + capacity
            """,
        })
        assert [v.code for v in findings] == ["RP301"]
        assert "s vs bit/s" in findings[0].message

    def test_rp302_mixed_comparison(self, make_project):
        findings = findings_for(make_project, {
            "m.py": """
                from .units import Bits, Seconds

                def broken(size: Bits, horizon: Seconds):
                    return size > horizon
            """,
        })
        assert [v.code for v in findings] == ["RP302"]

    def test_rp303_wrong_argument_unit(self, make_project):
        findings = findings_for(make_project, {
            "m.py": """
                from .units import BitsPerSecond, PacketsPerSecond

                def service(rate: PacketsPerSecond):
                    return rate

                def caller(capacity: BitsPerSecond):
                    return service(capacity)
            """,
        })
        assert [v.code for v in findings] == ["RP303"]
        assert "expects pkt/s, got bit/s" in findings[0].message

    def test_rp303_keyword_argument(self, make_project):
        findings = findings_for(make_project, {
            "m.py": """
                from .units import Seconds, Bits

                def wait(timeout: Seconds):
                    return timeout

                def caller(size: Bits):
                    return wait(timeout=size)
            """,
        })
        assert [v.code for v in findings] == ["RP303"]

    def test_rp304_wrong_return_unit(self, make_project):
        findings = findings_for(make_project, {
            "m.py": """
                from .units import Bits, Seconds

                def broken(size: Bits) -> Seconds:
                    return size
            """,
        })
        assert [v.code for v in findings] == ["RP304"]
        assert "annotated s, returns bit" in findings[0].message

    def test_dataclass_field_keyword_checked(self, make_project):
        findings = findings_for(make_project, {
            "m.py": """
                from dataclasses import dataclass

                from .units import Bits, Seconds

                @dataclass
                class Config:
                    duration: Seconds = 1.0

                def build(size: Bits):
                    return Config(duration=size)
            """,
        })
        assert [v.code for v in findings] == ["RP303"]


class TestPropagation:
    def test_transfer_time_checks_out(self, make_project):
        """bits / (bits/s) == s: the annotated return passes."""
        findings = findings_for(make_project, {
            "m.py": """
                from .units import Bits, BitsPerSecond, Seconds

                def transfer_time(size: Bits, capacity: BitsPerSecond) -> Seconds:
                    return size / capacity
            """,
        })
        assert findings == []

    def test_rate_conversion_checks_out(self, make_project):
        """(bits/s) / (bits/pkt) == pkt/s, through a local variable."""
        findings = findings_for(make_project, {
            "m.py": """
                from .units import BitsPerPacket, BitsPerSecond, PacketsPerSecond

                def to_pps(rate: BitsPerSecond,
                           packet: BitsPerPacket) -> PacketsPerSecond:
                    converted = rate / packet
                    return converted
            """,
        })
        assert findings == []

    def test_wrong_conversion_caught(self, make_project):
        """Multiplying instead of dividing flips the unit and is reported."""
        findings = findings_for(make_project, {
            "m.py": """
                from .units import BitsPerPacket, BitsPerSecond, PacketsPerSecond

                def to_pps(rate: BitsPerSecond,
                           packet: BitsPerPacket) -> PacketsPerSecond:
                    return rate * packet
            """,
        })
        assert [v.code for v in findings] == ["RP304"]

    def test_literal_numerator_division_is_polymorphic(self, make_project):
        """1/(mu - lam): closed-form queueing maths must not false-positive."""
        findings = findings_for(make_project, {
            "m.py": """
                from .units import PacketsPerSecond, Seconds

                def mean_delay(lam: PacketsPerSecond,
                               mu: PacketsPerSecond) -> Seconds:
                    return 1.0 / (mu - lam)
            """,
        })
        assert findings == []

    def test_numeric_literals_are_polymorphic(self, make_project):
        findings = findings_for(make_project, {
            "m.py": """
                from .units import Seconds

                def pad(delay: Seconds) -> Seconds:
                    return delay + 0.5
            """,
        })
        assert findings == []

    def test_annotated_local_conversion(self, make_project):
        """An AnnAssign asserts the new unit, as in the packet-sizer fix."""
        findings = findings_for(make_project, {
            "m.py": """
                from .units import Bits, BitsPerPacket, Packets

                def one_packet_bits(mean: BitsPerPacket) -> Bits:
                    count: Packets = 1.0
                    return mean * count
            """,
        })
        assert findings == []

    def test_suppression_comment_honored(self, make_project):
        findings = findings_for(make_project, {
            "m.py": """
                from .units import Bits, Seconds

                def known_odd(size: Bits, horizon: Seconds):
                    return size + horizon  # repro-lint: disable=RP301
            """,
        })
        assert findings == []


class TestRealTree:
    def test_repo_tree_is_dimensionally_clean(self, repo_index_and_graph):
        """Regression: the annotated simulator/queueing/traffic modules pass.

        This pins the ConstantPacketSize.sample fix (bits/packet * packets
        = bits) and every other annotation threaded through the tree.
        """
        index, _ = repo_index_and_graph
        findings = check_units(index)
        assert findings == [], [v.format() for v in findings]
