"""Helpers for building synthetic projects under tmp_path."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.flow import CallGraph, index_project

_REPO_SRC = Path(__file__).resolve().parents[3] / "src"


@pytest.fixture
def make_project(tmp_path):
    """Write a package from {relpath: source} and return its ProjectIndex.

    Keys are relative to the package directory; a key starting with ``/``
    is written relative to the source root instead, so tests can fabricate
    sibling top-level packages (e.g. a ``repro.runner.pool`` stub).
    """

    def build(files: dict[str, str], pkg: str = "proj"):
        root = tmp_path / "srcroot"
        (root / pkg).mkdir(parents=True, exist_ok=True)
        (root / pkg / "__init__.py").write_text("")
        for rel, source in files.items():
            path = (root / rel[1:]) if rel.startswith("/") else (root / pkg / rel)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return index_project(root)

    return build


@pytest.fixture(scope="session")
def repo_index_and_graph():
    """Index the real ``src/`` tree once per test session."""
    index = index_project(_REPO_SRC)
    return index, CallGraph(index)


@pytest.fixture
def make_graph(make_project):
    def build(files: dict[str, str], pkg: str = "proj"):
        index = make_project(files, pkg=pkg)
        return index, CallGraph(index)

    return build
