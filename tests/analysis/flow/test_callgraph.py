"""Call-graph builder edge cases: methods, decorators, lambdas, partial,
comprehensions, aliasing, re-exports, and the dynamic-getattr fallback."""

from __future__ import annotations

import pytest

from repro.analysis.flow import CallGraph, index_project
from repro.errors import AnalysisError


def edges_of(graph, qualname):
    return {s.resolved for s in graph.callees(qualname)}


class TestIndexing:
    def test_modules_and_functions(self, make_project):
        index = make_project({
            "a.py": """
                def f():
                    return 1

                class C:
                    def m(self):
                        return 2
            """,
        })
        assert "proj.a" in index.modules
        fns = index.all_functions()
        assert "proj.a.f" in fns
        assert "proj.a.C.m" in fns
        assert fns["proj.a.C.m"].class_name == "C"

    def test_syntax_error_raises(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "x.py").write_text("def broken(:\n")
        with pytest.raises(AnalysisError):
            index_project(root)

    def test_resolve_through_init_reexport(self, make_project):
        index = make_project({
            "sub/__init__.py": "from .impl import worker\n",
            "sub/impl.py": """
                def worker():
                    return 0
            """,
            "user.py": """
                from .sub import worker

                def caller():
                    return worker()
            """,
        })
        assert index.resolve("worker", "proj.user") == "proj.sub.impl.worker"
        graph = CallGraph(index)
        assert "proj.sub.impl.worker" in edges_of(graph, "proj.user.caller")

    def test_import_alias_resolution(self, make_project):
        index = make_project({
            "lib.py": "def helper():\n    return 1\n",
            "use.py": """
                from . import lib as renamed

                def go():
                    return renamed.helper()
            """,
        })
        graph = CallGraph(index)
        assert "proj.lib.helper" in edges_of(graph, "proj.use.go")

    def test_module_level_alias(self, make_project):
        index = make_project({
            "m.py": """
                def original():
                    return 1

                alias = original

                def caller():
                    return alias()
            """,
        })
        graph = CallGraph(index)
        assert "proj.m.original" in edges_of(graph, "proj.m.caller")


class TestMethodResolution:
    def test_self_method_call(self, make_graph):
        _, graph = make_graph({
            "c.py": """
                class C:
                    def outer(self):
                        return self.inner()

                    def inner(self):
                        return 1
            """,
        })
        assert "proj.c.C.inner" in edges_of(graph, "proj.c.C.outer")

    def test_inherited_method_via_base(self, make_graph):
        _, graph = make_graph({
            "base.py": """
                class Base:
                    def shared(self):
                        return 1
            """,
            "child.py": """
                from .base import Base

                class Child(Base):
                    def run(self):
                        return self.shared()
            """,
        })
        assert "proj.base.Base.shared" in edges_of(graph, "proj.child.Child.run")

    def test_bound_method_through_local_variable(self, make_graph):
        _, graph = make_graph({
            "svc.py": """
                class Service:
                    def handle(self):
                        return 1

                def driver():
                    s = Service()
                    return s.handle()
            """,
        })
        callees = edges_of(graph, "proj.svc.driver")
        assert "proj.svc.Service.handle" in callees

    def test_chained_constructor_method(self, make_graph):
        _, graph = make_graph({
            "svc.py": """
                class Runner:
                    def run(self):
                        return 1

                def go():
                    return Runner().run()
            """,
        })
        assert "proj.svc.Runner.run" in edges_of(graph, "proj.svc.go")

    def test_constructor_edge_to_init(self, make_graph):
        _, graph = make_graph({
            "svc.py": """
                class Thing:
                    def __init__(self):
                        self.x = 1

                def make():
                    return Thing()
            """,
        })
        assert "proj.svc.Thing.__init__" in edges_of(graph, "proj.svc.make")


class TestDecoratorsAndWrappers:
    def test_decorated_function_keeps_identity(self, make_graph):
        _, graph = make_graph({
            "d.py": """
                import functools

                def deco(fn):
                    @functools.wraps(fn)
                    def wrapper(*args, **kwargs):
                        return fn(*args, **kwargs)
                    return wrapper

                @deco
                def task():
                    return helper()

                def helper():
                    return 1

                def caller():
                    return task()
            """,
        })
        # Calls to the decorated name reach the decorated function body...
        assert "proj.d.task" in edges_of(graph, "proj.d.caller")
        # ...and through it, its callees.
        reach = graph.reachable(["proj.d.caller"])
        assert "proj.d.helper" in reach
        # The decorated function also links to its decorator.
        assert "proj.d.deco" in edges_of(graph, "proj.d.task")

    def test_functools_partial_target(self, make_graph):
        _, graph = make_graph({
            "p.py": """
                import functools

                def base(a, b):
                    return a + b

                def build():
                    bound = functools.partial(base, 1)
                    return bound(2)
            """,
        })
        reach = graph.reachable(["proj.p.build"])
        assert "proj.p.base" in reach

    def test_module_level_partial_alias(self, make_graph):
        _, graph = make_graph({
            "p.py": """
                import functools

                def base(a, b):
                    return a + b

                curried = functools.partial(base, 1)

                def use():
                    return curried(2)
            """,
        })
        assert "proj.p.base" in graph.reachable(["proj.p.use"])


class TestLambdasAndNesting:
    def test_lambda_body_reached_from_enclosing(self, make_graph):
        _, graph = make_graph({
            "l.py": """
                def target():
                    return 1

                def outer(xs):
                    return sorted(xs, key=lambda x: target())
            """,
        })
        reach = graph.reachable(["proj.l.outer"])
        assert "proj.l.target" in reach

    def test_nested_function_reached(self, make_graph):
        _, graph = make_graph({
            "n.py": """
                def helper():
                    return 2

                def outer():
                    def inner():
                        return helper()
                    return inner()
            """,
        })
        reach = graph.reachable(["proj.n.outer"])
        assert "proj.n.helper" in reach

    def test_calls_in_comprehension_attributed_to_function(self, make_graph):
        _, graph = make_graph({
            "c.py": """
                def score(x):
                    return x * 2

                def ranker(items):
                    return [score(i) for i in items]
            """,
        })
        assert "proj.c.score" in edges_of(graph, "proj.c.ranker")

    def test_function_reference_as_argument(self, make_graph):
        """Higher-order flows: a function passed as a value is 'may-called'."""
        _, graph = make_graph({
            "h.py": """
                def work(x):
                    return x

                def submit(fn):
                    return fn(1)

                def main():
                    return submit(work)
            """,
        })
        assert "proj.h.work" in graph.reachable(["proj.h.main"])


class TestDynamicCalls:
    def test_getattr_constant_string_resolves(self, make_graph):
        index, graph = make_graph({
            "g.py": """
                class Registry:
                    def handler(self):
                        return 1

                def lookup(r):
                    r = Registry()
                    return getattr(r, "handler")()
            """,
        })
        assert "proj.g.Registry.handler" in graph.reachable(["proj.g.lookup"])

    def test_getattr_dynamic_string_recorded_not_resolved(self, make_project):
        index = make_project({
            "g.py": """
                def lookup(obj, name):
                    return getattr(obj, name)()
            """,
        })
        fn = index.all_functions()["proj.g.lookup"]
        assert fn.dynamic_calls, "dynamic getattr must be recorded"
        assert any("getattr" in d.description for d in fn.dynamic_calls)


class TestQueries:
    def test_call_chain_shortest_path(self, make_graph):
        _, graph = make_graph({
            "q.py": """
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 1
            """,
        })
        assert graph.call_chain("proj.q.a", "proj.q.c") == [
            "proj.q.a", "proj.q.b", "proj.q.c",
        ]
        assert graph.call_chain("proj.q.c", "proj.q.a") is None

    def test_reachable_includes_roots(self, make_graph):
        _, graph = make_graph({
            "q.py": "def solo():\n    return 1\n",
        })
        assert graph.reachable(["proj.q.solo"]) == {"proj.q.solo"}


class TestCache:
    def test_cache_round_trip(self, tmp_path):
        root = tmp_path / "src"
        (root / "p").mkdir(parents=True)
        (root / "p" / "__init__.py").write_text("")
        (root / "p" / "m.py").write_text("def f():\n    return g()\n\ndef g():\n    return 1\n")
        cache = tmp_path / "cache"

        cold = index_project(root, cache_dir=cache)
        assert list(cache.glob("*.pkl")), "cache must be populated"
        warm = index_project(root, cache_dir=cache)
        assert set(warm.all_functions()) == set(cold.all_functions())
        # Graph built from cached facts is identical.
        g1 = CallGraph(cold)
        g2 = CallGraph(warm)
        assert ({s.resolved for s in g2.callees("p.m.f")}
                == {s.resolved for s in g1.callees("p.m.f")})
        assert "p.m.g" in g2.reachable(["p.m.f"])

    def test_cache_invalidated_on_edit(self, tmp_path):
        root = tmp_path / "src"
        (root / "p").mkdir(parents=True)
        (root / "p" / "__init__.py").write_text("")
        mod = root / "p" / "m.py"
        mod.write_text("def f():\n    return 1\n")
        cache = tmp_path / "cache"
        index_project(root, cache_dir=cache)

        mod.write_text("def f():\n    return 2\n\ndef h():\n    return f()\n")
        fresh = index_project(root, cache_dir=cache)
        assert "p.m.h" in fresh.all_functions()

    def test_suppressions_reset_on_cache_load(self, tmp_path):
        root = tmp_path / "src"
        (root / "p").mkdir(parents=True)
        (root / "p" / "__init__.py").write_text("")
        (root / "p" / "m.py").write_text(
            "x = 1  # repro-lint: disable=RP002\n")
        cache = tmp_path / "cache"
        first = index_project(root, cache_dir=cache)
        info = first.modules["p.m"]
        info.suppressions.is_suppressed(1, "RP002")  # mark used

        warm = index_project(root, cache_dir=cache)
        assert not warm.modules["p.m"].suppressions.used
