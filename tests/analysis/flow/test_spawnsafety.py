"""RP2xx spawn-safety & determinism proofs.

The acceptance-critical cases: an unseeded RNG or a mutable-global read
injected anywhere in a runner payload's transitive call tree must be
caught, and the report must carry the full call chain from the spawn root
to the offender.
"""

from __future__ import annotations

from repro.analysis.flow.spawnsafety import check_spawn_safety, find_spawn_roots

# Synthetic projects use the real runner class path so root detection
# matches production code: the pass keys on the ``repro.runner.pool``
# module name, so we fabricate that package as a *sibling* of the test
# package (leading ``/`` = source-root-relative in make_project).
RUNNER_STUB = {
    "/repro/__init__.py": "",
    "/repro/runner/__init__.py": "from .pool import ParallelRunner\n",
    "/repro/runner/pool.py": """
        class ParallelRunner:
            def __init__(self, worker, config=None):
                self.worker = worker
    """,
    "/repro/random.py": """
        def make_rng(seed=None):
            return seed
    """,
}


def project(make_graph, files):
    merged = dict(RUNNER_STUB)
    merged.update(files)
    return make_graph(merged, pkg="app")


def run_pass(make_graph, files):
    index, graph = project(make_graph, files)
    return index, check_spawn_safety(index, graph)


class TestRootDetection:
    def test_module_level_worker_is_a_root(self, make_graph):
        index, _ = project(make_graph, {
            "jobs.py": """
                from repro.runner import ParallelRunner

                def worker(payload, seed, attempt):
                    return payload

                def launch():
                    return ParallelRunner(worker)
            """,
        })
        roots = find_spawn_roots(index)
        assert [r.worker_qualname for r in roots] == ["app.jobs.worker"]

    def test_worker_keyword_argument(self, make_graph):
        index, _ = project(make_graph, {
            "jobs.py": """
                from repro.runner import ParallelRunner

                def worker(payload, seed, attempt):
                    return payload

                def launch(cfg):
                    return ParallelRunner(config=cfg, worker=worker)
            """,
        })
        roots = find_spawn_roots(index)
        assert [r.worker_qualname for r in roots] == ["app.jobs.worker"]

    def test_lambda_worker_reported_rp205(self, make_graph):
        _, findings = run_pass(make_graph, {
            "jobs.py": """
                from repro.runner import ParallelRunner

                def launch():
                    return ParallelRunner(lambda p, s, a: p)
            """,
        })
        assert [v.code for v in findings] == ["RP205"]

    def test_nested_function_worker_reported_rp205(self, make_graph):
        _, findings = run_pass(make_graph, {
            "jobs.py": """
                from repro.runner import ParallelRunner

                def launch():
                    def worker(p, s, a):
                        return p
                    return ParallelRunner(worker)
            """,
        })
        assert any(v.code == "RP205" for v in findings)

    def test_lambda_in_task_payload_reported(self, make_graph):
        _, findings = run_pass(make_graph, {
            "/repro/runner/types.py": """
                class Task:
                    def __init__(self, index=0, seed=0, payload=None):
                        self.payload = payload
            """,
            "jobs.py": """
                from repro.runner.types import Task

                def build():
                    return Task(index=0, seed=1, payload=lambda: 3)
            """,
        })
        assert any(v.code == "RP205" and "payload" in v.message
                   for v in findings)


class TestInjectedViolations:
    """Acceptance criteria: injected violations are caught with call chains."""

    def test_unseeded_rng_deep_in_call_tree(self, make_graph):
        _, findings = run_pass(make_graph, {
            "jobs.py": """
                from repro.runner import ParallelRunner
                from .sampling import generate

                def worker(payload, seed, attempt):
                    return generate(payload)

                def launch():
                    return ParallelRunner(worker)
            """,
            "sampling.py": """
                from .helpers import draw

                def generate(payload):
                    return draw()
            """,
            "helpers.py": """
                from repro.random import make_rng

                def draw():
                    rng = make_rng()
                    return rng
            """,
        })
        rng = [v for v in findings if v.code == "RP203"]
        assert len(rng) == 1
        v = rng[0]
        assert v.path.endswith("app/helpers.py")
        assert v.severity == "error"
        # Full chain from spawn root to the offender, in order.
        assert "app.jobs.worker -> app.sampling.generate -> app.helpers.draw" \
            in v.message

    def test_mutable_global_read_is_caught_with_chain(self, make_graph):
        _, findings = run_pass(make_graph, {
            "state.py": """
                CACHE = {}

                def remember(key, value):
                    CACHE[key] = value
            """,
            "jobs.py": """
                from repro.runner import ParallelRunner
                from .state import CACHE

                def worker(payload, seed, attempt):
                    return CACHE.get(payload)

                def launch():
                    return ParallelRunner(worker)
            """,
        })
        reads = [v for v in findings if v.code == "RP201"]
        assert len(reads) == 1
        assert "app.state.CACHE" in reads[0].message
        assert "app.jobs.worker" in reads[0].message
        assert reads[0].severity == "error"

    def test_global_mutation_in_worker_rp202(self, make_graph):
        _, findings = run_pass(make_graph, {
            "jobs.py": """
                from repro.runner import ParallelRunner

                RESULTS = []

                def worker(payload, seed, attempt):
                    RESULTS.append(payload)
                    return payload

                def launch():
                    return ParallelRunner(worker)
            """,
        })
        writes = [v for v in findings if v.code == "RP202"]
        assert len(writes) == 1
        assert "RESULTS" in writes[0].message

    def test_wall_clock_in_spawn_scope_is_warning(self, make_graph):
        _, findings = run_pass(make_graph, {
            "jobs.py": """
                import time
                from repro.runner import ParallelRunner

                def worker(payload, seed, attempt):
                    return time.time()

                def launch():
                    return ParallelRunner(worker)
            """,
        })
        clocks = [v for v in findings if v.code == "RP204"]
        assert len(clocks) == 1
        assert clocks[0].severity == "warning"

    def test_aliased_time_import_is_caught(self, make_graph):
        """`import time as _t` must not evade the wall-clock check."""
        _, findings = run_pass(make_graph, {
            "jobs.py": """
                import time as _t
                from repro.runner import ParallelRunner

                def worker(payload, seed, attempt):
                    return _t.perf_counter()

                def launch():
                    return ParallelRunner(worker)
            """,
        })
        assert any(v.code == "RP204" for v in findings)


class TestCleanWorkers:
    def test_seeded_worker_produces_no_findings(self, make_graph):
        _, findings = run_pass(make_graph, {
            "jobs.py": """
                from repro.runner import ParallelRunner
                from repro.random import make_rng

                CONSTANTS = {"a": 1}

                def worker(payload, seed, attempt):
                    rng = make_rng(seed)
                    return CONSTANTS.get(payload)

                def launch():
                    return ParallelRunner(worker)
            """,
        })
        assert findings == []

    def test_read_only_registry_is_allowed(self, make_graph):
        """A dict nobody mutates is fine to read from spawn scope."""
        _, findings = run_pass(make_graph, {
            "registry.py": """
                HANDLERS = {"x": 1}
            """,
            "jobs.py": """
                from repro.runner import ParallelRunner
                from .registry import HANDLERS

                def worker(payload, seed, attempt):
                    return HANDLERS[payload]

                def launch():
                    return ParallelRunner(worker)
            """,
        })
        assert [v.code for v in findings] == []

    def test_suppression_comment_silences_finding(self, make_graph):
        _, findings = run_pass(make_graph, {
            "jobs.py": """
                import time
                from repro.runner import ParallelRunner

                def worker(payload, seed, attempt):
                    return time.time()  # repro-lint: disable=RP204

                def launch():
                    return ParallelRunner(worker)
            """,
        })
        assert findings == []


class TestRealTree:
    def test_repo_spawn_scope_is_deterministic(self, repo_index_and_graph):
        index, graph = repo_index_and_graph
        findings = check_spawn_safety(index, graph)
        hard = [v for v in findings if v.severity == "error"]
        assert hard == [], [v.format() for v in hard]

    def test_generation_worker_is_detected_as_root(self, repo_index_and_graph):
        index, _ = repo_index_and_graph
        roots = {r.worker_qualname for r in find_spawn_roots(index)}
        assert "repro.dataset.generate._generation_worker" in roots
