"""RP4xx numpy hot-path perf lints: detection, hot/cold severity, exemptions."""

from __future__ import annotations

from repro.analysis.flow.perf import check_perf, hot_functions


def findings_for(make_graph, files, pkg="proj"):
    index, graph = make_graph(files, pkg=pkg)
    return check_perf(index, graph)


class TestDetection:
    def test_rp401_concatenate_in_loop(self, make_graph):
        findings = findings_for(make_graph, {
            "m.py": """
                import numpy as np

                def accumulate(chunks):
                    out = np.zeros(4)
                    for chunk in chunks:
                        out = np.concatenate([out, chunk])
                    return out
            """,
        })
        assert [v.code for v in findings] == ["RP401"]
        assert findings[0].severity == "warning"

    def test_rp402_allocation_in_loop(self, make_graph):
        findings = findings_for(make_graph, {
            "m.py": """
                import numpy as np

                def per_round(n, rounds):
                    total = 0.0
                    for _ in range(rounds):
                        buf = np.zeros(n)
                        total += buf.sum()
                    return total
            """,
        })
        assert [v.code for v in findings] == ["RP402"]

    def test_hoisted_allocation_is_clean(self, make_graph):
        findings = findings_for(make_graph, {
            "m.py": """
                import numpy as np

                def per_round(n, rounds):
                    buf = np.zeros(n)
                    total = 0.0
                    for _ in range(rounds):
                        buf[:] = 0.0
                        total += buf.sum()
                    return total
            """,
        })
        assert findings == []

    def test_rp403_loop_over_annotated_ndarray(self, make_graph):
        findings = findings_for(make_graph, {
            "m.py": """
                import numpy as np

                def total(values: np.ndarray):
                    acc = 0.0
                    for v in values:
                        acc += v
                    return acc
            """,
        })
        assert [v.code for v in findings] == ["RP403"]

    def test_rp403_container_of_arrays_is_clean(self, make_graph):
        """Regression: ``Sequence[np.ndarray]`` is a Python container — only
        the outer annotation type may classify an argument as an ndarray.
        (Walking the whole annotation flagged the gradient-reduction loops
        in ``repro.nn.grads``.)"""
        findings = findings_for(make_graph, {
            "m.py": """
                from typing import Optional, Sequence
                import numpy as np

                def reduce_all(grads: Sequence[np.ndarray],
                               extras: list[np.ndarray],
                               direct: np.ndarray,
                               maybe: Optional[np.ndarray]):
                    acc = 0.0
                    for g in grads:
                        acc += float(g.sum())
                    for e in extras:
                        acc += float(e.sum())
                    for v in direct:
                        acc += v
                    for v in maybe:
                        acc += v
                    return acc
            """,
        })
        # Only the two genuinely-ndarray arguments are flagged.
        assert [v.code for v in findings] == ["RP403", "RP403"]
        assert "direct" in findings[0].message
        assert "maybe" in findings[1].message

    def test_rp403_through_enumerate(self, make_graph):
        findings = findings_for(make_graph, {
            "m.py": """
                import numpy as np

                def scan(n):
                    xs = np.arange(n)
                    acc = 0.0
                    for i, v in enumerate(xs):
                        acc += i * v
                    return acc
            """,
        })
        assert [v.code for v in findings] == ["RP403"]

    def test_rebound_local_no_longer_tracked(self, make_graph):
        """Rebinding the name to a non-array clears the ndarray fact."""
        findings = findings_for(make_graph, {
            "m.py": """
                import numpy as np

                def scan(n):
                    xs = np.arange(n)
                    xs = list(range(n))
                    acc = 0
                    for v in xs:
                        acc += v
                    return acc
            """,
        })
        assert findings == []

    def test_rp404_astype_and_dtype(self, make_graph):
        findings = findings_for(make_graph, {
            "m.py": """
                import numpy as np

                def widen(x):
                    return x.astype(np.float64)

                def alloc(n):
                    return np.zeros(n, dtype=float)
            """,
        })
        assert sorted(v.code for v in findings) == ["RP404", "RP404"]


class TestHotPath:
    def test_forward_method_seeds_hot_set(self, make_graph):
        index, graph = make_graph({
            "model.py": """
                import numpy as np
                from .helpers import gather

                class Layer:
                    def forward(self, x):
                        return gather(x)
            """,
            "helpers.py": """
                import numpy as np

                def gather(xs):
                    out = np.zeros(3)
                    for x in xs:
                        out = np.concatenate([out, x])
                    return out
            """,
        })
        hot = hot_functions(index, graph)
        assert "proj.helpers.gather" in hot
        findings = check_perf(index, graph)
        concat = [v for v in findings if v.code == "RP401"]
        assert len(concat) == 1
        assert concat[0].severity == "error"
        assert "hot path via proj.helpers.gather" in concat[0].message

    def test_serving_module_is_hot(self, make_graph):
        findings = findings_for(make_graph, {
            "/repro/__init__.py": "",
            "/repro/serving/__init__.py": "",
            "/repro/serving/engine.py": """
                import numpy as np

                def batch(rounds, n):
                    for _ in range(rounds):
                        buf = np.zeros(n)
                    return buf
            """,
        })
        alloc = [v for v in findings if v.code == "RP402"]
        assert len(alloc) == 1
        assert alloc[0].severity == "error"

    def test_cold_module_is_warning_only(self, make_graph):
        findings = findings_for(make_graph, {
            "scripts.py": """
                import numpy as np

                def plot_prep(chunks):
                    rows = np.zeros(1)
                    for c in chunks:
                        rows = np.vstack([rows, c])
                    return rows
            """,
        })
        assert all(v.severity == "warning" for v in findings)

    def test_nn_dtype_exemption(self, make_graph):
        """float64 inside repro.nn is engine policy, not a perf bug."""
        findings = findings_for(make_graph, {
            "/repro/__init__.py": "",
            "/repro/nn/__init__.py": "",
            "/repro/nn/ops.py": """
                import numpy as np

                def promote(x):
                    return x.astype(np.float64)
            """,
        })
        assert [v.code for v in findings] == []


class TestRealTree:
    def test_no_hot_path_errors_in_repo(self, repo_index_and_graph):
        """Regression for the serving fastpath buffer hoist: the hot set
        must be free of error-severity RP4xx findings."""
        index, graph = repo_index_and_graph
        findings = check_perf(index, graph)
        hard = [v for v in findings if v.severity == "error"]
        assert hard == [], [v.format() for v in hard]

    def test_serving_fastpath_is_in_hot_set(self, repo_index_and_graph):
        index, graph = repo_index_and_graph
        hot = hot_functions(index, graph)
        assert any(q.startswith("repro.serving.fastpath.") for q in hot)

    def test_serving_service_is_in_hot_set(self, repo_index_and_graph):
        """The request-queue service (worker loop, coalescing, admission)
        runs per request and per batch: it must stay under the RP401-RP404
        perf lints along with the rest of repro.serving."""
        index, graph = repo_index_and_graph
        hot = hot_functions(index, graph)
        assert "repro.serving.service.ServingService.submit" in hot
        assert any(q.startswith("repro.serving.engine.") for q in hot)

    def test_training_step_closure_is_hot(self, repo_index_and_graph):
        """The RP401-RP404 hot set covers everything reachable from the
        training step entry points, not just serving/nn code: the loss and
        both trainer step methods must land in it."""
        index, graph = repo_index_and_graph
        hot = hot_functions(index, graph)
        assert "repro.training.trainer.Trainer.train_step" in hot
        assert "repro.training.trainer.Trainer.train_step_batch" in hot
        assert "repro.training.loss.huber_loss" in hot
