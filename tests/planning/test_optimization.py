"""Tests for model-driven routing optimization."""

import numpy as np
import pytest

from repro.core import HyperParams, RouteNet
from repro.errors import RoutingError
from repro.planning import generate_candidates, optimize_routing, OBJECTIVES
from repro.routing import RoutingScheme
from repro.training import Trainer


@pytest.fixture(scope="module")
def trained(tiny_samples):
    hp = HyperParams(
        link_state_dim=8, path_state_dim=8, message_passing_steps=2,
        readout_hidden=(12,), learning_rate=3e-3,
    )
    trainer = Trainer(RouteNet(hp, seed=0), seed=1)
    trainer.fit(tiny_samples, epochs=15)
    return trainer


class TestGenerateCandidates:
    def test_count_respected(self, tiny_topology):
        assert len(generate_candidates(tiny_topology, 5, seed=0)) == 5

    def test_first_is_shortest_path(self, tiny_topology):
        candidates = generate_candidates(tiny_topology, 3, seed=0)
        assert candidates[0].name == "shortest-path"

    def test_candidates_differ(self, tiny_topology):
        candidates = generate_candidates(tiny_topology, 6, seed=0)
        dicts = [c.to_dict() for c in candidates]
        unique = {tuple(sorted((k, tuple(v)) for k, v in d.items())) for d in dicts}
        assert len(unique) >= 3

    def test_deterministic(self, tiny_topology):
        a = generate_candidates(tiny_topology, 4, seed=9)
        b = generate_candidates(tiny_topology, 4, seed=9)
        assert [c.to_dict() for c in a] == [c.to_dict() for c in b]

    def test_zero_count_raises(self, tiny_topology):
        with pytest.raises(RoutingError):
            generate_candidates(tiny_topology, 0)


class TestOptimizeRouting:
    def test_result_structure(self, trained, tiny_samples):
        sample = tiny_samples[0]
        result = optimize_routing(
            trained.model, trained.scaler, sample.topology, sample.traffic,
            num_candidates=4, seed=0,
        )
        assert len(result.scores) == 4
        assert result.best is result.scores[0]
        assert result.best_routing is result.candidates[result.best.index]

    def test_scores_sorted_ascending(self, trained, tiny_samples):
        sample = tiny_samples[0]
        result = optimize_routing(
            trained.model, trained.scaler, sample.topology, sample.traffic,
            num_candidates=5, seed=1,
        )
        values = [s.score for s in result.scores]
        assert values == sorted(values)

    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_objectives_run(self, trained, tiny_samples, objective):
        sample = tiny_samples[0]
        result = optimize_routing(
            trained.model, trained.scaler, sample.topology, sample.traffic,
            num_candidates=3, objective=objective, seed=2,
        )
        assert result.objective == objective
        assert np.isfinite(result.best.score)

    def test_worst_objective_uses_max(self, trained, tiny_samples):
        sample = tiny_samples[0]
        result = optimize_routing(
            trained.model, trained.scaler, sample.topology, sample.traffic,
            num_candidates=3, objective="worst", seed=3,
        )
        for s in result.scores:
            assert s.score == pytest.approx(s.worst_delay)

    def test_unknown_objective_raises(self, trained, tiny_samples):
        sample = tiny_samples[0]
        with pytest.raises(RoutingError, match="objective"):
            optimize_routing(
                trained.model, trained.scaler, sample.topology, sample.traffic,
                objective="vibes",
            )

    def test_explicit_candidates(self, trained, tiny_samples):
        sample = tiny_samples[0]
        pool = [RoutingScheme.shortest_path(sample.topology)]
        result = optimize_routing(
            trained.model, trained.scaler, sample.topology, sample.traffic,
            candidates=pool,
        )
        assert len(result.scores) == 1

    def test_empty_candidates_raise(self, trained, tiny_samples):
        sample = tiny_samples[0]
        with pytest.raises(RoutingError, match="empty"):
            optimize_routing(
                trained.model, trained.scaler, sample.topology, sample.traffic,
                candidates=[],
            )

    def test_model_choice_beats_worst_candidate_in_simulation(
        self, trained, tiny_samples
    ):
        """End-to-end sanity: simulate best vs worst predicted candidate;
        the model's pick should not be the slower of the two."""
        from repro.simulator import SimulationConfig, simulate

        sample = tiny_samples[0]
        result = optimize_routing(
            trained.model, trained.scaler, sample.topology, sample.traffic,
            num_candidates=6, seed=4,
        )
        best = result.candidates[result.scores[0].index]
        worst = result.candidates[result.scores[-1].index]
        config = SimulationConfig(duration=400.0, warmup=40.0, seed=5)

        def simulated_mean(routing):
            res = simulate(sample.topology, routing, sample.traffic, config)
            delays = [f.mean_delay for f in res.flows.values() if f.delivered > 10]
            return float(np.mean(delays))

        assert simulated_mean(best) <= simulated_mean(worst) * 1.1
