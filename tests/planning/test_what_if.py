"""Tests for what-if planning studies."""

import numpy as np
import pytest

from repro.core import HyperParams, RouteNet
from repro.errors import TopologyError
from repro.planning import traffic_scaling_whatif, link_failure_whatif
from repro.topology import Topology
from repro.training import Trainer


@pytest.fixture(scope="module")
def trained(tiny_samples):
    hp = HyperParams(
        link_state_dim=8, path_state_dim=8, message_passing_steps=2,
        readout_hidden=(12,), learning_rate=3e-3,
    )
    trainer = Trainer(RouteNet(hp, seed=0), seed=1)
    trainer.fit(tiny_samples, epochs=15)
    return trainer


class TestTrafficScaling:
    def test_one_result_per_factor(self, trained, tiny_samples):
        s = tiny_samples[0]
        results = traffic_scaling_whatif(
            trained.model, trained.scaler, s.topology, s.routing, s.traffic,
            factors=(0.5, 1.0, 2.0),
        )
        assert [r.label for r in results] == [
            "traffic x0.50", "traffic x1.00", "traffic x2.00",
        ]

    def test_delay_monotone_in_traffic(self, trained, tiny_samples):
        """A trained model should predict more delay under more load."""
        s = tiny_samples[0]
        results = traffic_scaling_whatif(
            trained.model, trained.scaler, s.topology, s.routing, s.traffic,
            factors=(0.5, 1.0, 1.5),
        )
        means = [r.mean_delay() for r in results]
        assert means[0] < means[-1]

    def test_no_factors_raises(self, trained, tiny_samples):
        s = tiny_samples[0]
        with pytest.raises(ValueError):
            traffic_scaling_whatif(
                trained.model, trained.scaler, s.topology, s.routing, s.traffic,
                factors=(),
            )

    def test_worst_pair_consistent(self, trained, tiny_samples):
        s = tiny_samples[0]
        (result,) = traffic_scaling_whatif(
            trained.model, trained.scaler, s.topology, s.routing, s.traffic,
            factors=(1.0,),
        )
        pair, value = result.worst_pair()
        assert value == result.delay.max()
        assert pair in result.pairs


class TestLinkFailure:
    def test_before_after_structure(self, trained, tiny_samples):
        s = tiny_samples[0]
        # pick an edge whose removal keeps the net connected
        edge = None
        for link in s.topology.links:
            u, v = link.src, link.dst
            if s.topology.without_edge(u, v).is_connected():
                edge = (u, v)
                break
        assert edge is not None
        before, after = link_failure_whatif(
            trained.model, trained.scaler, s.topology, s.traffic, edge
        )
        assert before.label == "baseline"
        assert "fail" in after.label
        assert len(before.pairs) == len(after.pairs)

    def test_disconnecting_failure_raises(self, trained):
        # a line network: removing any edge disconnects it
        topo = Topology.from_edges(3, [(0, 1), (1, 2)], capacity=10_000.0)
        rates = np.zeros((3, 3))
        rates[0, 2] = 100.0
        from repro.traffic import TrafficMatrix

        with pytest.raises(TopologyError, match="disconnects"):
            link_failure_whatif(
                trained.model, trained.scaler, topo, TrafficMatrix(rates), (0, 1)
            )
