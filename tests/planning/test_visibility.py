"""Tests for the NetworkView visibility features."""

import pytest

from repro.core import HyperParams, RouteNet
from repro.planning import NetworkView, format_link_report
from repro.training import Trainer


@pytest.fixture(scope="module")
def trained(tiny_samples):
    hp = HyperParams(
        link_state_dim=8, path_state_dim=8, message_passing_steps=2,
        readout_hidden=(12,), learning_rate=3e-3,
    )
    trainer = Trainer(RouteNet(hp, seed=0), seed=1)
    trainer.fit(tiny_samples, epochs=10)
    return trainer


@pytest.fixture(scope="module")
def view(trained, tiny_samples):
    sample = tiny_samples[0]
    return NetworkView(
        trained.model, trained.scaler, sample.topology, sample.routing, sample.traffic
    )


class TestNetworkView:
    def test_path_delay_positive(self, view):
        src, dst = view.pairs[0]
        assert view.path_delay(src, dst) > 0

    def test_unknown_pair_raises(self, view):
        with pytest.raises(KeyError, match="no traffic"):
            view.path_delay(0, 0)

    def test_path_jitter(self, view):
        src, dst = view.pairs[0]
        assert view.path_jitter(src, dst) >= 0

    def test_delays_vector_aligned(self, view):
        delays = view.delays()
        assert delays.shape == (len(view.pairs),)
        src, dst = view.pairs[3]
        assert delays[3] == view.path_delay(src, dst)

    def test_top_delay_paths_sorted(self, view):
        rows = view.top_delay_paths(n=5)
        values = [r.predicted_delay for r in rows]
        assert values == sorted(values, reverse=True)

    def test_top_path_delay_matches_lookup(self, view):
        top = view.top_delay_paths(n=1)[0]
        assert top.predicted_delay == pytest.approx(view.path_delay(top.src, top.dst))

    def test_mean_network_delay_in_range(self, view):
        delays = view.delays()
        mean = view.mean_network_delay()
        assert delays.min() <= mean <= delays.max()

    def test_link_utilization_sorted_and_bounded(self, view):
        rows = view.link_utilization()
        utils = [r.utilization for r in rows]
        assert utils == sorted(utils, reverse=True)
        assert all(u >= 0 for u in utils)

    def test_link_utilization_matches_capacity(self, view):
        for row in view.link_utilization():
            assert row.utilization == pytest.approx(row.load_bits / row.capacity)


class TestFormat:
    def test_report_renders(self, view):
        text = format_link_report(view.link_utilization(), n=5)
        assert "util" in text
        assert "->" in text

    def test_empty_rows_raise(self):
        with pytest.raises(ValueError):
            format_link_report([])
