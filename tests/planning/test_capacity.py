"""Tests for capacity-planning what-ifs."""

import pytest

from repro.core import HyperParams, RouteNet
from repro.errors import TopologyError
from repro.planning import capacity_upgrade_whatif, rank_upgrade_candidates
from repro.training import Trainer


@pytest.fixture(scope="module")
def trained(tiny_samples):
    hp = HyperParams(
        link_state_dim=8, path_state_dim=8, message_passing_steps=2,
        readout_hidden=(12,), learning_rate=3e-3,
    )
    trainer = Trainer(RouteNet(hp, seed=0), seed=1)
    trainer.fit(tiny_samples, epochs=20)
    return trainer


@pytest.fixture(scope="module")
def scenario(tiny_samples):
    s = tiny_samples[0]
    return s.topology, s.routing, s.traffic


class TestWithCapacity:
    def test_only_selected_edge_changes(self, scenario):
        topo, _, _ = scenario
        link = topo.links[0]
        upgraded = topo.with_capacity(link.src, link.dst, link.capacity * 2)
        assert upgraded.links[link.id].capacity == link.capacity * 2
        reverse = upgraded.link_id(link.dst, link.src)
        assert upgraded.links[reverse].capacity == link.capacity * 2
        untouched = [
            l for l in upgraded.links if l.id not in (link.id, reverse)
        ]
        assert all(
            l.capacity == topo.links[l.id].capacity for l in untouched
        )

    def test_link_ids_preserved(self, scenario):
        topo, routing, _ = scenario
        link = topo.links[0]
        upgraded = topo.with_capacity(link.src, link.dst, link.capacity * 2)
        # Existing routing stays valid on the upgraded copy.
        for pair in routing.pairs[:5]:
            path = routing.node_path(*pair)
            for u, v in zip(path[:-1], path[1:]):
                assert upgraded.has_link(u, v)

    def test_missing_edge_raises(self, scenario):
        topo, _, _ = scenario
        with pytest.raises(TopologyError):
            topo.with_capacity(0, 0, 1.0)


class TestUpgradeWhatIf:
    def test_structure(self, trained, scenario):
        topo, routing, traffic = scenario
        link = topo.links[0]
        option = capacity_upgrade_whatif(
            trained.model, trained.scaler, topo, routing, traffic,
            (link.src, link.dst),
        )
        assert option.edge == (link.src, link.dst)
        assert option.mean_delay_before > 0
        assert option.mean_delay_after > 0
        assert 0 <= option.utilization_before

    def test_upgrading_bottleneck_predicts_improvement(self, trained, scenario):
        """Doubling the busiest edge should reduce predicted mean delay."""
        topo, routing, traffic = scenario
        options = rank_upgrade_candidates(
            trained.model, trained.scaler, topo, routing, traffic, top=3
        )
        assert options[0].improvement > 0

    def test_bad_factor_raises(self, trained, scenario):
        topo, routing, traffic = scenario
        link = topo.links[0]
        with pytest.raises(ValueError):
            capacity_upgrade_whatif(
                trained.model, trained.scaler, topo, routing, traffic,
                (link.src, link.dst), factor=0.0,
            )


class TestRankCandidates:
    def test_sorted_by_improvement(self, trained, scenario):
        topo, routing, traffic = scenario
        options = rank_upgrade_candidates(
            trained.model, trained.scaler, topo, routing, traffic, top=4
        )
        improvements = [o.improvement for o in options]
        assert improvements == sorted(improvements, reverse=True)

    def test_top_limits_candidates(self, trained, scenario):
        topo, routing, traffic = scenario
        options = rank_upgrade_candidates(
            trained.model, trained.scaler, topo, routing, traffic, top=2
        )
        assert len(options) == 2

    def test_bad_top_raises(self, trained, scenario):
        topo, routing, traffic = scenario
        with pytest.raises(ValueError):
            rank_upgrade_candidates(
                trained.model, trained.scaler, topo, routing, traffic, top=0
            )
