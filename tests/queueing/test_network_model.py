"""Tests for the analytic end-to-end queueing model."""

import numpy as np
import pytest

from repro.queueing import QueueingNetworkModel, mm1_mean_delay
from repro.routing import RoutingScheme
from repro.simulator import SimulationConfig, simulate
from repro.topology import Topology, nsfnet
from repro.traffic import TrafficMatrix, uniform_traffic, scale_to_utilization


def line_topology() -> Topology:
    return Topology.from_edges(3, [(0, 1), (1, 2)], capacity=10_000.0)


class TestLinkDelays:
    def test_single_flow_line_matches_mm1_sum(self):
        topo = line_topology()
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((3, 3))
        rates[0, 2] = 5_000.0  # rho = 0.5 on both hops
        tm = TrafficMatrix(rates)
        model = QueueingNetworkModel(mean_packet_bits=1_000.0)
        pred = model.predict(topo, routing, tm)
        per_link = mm1_mean_delay(5.0, 10.0)
        idx = pred.pairs.index((0, 2))
        assert pred.delay[idx] == pytest.approx(2 * per_link)

    def test_jitter_additive(self):
        topo = line_topology()
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((3, 3))
        rates[0, 2] = 5_000.0
        tm = TrafficMatrix(rates)
        pred = QueueingNetworkModel().predict(topo, routing, tm)
        idx = pred.pairs.index((0, 2))
        per_link_var = mm1_mean_delay(5.0, 10.0) ** 2
        assert pred.jitter[idx] == pytest.approx(2 * per_link_var)

    def test_propagation_delay_included(self):
        topo = Topology.from_edges(
            2, [(0, 1)], capacity=1e9, propagation_delay=0.25
        )
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((2, 2))
        rates[0, 1] = 100.0
        pred = QueueingNetworkModel().predict(topo, routing, TrafficMatrix(rates))
        assert pred.delay[0] == pytest.approx(0.25, rel=1e-3)

    def test_unstable_link_infinite_mm1(self):
        topo = Topology.from_edges(2, [(0, 1)], capacity=1_000.0)
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((2, 2))
        rates[0, 1] = 2_000.0
        pred = QueueingNetworkModel().predict(topo, routing, TrafficMatrix(rates))
        assert np.isinf(pred.delay[0])

    def test_finite_buffer_keeps_delay_finite(self):
        topo = Topology.from_edges(2, [(0, 1)], capacity=1_000.0)
        routing = RoutingScheme.shortest_path(topo)
        rates = np.zeros((2, 2))
        rates[0, 1] = 2_000.0
        pred = QueueingNetworkModel(buffer_packets=32).predict(
            topo, routing, TrafficMatrix(rates)
        )
        assert np.isfinite(pred.delay[0])

    def test_bad_packet_size_raises(self):
        with pytest.raises(ValueError):
            QueueingNetworkModel(mean_packet_bits=0.0)


class TestAgainstSimulator:
    def test_reasonable_agreement_at_moderate_load(self):
        """On a Poisson/exponential workload the analytic model should land
        in the right ballpark (it is exact for one M/M/1 hop and an
        approximation across hops)."""
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        tm = scale_to_utilization(uniform_traffic(14, 1.0, seed=0), topo, routing, 0.5)
        res = simulate(
            topo, routing, tm,
            SimulationConfig(duration=3_000.0, warmup=300.0, seed=1),
        )
        pairs = [p for p, f in res.flows.items() if f.delivered >= 100]
        sim = np.array([res.flows[p].mean_delay for p in pairs])
        pred = QueueingNetworkModel(buffer_packets=64).predict(topo, routing, tm, pairs)
        rel = np.abs(pred.delay - sim) / sim
        assert np.median(rel) < 0.25

    def test_explicit_pair_selection(self):
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        tm = scale_to_utilization(uniform_traffic(14, 1.0, seed=0), topo, routing, 0.4)
        pred = QueueingNetworkModel().predict(topo, routing, tm, pairs=[(0, 5), (3, 9)])
        assert pred.pairs == [(0, 5), (3, 9)]
        assert pred.delay.shape == (2,)
