"""Tests for M/M/1 and M/M/1/B closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.queueing import (
    mm1_mean_delay,
    mm1_delay_variance,
    mm1_mean_queue_length,
    mm1b_blocking_probability,
    mm1b_mean_queue_length,
    mm1b_mean_delay,
)


class TestMM1:
    def test_known_value(self):
        # lambda=5, mu=10 -> W = 1/5 = 0.2
        assert mm1_mean_delay(5.0, 10.0) == pytest.approx(0.2)

    def test_zero_load_is_service_time(self):
        assert mm1_mean_delay(0.0, 4.0) == pytest.approx(0.25)

    def test_unstable_infinite(self):
        assert mm1_mean_delay(10.0, 10.0) == float("inf")
        assert mm1_mean_delay(12.0, 10.0) == float("inf")

    def test_variance_is_square_of_mean(self):
        assert mm1_delay_variance(5.0, 10.0) == pytest.approx(0.04)

    def test_queue_length_littles_law(self):
        """L = lambda * W (Little's law)."""
        lam, mu = 3.0, 10.0
        assert mm1_mean_queue_length(lam, mu) == pytest.approx(
            lam * mm1_mean_delay(lam, mu)
        )

    def test_negative_arrival_raises(self):
        with pytest.raises(ReproError):
            mm1_mean_delay(-1.0, 10.0)

    def test_zero_service_raises(self):
        with pytest.raises(ReproError):
            mm1_mean_delay(1.0, 0.0)

    @given(
        rho=st.floats(0.01, 0.95),
        mu=st.floats(0.5, 100.0),
    )
    @settings(max_examples=50)
    def test_property_monotone_in_load(self, rho, mu):
        lam = rho * mu
        heavier = min(0.99, rho + 0.04) * mu
        assert mm1_mean_delay(heavier, mu) >= mm1_mean_delay(lam, mu)


class TestMM1B:
    def test_blocking_zero_when_idle(self):
        assert mm1b_blocking_probability(0.0, 10.0, 5) == 0.0

    def test_blocking_at_rho_one(self):
        assert mm1b_blocking_probability(10.0, 10.0, 4) == pytest.approx(1.0 / 5.0)

    def test_blocking_matches_direct_sum(self):
        """P_B = rho^B (1-rho) / (1-rho^{B+1}) equals normalized state prob."""
        lam, mu, b = 4.0, 10.0, 6
        rho = lam / mu
        probs = np.array([rho**n for n in range(b + 1)])
        probs /= probs.sum()
        assert mm1b_blocking_probability(lam, mu, b) == pytest.approx(probs[-1])

    def test_blocking_increases_with_load(self):
        low = mm1b_blocking_probability(2.0, 10.0, 5)
        high = mm1b_blocking_probability(9.0, 10.0, 5)
        assert high > low

    def test_blocking_decreases_with_buffer(self):
        small = mm1b_blocking_probability(8.0, 10.0, 2)
        large = mm1b_blocking_probability(8.0, 10.0, 50)
        assert large < small

    def test_queue_length_matches_direct_sum(self):
        lam, mu, b = 7.0, 10.0, 8
        rho = lam / mu
        probs = np.array([rho**n for n in range(b + 1)])
        probs /= probs.sum()
        expected = float((np.arange(b + 1) * probs).sum())
        assert mm1b_mean_queue_length(lam, mu, b) == pytest.approx(expected)

    def test_queue_length_rho_one(self):
        assert mm1b_mean_queue_length(10.0, 10.0, 6) == pytest.approx(3.0)

    def test_delay_converges_to_mm1_for_large_buffer(self):
        lam, mu = 5.0, 10.0
        finite = mm1b_mean_delay(lam, mu, 10_000)
        assert finite == pytest.approx(mm1_mean_delay(lam, mu), rel=1e-6)

    def test_delay_finite_even_overloaded(self):
        assert np.isfinite(mm1b_mean_delay(50.0, 10.0, 20))

    def test_zero_arrival_delay_is_service_time(self):
        assert mm1b_mean_delay(0.0, 4.0, 10) == pytest.approx(0.25)

    def test_bad_buffer_raises(self):
        with pytest.raises(ReproError):
            mm1b_blocking_probability(1.0, 2.0, 0)

    @given(
        rho=st.floats(0.05, 3.0),
        b=st.integers(1, 64),
    )
    @settings(max_examples=50)
    def test_property_blocking_is_probability(self, rho, b):
        p = mm1b_blocking_probability(rho * 10.0, 10.0, b)
        assert 0.0 <= p <= 1.0
