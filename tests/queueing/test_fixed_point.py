"""Tests for the reduced-load fixed-point model."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.queueing import QueueingNetworkModel, ReducedLoadModel
from repro.routing import RoutingScheme
from repro.simulator import SimulationConfig, simulate
from repro.topology import Topology, nsfnet
from repro.traffic import TrafficMatrix, uniform_traffic, scale_to_utilization


def line_scenario(rate: float):
    topo = Topology.from_edges(3, [(0, 1), (1, 2)], capacity=10_000.0)
    routing = RoutingScheme.shortest_path(topo)
    rates = np.zeros((3, 3))
    rates[0, 2] = rate
    return topo, routing, TrafficMatrix(rates)


class TestConstruction:
    def test_bad_params(self):
        with pytest.raises(ReproError):
            ReducedLoadModel(mean_packet_bits=0)
        with pytest.raises(ReproError):
            ReducedLoadModel(buffer_packets=0)
        with pytest.raises(ReproError):
            ReducedLoadModel(damping=0.0)


class TestLowLoad:
    def test_matches_plain_model_when_lossless(self):
        """With negligible blocking, thinning changes nothing."""
        topo, routing, tm = line_scenario(2_000.0)  # rho = 0.2
        fp = ReducedLoadModel(buffer_packets=64).solve(topo, routing, tm)
        plain = QueueingNetworkModel(buffer_packets=64).predict(topo, routing, tm)
        np.testing.assert_allclose(fp.delay, plain.delay, rtol=1e-6)
        assert fp.loss[0] < 1e-9

    def test_converges_quickly(self):
        topo, routing, tm = line_scenario(2_000.0)
        fp = ReducedLoadModel().solve(topo, routing, tm)
        assert fp.iterations < 100


class TestOverload:
    def test_blocking_self_consistent(self):
        """At the fixed point, each link's blocking equals the M/M/1/B value
        of its thinned arrival rate."""
        from repro.queueing import mm1b_blocking_probability

        topo, routing, tm = line_scenario(25_000.0)  # 2.5x overload
        model = ReducedLoadModel(buffer_packets=16, tolerance=1e-12)
        fp = model.solve(topo, routing, tm)
        service = topo.capacities() / 1_000.0
        for lam, mu, b in zip(fp.link_arrival_pps, service, fp.link_blocking):
            assert b == pytest.approx(
                mm1b_blocking_probability(lam, mu, 16), abs=1e-6
            )

    def test_downstream_sees_thinned_load(self):
        topo, routing, tm = line_scenario(25_000.0)
        fp = ReducedLoadModel(buffer_packets=16).solve(topo, routing, tm)
        first = topo.link_id(0, 1)
        second = topo.link_id(1, 2)
        assert fp.link_arrival_pps[second] < fp.link_arrival_pps[first]

    def test_end_to_end_loss_composes(self):
        topo, routing, tm = line_scenario(25_000.0)
        fp = ReducedLoadModel(buffer_packets=16).solve(topo, routing, tm)
        path = routing.link_path(0, 2)
        expected = 1.0 - np.prod([1.0 - fp.link_blocking[l] for l in path])
        assert fp.loss[0] == pytest.approx(expected)

    def test_loss_matches_simulator_in_overload(self):
        """The fixed point should land near the simulated loss rate."""
        topo, routing, tm = line_scenario(20_000.0)  # 2x overload
        fp = ReducedLoadModel(buffer_packets=16).solve(topo, routing, tm)
        res = simulate(
            topo, routing, tm,
            SimulationConfig(duration=400.0, warmup=40.0, seed=1,
                             buffer_packets=16),
        )
        simulated_loss = res.flows[(0, 2)].dropped / (
            res.flows[(0, 2)].dropped + res.flows[(0, 2)].delivered
        )
        assert fp.loss[0] == pytest.approx(simulated_loss, abs=0.08)

    def test_beats_naive_model_on_downstream_delay(self):
        """The naive model over-loads downstream links in overload; the
        reduced-load model should predict the tandem's simulated delay at
        least as well."""
        topo, routing, tm = line_scenario(20_000.0)
        res = simulate(
            topo, routing, tm,
            SimulationConfig(duration=400.0, warmup=40.0, seed=2,
                             buffer_packets=16),
        )
        true = res.flows[(0, 2)].mean_delay
        fp = ReducedLoadModel(buffer_packets=16).solve(topo, routing, tm)
        naive = QueueingNetworkModel(buffer_packets=16).predict(topo, routing, tm)
        assert abs(fp.delay[0] - true) <= abs(naive.delay[0] - true) + 1e-9


class TestWholeNetwork:
    def test_runs_on_nsfnet(self):
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        tm = scale_to_utilization(uniform_traffic(14, 1.0, seed=0), topo, routing, 0.9)
        fp = ReducedLoadModel(buffer_packets=32).solve(topo, routing, tm)
        assert np.isfinite(fp.delay).all()
        assert ((fp.loss >= 0) & (fp.loss <= 1)).all()

    def test_explicit_pairs(self):
        topo = nsfnet()
        routing = RoutingScheme.shortest_path(topo)
        tm = scale_to_utilization(uniform_traffic(14, 1.0, seed=0), topo, routing, 0.5)
        fp = ReducedLoadModel().solve(topo, routing, tm, pairs=[(0, 5)])
        assert fp.pairs == [(0, 5)]
        assert fp.delay.shape == (1,)
