"""Tests for dataset summary statistics."""

import numpy as np
import pytest

from repro.dataset import format_summary, summarize_dataset
from repro.errors import DatasetError


class TestSummarize:
    def test_counts(self, tiny_samples):
        summary = summarize_dataset(tiny_samples)
        assert summary.num_samples == len(tiny_samples)
        assert summary.total_pairs == sum(s.num_pairs for s in tiny_samples)

    def test_topology_counter(self, tiny_samples):
        summary = summarize_dataset(tiny_samples)
        assert sum(summary.topologies.values()) == len(tiny_samples)
        assert set(summary.topologies) == {tiny_samples[0].topology_name}

    def test_delay_quantiles_ordered(self, tiny_samples):
        q = summarize_dataset(tiny_samples).delay_quantiles
        assert q["min"] <= q["p25"] <= q["p50"] <= q["p75"] <= q["max"]

    def test_quantiles_match_numpy(self, tiny_samples):
        delays = np.concatenate([s.delay for s in tiny_samples])
        q = summarize_dataset(tiny_samples).delay_quantiles
        assert q["p50"] == pytest.approx(float(np.median(delays)))
        assert q["mean"] == pytest.approx(float(delays.mean()))

    def test_intensity_range(self, tiny_samples):
        summary = summarize_dataset(tiny_samples)
        lo, hi = summary.intensity_range
        assert 0 < lo <= hi < 1

    def test_single_class_dataset(self, tiny_samples):
        assert summarize_dataset(tiny_samples).num_classes == 1

    def test_empty_raises(self):
        with pytest.raises(DatasetError):
            summarize_dataset([])


class TestFormat:
    def test_renders_key_fields(self, tiny_samples):
        text = format_summary(summarize_dataset(tiny_samples))
        assert "samples:" in text
        assert "delay (s):" in text
        assert "intensity:" in text

    def test_cli_info_command(self, tiny_samples, tmp_path, capsys):
        from repro.cli import main
        from repro.dataset import save_dataset

        path = tmp_path / "d.jsonl"
        save_dataset(tiny_samples, path)
        assert main(["info", "-d", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"samples: {len(tiny_samples)}" in out
