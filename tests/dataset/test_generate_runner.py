"""Resilience/determinism tests for runner-driven dataset generation."""

import numpy as np
import pytest

from repro.dataset import (
    GenerationConfig,
    InjectedFailure,
    generate_dataset_run,
)
from repro.errors import RunnerError
from repro.runner import RunnerConfig

#: Very short simulations — these tests exercise orchestration, not the DES.
QUICK = GenerationConfig(
    target_packets_per_pair=25.0,
    min_delivered=2,
    intensity_range=(0.3, 0.5),
)


def assert_samples_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.pairs == y.pairs
        np.testing.assert_array_equal(x.delay, y.delay)
        np.testing.assert_array_equal(x.jitter, y.jitter)
        np.testing.assert_array_equal(x.loss_rate, y.loss_rate)


class TestDeterminism:
    def test_workers_4_bitwise_identical_to_sequential(self, tiny_topology):
        sequential = generate_dataset_run(tiny_topology, 6, seed=1302, config=QUICK)
        parallel = generate_dataset_run(
            tiny_topology, 6, seed=1302, config=QUICK, workers=4
        )
        assert_samples_identical(sequential.samples, parallel.samples)
        assert parallel.metrics.completed == 6
        assert parallel.metrics.workers == 4

    def test_metrics_extras_populated(self, tiny_topology):
        run = generate_dataset_run(tiny_topology, 2, seed=3, config=QUICK)
        assert run.metrics.extras["events_simulated"] > 0
        assert run.metrics.extras["from_checkpoint"] == 0
        assert run.metrics.wall_time > 0
        assert run.missing == ()


class TestFaultInjection:
    def test_injected_failure_is_retried_to_success(self, tiny_topology):
        baseline = generate_dataset_run(tiny_topology, 4, seed=9, config=QUICK)
        run = generate_dataset_run(
            tiny_topology, 4, seed=9, config=QUICK, workers=2,
            inject_failures={1: 1},
        )
        # The retry draws a fresh deterministic seed for task 1; all other
        # tasks are untouched by the injected failure.
        assert len(run.samples) == 4
        assert run.metrics.retries >= 1
        assert any(f.error_type == "InjectedFailure" for f in run.failures)
        for i in (0, 2, 3):
            assert run.samples[i].pairs == baseline.samples[i].pairs
            np.testing.assert_array_equal(
                run.samples[i].delay, baseline.samples[i].delay
            )

    def test_exhausted_raises_by_default(self, tiny_topology):
        with pytest.raises(RunnerError, match="failed all"):
            generate_dataset_run(
                tiny_topology, 2, seed=9, config=QUICK,
                runner=RunnerConfig(max_retries=1),
                inject_failures={0: 99},
            )

    def test_injected_failure_type(self, tiny_topology):
        run = generate_dataset_run(
            tiny_topology, 1, seed=9, config=QUICK, inject_failures={0: 1}
        )
        assert isinstance(run.failures[0].message, str)
        assert run.failures[0].error_type == InjectedFailure.__name__


class TestCheckpointResume:
    def test_resume_completes_bitwise_identically(self, tiny_topology, tmp_path):
        ckpt = tmp_path / "run"
        baseline = generate_dataset_run(tiny_topology, 5, seed=21, config=QUICK)

        # First run: task 3 always fails and is skipped, like a run that was
        # interrupted with work outstanding.
        partial = generate_dataset_run(
            tiny_topology, 5, seed=21, config=QUICK,
            checkpoint_dir=ckpt,
            runner=RunnerConfig(max_retries=0, on_exhausted="skip"),
            inject_failures={3: 99},
        )
        assert partial.missing == (3,)
        assert len(partial.samples) == 4
        assert (ckpt / "failures.jsonl").exists()

        # Resume: only the missing task runs; output matches a clean run.
        resumed = generate_dataset_run(
            tiny_topology, 5, seed=21, config=QUICK,
            checkpoint_dir=ckpt, resume=True,
        )
        assert resumed.missing == ()
        assert resumed.metrics.extras["from_checkpoint"] == 4
        assert resumed.metrics.total_tasks == 1
        assert_samples_identical(resumed.samples, baseline.samples)

    def test_resume_with_different_seed_raises(self, tiny_topology, tmp_path):
        ckpt = tmp_path / "run"
        generate_dataset_run(
            tiny_topology, 2, seed=1, config=QUICK, checkpoint_dir=ckpt
        )
        with pytest.raises(RunnerError, match="fingerprint"):
            generate_dataset_run(
                tiny_topology, 2, seed=2, config=QUICK,
                checkpoint_dir=ckpt, resume=True,
            )

    def test_fresh_run_overwrites_checkpoint(self, tiny_topology, tmp_path):
        ckpt = tmp_path / "run"
        generate_dataset_run(
            tiny_topology, 2, seed=1, config=QUICK, checkpoint_dir=ckpt
        )
        # Same directory, resume=False: previous shards are discarded and the
        # run regenerates everything (different seed is fine).
        run = generate_dataset_run(
            tiny_topology, 2, seed=2, config=QUICK, checkpoint_dir=ckpt
        )
        assert run.metrics.extras["from_checkpoint"] == 0
        assert len(run.samples) == 2
