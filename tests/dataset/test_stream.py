"""Tests for the binary stream dataset, deterministic samplers, and prefetch.

Covers the PR-10 acceptance pins:

* shard round-trip is **bitwise** (every label/structure array compares with
  ``np.array_equal``, including loss/pair-class and sparse-traffic edges);
* samplers are seeded-deterministic, worker-count-independent, and resumable
  across a kill/restart boundary via ``state_dict``;
* the prefetch loader survives a SIGKILLed worker mid-epoch and still packs
  bitwise-identical batches;
* ``Trainer.fit`` over a converted dataset reproduces the eager-list loss
  trajectory bitwise — including under ``prefetch=`` and ``workers=``.
"""

import dataclasses
import hashlib
import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core import HyperParams, RouteNet
from repro.dataset import (
    ItemSampler,
    MinibatchSampler,
    PrefetchLoader,
    ShardReader,
    ShardWriter,
    StreamDataset,
    convert_jsonl,
    fit_scaler,
    load_dataset,
    save_dataset,
    write_stream_dataset,
)
from repro.errors import DatasetError, DatasetFormatError
from repro.random import make_rng
from repro.traffic import TrafficMatrix
from repro.training import Trainer

TINY_HP = HyperParams(
    link_state_dim=8,
    path_state_dim=8,
    readout_hidden=(8,),
    message_passing_steps=2,
)


@pytest.fixture(scope="module")
def stream_dir(tiny_samples, tmp_path_factory):
    directory = tmp_path_factory.mktemp("stream") / "ds"
    write_stream_dataset(tiny_samples, directory, samples_per_shard=3)
    return directory


def assert_samples_bitwise_equal(a, b):
    assert a.pairs == b.pairs
    assert np.array_equal(a.delay, b.delay)
    assert np.array_equal(a.jitter, b.jitter)
    assert np.array_equal(a.loss_rate, b.loss_rate)
    if a.pair_class is None:
        assert b.pair_class is None
    else:
        assert np.array_equal(a.pair_class, b.pair_class)
    assert a.topology == b.topology
    assert a.routing.to_dict() == b.routing.to_dict()
    assert np.array_equal(a.traffic.rates, b.traffic.rates)
    assert a.meta == b.meta


class TestShardRoundTrip:
    def test_every_sample_roundtrips_bitwise(self, tiny_samples, stream_dir):
        ds = StreamDataset(stream_dir)
        assert len(ds) == len(tiny_samples)
        for original, restored in zip(tiny_samples, ds):
            assert_samples_bitwise_equal(original, restored)
        ds.close()

    def test_loss_and_pair_class_roundtrip(self, tiny_samples, tmp_path):
        base = tiny_samples[0]
        n = base.num_pairs
        sample = dataclasses.replace(
            base,
            loss_rate=np.linspace(0.0, 1.0, n),
            pair_class=np.arange(n) % 3,
        )
        write_stream_dataset([sample], tmp_path / "ds")
        ds = StreamDataset(tmp_path / "ds")
        restored = ds[0]
        assert np.array_equal(restored.loss_rate, sample.loss_rate)
        assert np.array_equal(restored.pair_class, sample.pair_class)
        ds.close()

    def test_sparse_traffic_and_dropped_pairs_roundtrip(
        self, tiny_samples, tmp_path
    ):
        """Edge case: most flows empty, most routed pairs dropped from labels."""
        base = tiny_samples[0]
        keep = 2
        rates = np.zeros_like(base.traffic.rates)
        for src, dst in base.pairs[:keep]:
            rates[src, dst] = base.traffic.rates[src, dst]
        sample = dataclasses.replace(
            base,
            traffic=TrafficMatrix(rates),
            pairs=base.pairs[:keep],
            delay=base.delay[:keep],
            jitter=base.jitter[:keep],
            loss_rate=base.loss_rate[:keep],
        )
        write_stream_dataset([sample], tmp_path / "ds")
        ds = StreamDataset(tmp_path / "ds")
        assert_samples_bitwise_equal(sample, ds[0])
        ds.close()

    def test_label_views_are_zero_copy(self, stream_dir):
        ds = StreamDataset(stream_dir)
        sample = ds.materialize(0)
        # Views into the shard memmap own no data of their own.
        assert not sample.delay.flags["OWNDATA"]
        assert not sample.jitter.flags["OWNDATA"]
        ds.close()

    def test_writer_is_incremental_and_sharded(self, tiny_samples, tmp_path):
        with ShardWriter(tmp_path / "ds", samples_per_shard=2) as writer:
            for sample in tiny_samples:
                writer.append(sample)
        manifest = json.loads((tmp_path / "ds" / "manifest.json").read_text())
        assert manifest["num_tasks"] == len(tiny_samples)
        assert len(manifest["shards"]) == (len(tiny_samples) + 1) // 2

    def test_reader_crc_matches_manifest(self, stream_dir):
        manifest = json.loads((stream_dir / "manifest.json").read_text())
        for entry in manifest["shards"]:
            reader = ShardReader(stream_dir / entry["file"])
            assert reader.body_crc32() == entry["crc32"]
            reader.close()


class TestFormatErrors:
    def _one_shard_dataset(self, tiny_samples, tmp_path):
        directory = tmp_path / "ds"
        write_stream_dataset(tiny_samples[:2], directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        return directory, directory / manifest["shards"][0]["file"]

    def test_corrupt_magic_raises(self, tiny_samples, tmp_path):
        directory, shard = self._one_shard_dataset(tiny_samples, tmp_path)
        data = bytearray(shard.read_bytes())
        data[0] ^= 0xFF
        shard.write_bytes(bytes(data))
        with pytest.raises(DatasetFormatError, match="magic"):
            ShardReader(shard)

    def test_future_shard_version_raises(self, tiny_samples, tmp_path):
        directory, shard = self._one_shard_dataset(tiny_samples, tmp_path)
        data = bytearray(shard.read_bytes())
        data[8:12] = (99).to_bytes(4, "little")
        shard.write_bytes(bytes(data))
        with pytest.raises(DatasetFormatError, match="version"):
            ShardReader(shard)

    def test_truncated_shard_raises(self, tiny_samples, tmp_path):
        directory, shard = self._one_shard_dataset(tiny_samples, tmp_path)
        shard.write_bytes(shard.read_bytes()[:100])
        with pytest.raises((DatasetFormatError, DatasetError)):
            ShardReader(shard)

    def test_verify_catches_bit_rot(self, tiny_samples, tmp_path):
        directory, shard = self._one_shard_dataset(tiny_samples, tmp_path)
        data = bytearray(shard.read_bytes())
        data[len(data) // 2] ^= 0x01
        shard.write_bytes(bytes(data))
        ds = StreamDataset(directory)
        with pytest.raises(DatasetError, match="crc|CRC"):
            ds.verify()
        ds.close()

    def test_manifest_count_mismatch_raises(self, tiny_samples, tmp_path):
        directory, _ = self._one_shard_dataset(tiny_samples, tmp_path)
        manifest_path = directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["num_tasks"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DatasetError):
            StreamDataset(directory)

    def test_refuses_overwrite_without_flag(self, tiny_samples, tmp_path):
        write_stream_dataset(tiny_samples[:1], tmp_path / "ds")
        with pytest.raises(DatasetError, match="overwrite"):
            write_stream_dataset(tiny_samples[:1], tmp_path / "ds")
        # And succeeds with the flag.
        write_stream_dataset(tiny_samples[:1], tmp_path / "ds", overwrite=True)


class TestStreamDataset:
    def test_sequence_protocol(self, tiny_samples, stream_dir):
        ds = StreamDataset(stream_dir)
        assert len(ds) == len(tiny_samples)
        assert_samples_bitwise_equal(ds[-1], tiny_samples[-1])
        sliced = ds[1:3]
        assert len(sliced) == 2
        assert_samples_bitwise_equal(sliced[0], tiny_samples[1])
        ds.close()

    def test_lru_cache_keeps_results_correct(self, tiny_samples, stream_dir):
        ds = StreamDataset(stream_dir, cache_samples=2)
        for index in (0, 5, 1, 5, 7, 0):
            assert_samples_bitwise_equal(ds[index], tiny_samples[index])
        ds.close()

    def test_pickle_reopens_by_path(self, stream_dir):
        import pickle

        ds = StreamDataset(stream_dir)
        clone = pickle.loads(pickle.dumps(ds))
        assert_samples_bitwise_equal(clone[2], ds[2])
        clone.close()
        ds.close()

    def test_convert_jsonl_preserves_concatenation_order(
        self, tiny_samples, tmp_path
    ):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_dataset(tiny_samples[:3], first)
        save_dataset(tiny_samples[3:], second)
        count = convert_jsonl([first, second], tmp_path / "ds",
                              samples_per_shard=4)
        assert count == len(tiny_samples)
        ds = StreamDataset(tmp_path / "ds")
        eager = load_dataset(first) + load_dataset(second)
        for restored, original in zip(ds, eager):
            assert_samples_bitwise_equal(restored, original)
        ds.close()


class TestItemSampler:
    def test_seeded_epochs_are_deterministic(self):
        a = ItemSampler(32, shuffle=True, seed=9)
        b = ItemSampler(32, shuffle=True, seed=9)
        assert np.array_equal(a.epoch_order(0), b.epoch_order(0))
        assert np.array_equal(a.epoch_order(3), b.epoch_order(3))
        assert not np.array_equal(a.epoch_order(0), a.epoch_order(1))

    def test_sequential_mode_is_identity(self):
        sampler = ItemSampler(5, shuffle=False)
        assert np.array_equal(sampler.epoch_order(0), np.arange(5))

    def test_resume_across_kill_boundary(self):
        """A restarted sampler continues exactly where the old one stopped."""
        sampler = ItemSampler(20, shuffle=True, seed=4)
        consumed = [next(sampler.iter_epoch()) for _ in range(7)]
        state = sampler.state_dict()

        resumed = ItemSampler(20, shuffle=True, seed=4)
        resumed.load_state_dict(state)
        rest = list(resumed.iter_epoch())
        full = ItemSampler(20, shuffle=True, seed=4).epoch_order(0)
        assert consumed + rest == list(full)

    def test_state_mismatch_rejected(self):
        state = ItemSampler(10, shuffle=True, seed=1).state_dict()
        other = ItemSampler(11, shuffle=True, seed=1)
        with pytest.raises(DatasetError):
            other.load_state_dict(state)


class TestMinibatchSampler:
    def test_partition_is_consecutive_and_shuffle_invariant(self):
        sampler = MinibatchSampler(10, 4, shuffle=True, seed=2)
        batches = sorted(sampler.epoch_batches(0))
        assert batches == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]

    def test_drop_last(self):
        sampler = MinibatchSampler(10, 4, drop_last=True)
        assert sampler.num_batches == 2

    def test_worker_count_independent_order(self):
        """The schedule is a pure function of (seed, epoch): any number of
        consumers sharding it round-robin reconstructs the same sequence."""
        sampler = MinibatchSampler(24, 4, shuffle=True, seed=7)
        schedule = sampler.epoch_batches(epoch=1)
        for consumers in (1, 2, 3):
            shards = [schedule[rank::consumers] for rank in range(consumers)]
            merged = [None] * len(schedule)
            for rank, shard in enumerate(shards):
                merged[rank::consumers] = shard
            assert merged == schedule

    def test_resume_roundtrip(self):
        sampler = MinibatchSampler(20, 4, shuffle=True, seed=3)
        first = [next(sampler.iter_epoch()) for _ in range(2)]
        resumed = MinibatchSampler(20, 4, shuffle=True, seed=3)
        resumed.load_state_dict(sampler.state_dict())
        rest = list(resumed.iter_epoch())
        assert first + rest == sampler.epoch_batches(0)

    def test_trajectory_mode_replays_legacy_shuffle(self):
        """``rng=`` mode consumes the caller's generator exactly like the
        legacy in-place persistent shuffle (permutations compose)."""
        legacy_rng = make_rng(11)
        legacy = np.arange(4)
        sampler_rng = make_rng(11)
        sampler = MinibatchSampler(16, 4, shuffle=True)
        for _ in range(3):
            legacy_rng.shuffle(legacy)
            batches = sampler.epoch_batches(rng=sampler_rng)
            assert [b[0] // 4 for b in batches] == list(legacy)


def _fit(source, tiny_samples_scaler=None, **kwargs):
    model = RouteNet(TINY_HP, seed=0)
    trainer = Trainer(model, seed=5)
    history = trainer.fit(source, epochs=2, batch_size=kwargs.pop("batch_size", 4),
                          **kwargs)
    losses = [epoch.train_loss for epoch in history.epochs]
    params = [p.data.copy() for p in model.parameters()]
    return losses, params


class TestTrainingParity:
    def test_stream_fit_matches_eager_bitwise(self, tiny_samples, stream_dir):
        ds = StreamDataset(stream_dir)
        eager_losses, eager_params = _fit(list(tiny_samples))
        stream_losses, stream_params = _fit(ds)
        assert eager_losses == stream_losses
        for a, b in zip(eager_params, stream_params):
            assert np.array_equal(a, b)
        ds.close()

    def test_prefetch_fit_matches_eager_bitwise(self, tiny_samples, stream_dir):
        ds = StreamDataset(stream_dir)
        eager_losses, eager_params = _fit(list(tiny_samples))
        prefetch_losses, prefetch_params = _fit(ds, prefetch=1)
        assert eager_losses == prefetch_losses
        for a, b in zip(eager_params, prefetch_params):
            assert np.array_equal(a, b)
        ds.close()

    def test_workers_over_stream_match_eager_worker_path(
        self, tiny_samples, stream_dir
    ):
        """Acceptance pin: converted dataset + workers in {1, 2} reproduces
        the eager-list loss digest bitwise."""
        ds = StreamDataset(stream_dir)
        eager_losses, _ = _fit(list(tiny_samples), workers=1)
        w1_losses, _ = _fit(ds, workers=1)
        w2_losses, w2_params = _fit(ds, workers=2)
        assert eager_losses == w1_losses == w2_losses
        ds.close()

    def test_prefetch_and_workers_are_exclusive(self, tiny_samples):
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="mutually exclusive"):
            _fit(list(tiny_samples), prefetch=1, workers=2)


class TestPrefetchLoader:
    def _loader(self, tiny_samples, stream_dir, **kwargs):
        ds = StreamDataset(stream_dir)
        scaler = fit_scaler(tiny_samples)
        return ds, PrefetchLoader(
            ds,
            scaler=scaler,
            include_load=False,
            path_feature_dim=TINY_HP.path_feature_dim,
            readout_targets=TINY_HP.readout_targets,
            **kwargs,
        )

    @staticmethod
    def _digest(batches):
        acc = hashlib.sha256()
        for inputs, targets in batches:
            acc.update(inputs.link_features.tobytes())
            acc.update(inputs.path_features.tobytes())
            acc.update(np.ascontiguousarray(inputs.link_indices).tobytes())
            acc.update(targets.tobytes())
        return acc.hexdigest()

    def test_packs_bitwise_identical_batches(self, tiny_samples, stream_dir):
        schedule = [(0, 1, 2), (3, 4), (5, 6, 7)]
        ds, loader = self._loader(tiny_samples, stream_dir)
        with ds, loader:
            digest = self._digest(loader.batches(schedule))
        ds2, loader2 = self._loader(tiny_samples, stream_dir, workers=2)
        with ds2, loader2:
            digest2 = self._digest(loader2.batches(schedule))
        assert digest == digest2

    def test_crash_recovery_mid_epoch(self, tiny_samples, stream_dir):
        """SIGKILL the packing worker mid-epoch: the pool respawns it and the
        epoch completes with a bitwise-identical batch digest.

        The kill waits for the pipeline to quiesce (bounded queue full,
        worker parked between rounds) — killing a process mid
        ``Queue.put`` can wedge the shared pipe, which is a multiprocessing
        limitation, not a recovery path the pool promises.
        """
        schedule = [(i % 8, (i + 1) % 8) for i in range(12)]
        ds, loader = self._loader(tiny_samples, stream_dir)
        with ds, loader:
            clean = self._digest(loader.batches(schedule))

        ds2, loader2 = self._loader(tiny_samples, stream_dir)
        with ds2, loader2:
            batches = []
            iterator = loader2.batches(schedule)
            batches.append(next(iterator))
            time.sleep(1.0)  # drain in-flight rounds: worker goes idle
            os.kill(loader2.pool._handles[0].process.pid, signal.SIGKILL)
            for batch in iterator:
                batches.append(batch)
            assert loader2.pool.stats.restarts >= 1
            crashed = self._digest(batches)
        assert clean == crashed

    def test_error_in_worker_propagates(self, tiny_samples, stream_dir):
        ds, loader = self._loader(tiny_samples, stream_dir)
        with ds, loader:
            with pytest.raises(Exception):
                list(loader.batches([(0, 99999)]))
