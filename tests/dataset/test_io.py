"""Tests for dataset serialization."""

import json

import numpy as np
import pytest

from repro.dataset import (
    load_dataset,
    sample_from_dict,
    sample_to_dict,
    save_dataset,
    iter_dataset,
)
from repro.errors import DatasetError, DatasetFormatError


class TestRoundtrip:
    def test_dict_roundtrip_preserves_labels(self, tiny_samples):
        sample = tiny_samples[0]
        restored = sample_from_dict(sample_to_dict(sample))
        np.testing.assert_allclose(restored.delay, sample.delay)
        np.testing.assert_allclose(restored.jitter, sample.jitter)
        assert restored.pairs == sample.pairs

    def test_dict_roundtrip_preserves_structures(self, tiny_samples):
        sample = tiny_samples[0]
        restored = sample_from_dict(sample_to_dict(sample))
        assert restored.topology == sample.topology
        assert restored.routing.to_dict() == sample.routing.to_dict()
        assert restored.traffic == sample.traffic
        assert restored.meta == sample.meta

    def test_dict_is_json_serializable(self, tiny_samples):
        payload = json.dumps(sample_to_dict(tiny_samples[0]))
        assert isinstance(payload, str)

    def test_file_roundtrip(self, tiny_samples, tmp_path):
        path = tmp_path / "data.jsonl"
        count = save_dataset(tiny_samples, path)
        assert count == len(tiny_samples)
        restored = load_dataset(path)
        assert len(restored) == len(tiny_samples)
        for a, b in zip(restored, tiny_samples):
            np.testing.assert_allclose(a.delay, b.delay)

    def test_iter_streams_lazily(self, tiny_samples, tmp_path):
        path = tmp_path / "data.jsonl"
        save_dataset(tiny_samples, path)
        iterator = iter_dataset(path)
        first = next(iterator)
        assert first.num_pairs == tiny_samples[0].num_pairs


class TestErrors:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError, match="does not exist"):
            load_dataset(tmp_path / "nope.jsonl")

    def test_corrupt_line_raises_with_location(self, tiny_samples, tmp_path):
        path = tmp_path / "data.jsonl"
        save_dataset(tiny_samples[:1], path)
        with path.open("a") as fh:
            fh.write("{not json}\n")
        with pytest.raises(DatasetError, match=":2"):
            load_dataset(path)

    def test_wrong_version_rejected(self, tiny_samples):
        data = sample_to_dict(tiny_samples[0])
        data["version"] = 99
        with pytest.raises(DatasetError, match="version"):
            sample_from_dict(data)

    def test_blank_lines_skipped(self, tiny_samples, tmp_path):
        path = tmp_path / "data.jsonl"
        save_dataset(tiny_samples[:2], path)
        with path.open("a") as fh:
            fh.write("\n\n")
        assert len(load_dataset(path)) == 2


class TestFormatValidation:
    """Per-line schema/version validation of ``iter_dataset``."""

    def _archive_with_line(self, tiny_samples, tmp_path, extra_line):
        path = tmp_path / "data.jsonl"
        save_dataset(tiny_samples[:1], path)
        with path.open("a") as fh:
            fh.write(extra_line + "\n")
        return path

    def test_bad_json_carries_path_and_line(self, tiny_samples, tmp_path):
        path = self._archive_with_line(tiny_samples, tmp_path, "{broken")
        with pytest.raises(DatasetFormatError) as info:
            list(iter_dataset(path))
        assert str(info.value.path) == str(path)
        assert info.value.line == 2

    def test_non_object_line_rejected(self, tiny_samples, tmp_path):
        path = self._archive_with_line(tiny_samples, tmp_path, "[1, 2, 3]")
        with pytest.raises(DatasetFormatError, match=":2"):
            list(iter_dataset(path))

    def test_missing_version_rejected(self, tiny_samples, tmp_path):
        data = sample_to_dict(tiny_samples[0])
        del data["version"]
        path = self._archive_with_line(tiny_samples, tmp_path, json.dumps(data))
        with pytest.raises(DatasetFormatError, match="version"):
            list(iter_dataset(path))

    def test_future_version_names_file_and_line(self, tiny_samples, tmp_path):
        data = sample_to_dict(tiny_samples[0])
        data["version"] = 99
        path = self._archive_with_line(tiny_samples, tmp_path, json.dumps(data))
        with pytest.raises(DatasetFormatError, match="version") as info:
            list(iter_dataset(path))
        assert info.value.line == 2

    def test_format_error_is_a_dataset_error(self):
        assert issubclass(DatasetFormatError, DatasetError)

    def test_valid_lines_before_the_bad_one_are_yielded(
        self, tiny_samples, tmp_path
    ):
        path = self._archive_with_line(tiny_samples, tmp_path, "{broken")
        iterator = iter_dataset(path)
        first = next(iterator)
        assert first.num_pairs == tiny_samples[0].num_pairs
        with pytest.raises(DatasetFormatError):
            next(iterator)
