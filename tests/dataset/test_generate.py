"""Tests for scenario generation."""

import numpy as np
import pytest

from repro.dataset import GenerationConfig, generate_dataset, generate_sample
from repro.errors import DatasetError
from repro.traffic import max_link_utilization

from ..conftest import FAST_CONFIG


class TestGenerationConfig:
    def test_defaults_valid(self):
        GenerationConfig()

    def test_bad_intensity(self):
        with pytest.raises(DatasetError):
            GenerationConfig(intensity_range=(0.9, 0.3))

    def test_bad_active_fraction(self):
        with pytest.raises(DatasetError):
            GenerationConfig(active_fraction=0.0)

    def test_unknown_routing_kind(self):
        with pytest.raises(DatasetError, match="routing kind"):
            GenerationConfig(routing_kinds=("ospf",))


class TestGenerateSample:
    def test_sample_structure(self, nsfnet_samples):
        sample = nsfnet_samples[0]
        assert sample.num_pairs >= 2
        assert (sample.delay > 0).all()
        assert (sample.jitter >= 0).all()
        assert sample.delay.shape == (sample.num_pairs,)

    def test_meta_recorded(self, nsfnet_samples):
        meta = nsfnet_samples[0].meta
        assert set(meta) >= {"routing_kind", "intensity", "duration", "loss_rate"}

    def test_deterministic_under_seed(self, nsfnet_topology):
        a = generate_sample(nsfnet_topology, seed=9, config=FAST_CONFIG)
        b = generate_sample(nsfnet_topology, seed=9, config=FAST_CONFIG)
        np.testing.assert_array_equal(a.delay, b.delay)
        assert a.routing.to_dict() == b.routing.to_dict()

    def test_intensity_respected(self, nsfnet_topology):
        cfg = GenerationConfig(
            target_packets_per_pair=40, min_delivered=5, intensity_range=(0.5, 0.5)
        )
        sample = generate_sample(nsfnet_topology, seed=1, config=cfg)
        util = max_link_utilization(sample.topology, sample.routing, sample.traffic)
        assert util == pytest.approx(0.5, rel=1e-6)

    def test_sparse_traffic(self, nsfnet_topology):
        cfg = GenerationConfig(
            target_packets_per_pair=40,
            min_delivered=5,
            active_fraction=0.3,
        )
        sample = generate_sample(nsfnet_topology, seed=2, config=cfg)
        max_pairs = 14 * 13
        assert len(sample.traffic.nonzero_pairs()) <= int(0.3 * max_pairs) + 2

    def test_routing_kind_variety_across_seeds(self, nsfnet_samples):
        kinds = {s.meta["routing_kind"] for s in nsfnet_samples}
        assert len(kinds) >= 2


class TestGenerateDataset:
    def test_count(self, nsfnet_samples):
        assert len(nsfnet_samples) == 12

    def test_samples_differ(self, nsfnet_samples):
        delays = [s.delay.mean() for s in nsfnet_samples]
        assert len(set(delays)) == len(delays)

    def test_bad_count_raises(self, nsfnet_topology):
        with pytest.raises(DatasetError):
            generate_dataset(nsfnet_topology, 0, seed=0)

    def test_parallel_matches_sequential(self, tiny_topology):
        from ..conftest import FAST_CONFIG

        sequential = generate_dataset(tiny_topology, 3, seed=77, config=FAST_CONFIG)
        parallel = generate_dataset(
            tiny_topology, 3, seed=77, config=FAST_CONFIG, workers=2
        )
        for a, b in zip(sequential, parallel):
            np.testing.assert_array_equal(a.delay, b.delay)
            assert a.pairs == b.pairs

    def test_bad_workers_raises(self, tiny_topology):
        with pytest.raises(DatasetError):
            generate_dataset(tiny_topology, 2, seed=0, workers=0)

    def test_delay_scale_physical(self, nsfnet_samples):
        """Delays should be within a few orders of the per-hop service time
        (0.1 s at 10 kb/s and 1000-bit packets)."""
        for sample in nsfnet_samples:
            assert sample.delay.min() > 0.01
            assert sample.delay.max() < 50.0
