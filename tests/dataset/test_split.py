"""Tests for dataset splitting and scaler fitting."""

import numpy as np
import pytest

from repro.dataset import train_eval_split, fit_scaler
from repro.errors import DatasetError


class TestSplit:
    def test_disjoint_and_complete(self, tiny_samples):
        train, evaluation = train_eval_split(tiny_samples, 0.25, seed=0)
        assert len(train) + len(evaluation) == len(tiny_samples)
        train_ids = {id(s) for s in train}
        eval_ids = {id(s) for s in evaluation}
        assert not train_ids & eval_ids

    def test_fraction_respected(self, tiny_samples):
        _, evaluation = train_eval_split(tiny_samples, 0.25, seed=0)
        assert len(evaluation) == round(0.25 * len(tiny_samples))

    def test_deterministic(self, tiny_samples):
        a = train_eval_split(tiny_samples, 0.3, seed=5)
        b = train_eval_split(tiny_samples, 0.3, seed=5)
        assert [id(s) for s in a[0]] == [id(s) for s in b[0]]

    def test_never_empty_sides(self, tiny_samples):
        train, evaluation = train_eval_split(tiny_samples[:2], 0.99, seed=0)
        assert len(train) >= 1 and len(evaluation) >= 1

    def test_bad_fraction_raises(self, tiny_samples):
        with pytest.raises(DatasetError):
            train_eval_split(tiny_samples, 1.5, seed=0)

    def test_too_few_samples_raises(self, tiny_samples):
        with pytest.raises(DatasetError):
            train_eval_split(tiny_samples[:1], 0.5, seed=0)


class TestFitScaler:
    def test_scales_positive(self, tiny_samples):
        scaler = fit_scaler(tiny_samples)
        assert scaler.capacity_scale > 0
        assert scaler.traffic_scale > 0
        assert (scaler.target_log_std > 0).all()

    def test_encoded_targets_standardized(self, tiny_samples):
        scaler = fit_scaler(tiny_samples)
        all_targets = np.concatenate([s.targets() for s in tiny_samples])
        encoded = scaler.encode_targets(all_targets)
        assert abs(encoded[:, 0].mean()) < 0.2
        assert 0.5 < encoded[:, 0].std() < 2.0

    def test_empty_raises(self):
        with pytest.raises(DatasetError):
            fit_scaler([])
