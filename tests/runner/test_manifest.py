"""Tests for checkpoint shard/manifest persistence."""

import json

import pytest

from repro.errors import RunnerError
from repro.runner import CheckpointStore, TaskFailure

FP = {"kind": "test", "seeds": (1, 2, 3)}


def make_store(tmp_path, fingerprint=FP, **kwargs):
    return CheckpointStore(tmp_path / "ckpt", fingerprint=fingerprint, **kwargs)


class TestCheckpointStore:
    def test_fresh_open_is_empty(self, tmp_path):
        store = make_store(tmp_path)
        assert store.open(num_tasks=3, resume=False) == {}
        assert store.manifest_path.exists()

    def test_record_and_resume(self, tmp_path):
        store = make_store(tmp_path)
        store.open(num_tasks=3, resume=False)
        store.record(0, seed=11, attempt=0, value={"a": 1})
        store.record(2, seed=13, attempt=1, value={"a": 3})

        completed = make_store(tmp_path).open(num_tasks=3, resume=True)
        assert completed == {0: {"a": 1}, 2: {"a": 3}}

    def test_encode_decode_round_trip(self, tmp_path):
        store = make_store(
            tmp_path,
            encode=lambda v: {"wrapped": v},
            decode=lambda d: d["wrapped"],
        )
        store.open(num_tasks=1, resume=False)
        store.record(0, seed=1, attempt=0, value=41)
        resumed = make_store(
            tmp_path,
            encode=lambda v: {"wrapped": v},
            decode=lambda d: d["wrapped"],
        )
        assert resumed.open(num_tasks=1, resume=True) == {0: 41}

    def test_fresh_open_discards_previous_run(self, tmp_path):
        store = make_store(tmp_path)
        store.open(num_tasks=2, resume=False)
        store.record(0, seed=1, attempt=0, value="old")
        store.record_failure(
            TaskFailure(index=1, attempt=0, seed=2, kind="exception",
                        error_type="ValueError", message="boom")
        )

        fresh = make_store(tmp_path)
        assert fresh.open(num_tasks=2, resume=False) == {}
        assert fresh.load_failures() == []

    def test_fingerprint_mismatch_raises(self, tmp_path):
        make_store(tmp_path).open(num_tasks=2, resume=False)
        other = make_store(tmp_path, fingerprint={"kind": "test", "seeds": (9,)})
        with pytest.raises(RunnerError, match="fingerprint mismatch"):
            other.open(num_tasks=2, resume=True)

    def test_task_count_mismatch_raises(self, tmp_path):
        make_store(tmp_path).open(num_tasks=2, resume=False)
        with pytest.raises(RunnerError, match="tasks"):
            make_store(tmp_path).open(num_tasks=5, resume=True)

    def test_corrupt_manifest_raises(self, tmp_path):
        store = make_store(tmp_path)
        store.open(num_tasks=1, resume=False)
        store.manifest_path.write_text("{not json", encoding="utf-8")
        with pytest.raises(RunnerError, match="corrupt"):
            make_store(tmp_path).open(num_tasks=1, resume=True)

    def test_corrupt_shard_reruns_that_task_only(self, tmp_path):
        store = make_store(tmp_path)
        store.open(num_tasks=2, resume=False)
        store.record(0, seed=1, attempt=0, value="keep")
        store.record(1, seed=2, attempt=0, value="lost")
        (store.shards_dir / "shard-000001.json").write_text("garbage", encoding="utf-8")

        completed = make_store(tmp_path).open(num_tasks=2, resume=True)
        assert completed == {0: "keep"}
        assert not (store.shards_dir / "shard-000001.json").exists()

    def test_shard_write_is_atomic(self, tmp_path):
        store = make_store(tmp_path)
        store.open(num_tasks=1, resume=False)
        store.record(0, seed=1, attempt=0, value="v")
        leftovers = list(store.shards_dir.glob("*.tmp"))
        assert leftovers == []

    def test_failures_append_as_jsonl(self, tmp_path):
        store = make_store(tmp_path)
        store.open(num_tasks=1, resume=False)
        for attempt in range(2):
            store.record_failure(
                TaskFailure(index=0, attempt=attempt, seed=5, kind="timeout",
                            error_type="TimeoutError", message="too slow",
                            elapsed=1.5)
            )
        records = store.load_failures()
        assert [r["attempt"] for r in records] == [0, 1]
        assert records[0]["kind"] == "timeout"
        raw = store.failures_path.read_text(encoding="utf-8").strip().splitlines()
        assert len(raw) == 2
        json.loads(raw[0])
