"""Tests for the resilient parallel runner pool."""

import os
import time

import pytest

from repro.errors import RunnerError
from repro.runner import (
    ParallelRunner,
    RunnerConfig,
    Task,
    attempt_seed,
    resolve_context,
)


# ----------------------------------------------------------------------
# Workers must live at module level so they pickle under every start
# method (fork, spawn, forkserver).
# ----------------------------------------------------------------------
def square_worker(payload, seed, attempt):
    return payload * payload


def seed_worker(payload, seed, attempt):
    return (payload, seed, attempt)


def flaky_worker(payload, seed, attempt):
    """Fails the first ``payload`` attempts, then succeeds."""
    if attempt < payload:
        raise ValueError(f"flaky attempt {attempt}")
    return ("ok", attempt)


def sleepy_worker(payload, seed, attempt):
    time.sleep(payload)
    return "slept"


def crash_worker(payload, seed, attempt):
    os._exit(7)  # die without reporting — simulates a segfault


def tasks_for(payloads, seed0=100):
    return [Task(index=i, seed=seed0 + i, payload=p) for i, p in enumerate(payloads)]


class TestAttemptSeed:
    def test_attempt_zero_is_base_seed(self):
        assert attempt_seed(12345, 0) == 12345

    def test_retries_deterministic(self):
        assert attempt_seed(12345, 1) == attempt_seed(12345, 1)
        assert attempt_seed(12345, 1) != attempt_seed(12345, 2)
        assert attempt_seed(12345, 1) != attempt_seed(54321, 1)


class TestRunnerConfig:
    def test_defaults_valid(self):
        RunnerConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"mp_context": "thread"},
            {"task_timeout": 0.0},
            {"max_retries": -1},
            {"on_exhausted": "ignore"},
            {"poll_interval": 0.0},
        ],
    )
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(RunnerError):
            RunnerConfig(**kwargs)

    def test_resolve_auto(self):
        assert resolve_context("auto").get_start_method() in ("fork", "spawn")

    def test_resolve_unknown_raises(self):
        with pytest.raises(RunnerError):
            resolve_context("mystery")


class TestInlinePath:
    def test_values_in_task_order(self):
        result = ParallelRunner(square_worker).run(tasks_for([3, 1, 4, 1, 5]))
        assert result.values == [9, 1, 16, 1, 25]
        assert result.metrics.completed == 5
        assert result.metrics.mp_context == "inline"

    def test_attempt_zero_uses_base_seed(self):
        result = ParallelRunner(seed_worker).run([Task(index=0, seed=42, payload="p")])
        assert result.values == [("p", 42, 0)]

    def test_retry_until_success(self):
        result = ParallelRunner(
            flaky_worker, RunnerConfig(max_retries=2)
        ).run(tasks_for([2]))
        assert result.values == [("ok", 2)]
        assert result.metrics.retries == 2
        assert result.metrics.failures == 2
        assert [f.attempt for f in result.failures] == [0, 1]
        assert all(f.kind == "exception" for f in result.failures)
        assert all(f.error_type == "ValueError" for f in result.failures)

    def test_exhausted_raises_by_default(self):
        with pytest.raises(RunnerError, match="failed all 2 attempt"):
            ParallelRunner(
                flaky_worker, RunnerConfig(max_retries=1)
            ).run(tasks_for([99]))

    def test_exhausted_skip_leaves_none(self):
        result = ParallelRunner(
            flaky_worker, RunnerConfig(max_retries=1, on_exhausted="skip")
        ).run(tasks_for([99, 0]))
        assert result.values == [None, ("ok", 0)]
        assert result.exhausted == [0]
        assert result.metrics.exhausted == 1

    def test_duplicate_indexes_raise(self):
        with pytest.raises(RunnerError, match="unique"):
            ParallelRunner(square_worker).run(
                [Task(index=0, seed=1), Task(index=0, seed=2)]
            )

    def test_progress_events(self):
        events = []
        ParallelRunner(flaky_worker, RunnerConfig(max_retries=1)).run(
            tasks_for([1, 0]), on_event=events.append
        )
        kinds = [(e.kind, e.index) for e in events]
        assert kinds == [
            ("start", 0), ("retry", 0), ("start", 0), ("done", 0),
            ("start", 1), ("done", 1),
        ]
        assert events[-1].completed == 2
        assert events[-1].total == 2

    def test_on_result_hook_sees_successes(self):
        seen = []
        ParallelRunner(square_worker).run(
            tasks_for([2, 3]),
            on_result=lambda index, seed, attempt, value: seen.append(
                (index, attempt, value)
            ),
        )
        assert seen == [(0, 0, 4), (1, 0, 9)]

    def test_on_failure_hook_fires_before_abort(self):
        seen = []
        with pytest.raises(RunnerError):
            ParallelRunner(flaky_worker, RunnerConfig(max_retries=0)).run(
                tasks_for([9]), on_failure=seen.append
            )
        assert len(seen) == 1
        assert seen[0].kind == "exception"


class TestParallelPath:
    def test_matches_inline(self):
        tasks = tasks_for([2, 3, 4, 5, 6])
        inline = ParallelRunner(seed_worker, RunnerConfig(workers=1)).run(tasks)
        parallel = ParallelRunner(seed_worker, RunnerConfig(workers=3)).run(tasks)
        assert parallel.values == inline.values
        assert parallel.metrics.mp_context in ("fork", "spawn", "forkserver")

    def test_retry_in_parallel(self):
        result = ParallelRunner(
            flaky_worker, RunnerConfig(workers=2, max_retries=2)
        ).run(tasks_for([1, 0, 2]))
        assert result.values == [("ok", 1), ("ok", 0), ("ok", 2)]
        assert result.metrics.retries == 3

    def test_worker_crash_is_recorded_and_exhausts(self):
        result = ParallelRunner(
            crash_worker,
            RunnerConfig(workers=2, max_retries=1, on_exhausted="skip",
                         crash_grace=0.2),
        ).run(tasks_for(["x"]))
        assert result.values == [None]
        assert [f.kind for f in result.failures] == ["crash", "crash"]
        assert "exit code 7" in result.failures[0].message

    def test_timeout_kills_attempt(self):
        result = ParallelRunner(
            sleepy_worker,
            RunnerConfig(workers=2, task_timeout=0.3, max_retries=0,
                         on_exhausted="skip"),
        ).run(tasks_for([30.0]))
        assert result.values == [None]
        assert result.failures[0].kind == "timeout"
        assert result.metrics.wall_time < 10.0

    def test_metrics_accounting(self):
        result = ParallelRunner(
            square_worker, RunnerConfig(workers=2)
        ).run(tasks_for([1, 2, 3, 4]))
        m = result.metrics
        assert m.total_tasks == 4
        assert m.completed == 4
        assert m.failures == 0
        assert m.wall_time > 0
        assert 0.0 <= m.utilization <= 1.0
