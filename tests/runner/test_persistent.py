"""PersistentPool: round dispatch, broadcast, crash recovery, lifecycle.

Worker/initializer functions live at module level — the pool ships them
across the process boundary, so they must be picklable under every
multiprocessing start method (the same contract the RP2xx proofs enforce
for production workers).
"""

import multiprocessing
import os

import pytest

from repro.errors import RunnerError
from repro.runner import PersistentPool


def _init(payload):
    return {"base": payload}


def _add(state, broadcast, payload):
    return state["base"] + (broadcast or 0) + payload


def _no_state(state, broadcast, payload):
    assert state is None
    return payload * 2


def _boom(state, broadcast, payload):
    raise ValueError(f"bad payload {payload}")


def _bad_init(payload):
    raise RuntimeError("init exploded")


def _crash_once(state, broadcast, payload):
    """Die hard (no exception, no result) the first time the flag is absent.

    The flag file makes the crash one-shot: the respawned worker's retry of
    the same payload finds the flag and succeeds, modeling a transient
    worker loss with a deterministic task.
    """
    if isinstance(payload, tuple) and payload[0] == "crash":
        flag = payload[1]
        if not os.path.exists(flag):
            with open(flag, "w"):
                pass
            os._exit(17)
        return 1000
    return payload


def _crash_always(state, broadcast, payload):
    os._exit(17)


class TestRounds:
    def test_results_in_payload_order(self):
        with PersistentPool(_add, workers=3, initializer=_init, init_payload=100) as pool:
            assert pool.run_step([1, 2, 3, 4, 5, 6, 7]) == [101, 102, 103, 104, 105, 106, 107]

    def test_broadcast_reaches_every_task(self):
        with PersistentPool(_add, workers=2, initializer=_init, init_payload=0) as pool:
            assert pool.run_step([1, 2, 3], broadcast=1000) == [1001, 1002, 1003]
            # Broadcast is per step, not sticky.
            assert pool.run_step([1, 2, 3]) == [1, 2, 3]

    def test_no_initializer(self):
        with PersistentPool(_no_state, workers=2) as pool:
            assert pool.run_step([3, 4]) == [6, 8]

    def test_empty_round(self):
        with PersistentPool(_add, workers=2, initializer=_init, init_payload=0) as pool:
            assert pool.run_step([]) == []

    def test_workers_persist_across_steps(self):
        with PersistentPool(_add, workers=2, initializer=_init, init_payload=0) as pool:
            for _ in range(5):
                pool.run_step([0, 1, 2, 3])
            assert pool.stats.steps == 5
            assert pool.stats.tasks == 20
            # Long-lived pool: exactly the two startup launches, no churn.
            assert pool.stats.worker_starts == 2
            assert pool.stats.restarts == 0


class TestFailures:
    def test_worker_exception_raises_without_retry(self):
        with PersistentPool(_boom, workers=2) as pool:
            with pytest.raises(RunnerError, match="bad payload"):
                pool.run_step([1, 2])

    def test_failed_initializer_raises(self):
        with PersistentPool(_add, workers=2, initializer=_bad_init) as pool:
            with pytest.raises(RunnerError, match="init exploded"):
                pool.run_step([1])

    def test_crash_mid_step_recovers(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        with PersistentPool(_crash_once, workers=2, crash_grace=0.2) as pool:
            values = pool.run_step([1, ("crash", flag), 3, 4])
            assert values == [1, 1000, 3, 4]
            assert pool.stats.restarts >= 1
            assert pool.stats.resubmitted >= 1
            # The pool is healthy again afterwards.
            assert pool.run_step([7, 8]) == [7, 8]

    def test_crash_budget_exhausted_raises(self):
        with PersistentPool(_crash_always, workers=1, max_restarts=1,
                            crash_grace=0.1) as pool:
            with pytest.raises(RunnerError, match="max_restarts"):
                pool.run_step([1])

    def test_idle_crash_between_steps_recovers(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        with PersistentPool(_crash_once, workers=2, crash_grace=0.2) as pool:
            pool.run_step([1, 2])
            # Kill one worker while the pool is idle; the next step must
            # replace it up front instead of stranding its task share.
            victim = pool._handles[0].process
            victim.terminate()
            victim.join(timeout=2.0)
            assert pool.run_step([5, 6, 7]) == [5, 6, 7]
            assert pool.stats.restarts >= 1


class TestLifecycle:
    def test_close_is_idempotent_and_blocks_reuse(self):
        pool = PersistentPool(_add, workers=2, initializer=_init, init_payload=0)
        pool.run_step([1])
        pool.close()
        pool.close()
        with pytest.raises(RunnerError, match="closed"):
            pool.run_step([1])

    def test_invalid_config(self):
        with pytest.raises(RunnerError):
            PersistentPool(_add, workers=0)
        with pytest.raises(RunnerError):
            PersistentPool(_add, workers=1, max_restarts=-1)

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_context(self):
        with PersistentPool(_add, workers=2, initializer=_init,
                            init_payload=10, mp_context="spawn") as pool:
            assert pool.run_step([1, 2]) == [11, 12]
