"""ServingService: sharding, coalescing, admission control, lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.core import RouteNet
from repro.dataset import fit_scaler
from repro.errors import AdmissionError, DeadlineExceededError
from repro.serving import (
    InferenceEngine,
    ServeConfig,
    ServeFuture,
    ServingService,
    TopologySignature,
)
from repro.topology import synthetic_topology


@pytest.fixture(scope="module")
def served(tiny_samples, nsfnet_samples):
    model = RouteNet(seed=21)
    scaler = fit_scaler(list(tiny_samples) + list(nsfnet_samples))
    return model, scaler


def make_service(served, **overrides) -> ServingService:
    model, scaler = served
    knobs = dict(max_batch=4, coalesce="count", workers=1, queue_depth=64)
    knobs.update(overrides)
    return ServingService(model, scaler, ServeConfig(**knobs))


class BlockedEngine:
    """Stand-in engine: parks the worker thread until released."""

    def __init__(self, inner):
        self.inner = inner
        self.entered = threading.Event()
        self.release = threading.Event()

    def predict_many(self, samples, batch_size=None):
        self.entered.set()
        assert self.release.wait(timeout=10.0)
        return self.inner.predict_many(samples, batch_size)

    def stats(self):
        return self.inner.stats()


class TestTopologySignature:
    def test_content_addressed_not_identity_addressed(self):
        a = synthetic_topology(6, seed=77, mean_degree=2.5)
        b = synthetic_topology(6, seed=77, mean_degree=2.5)
        assert a is not b
        assert TopologySignature.of(a) == TopologySignature.of(b)

    def test_different_structures_sign_differently(self):
        a = TopologySignature.of(synthetic_topology(6, seed=1))
        b = TopologySignature.of(synthetic_topology(8, seed=1))
        assert a.digest != b.digest

    def test_memo_returns_same_signature_object(self):
        topology = synthetic_topology(6, seed=2)
        assert TopologySignature.of(topology) is TopologySignature.of(topology)

    def test_shard_is_stable_and_in_range(self):
        sig = TopologySignature.of(synthetic_topology(6, seed=3))
        for workers in (1, 2, 3, 7):
            shard = sig.shard(workers)
            assert 0 <= shard < workers
            assert shard == sig.shard(workers)


class TestServe:
    def test_results_match_direct_engine(self, served, tiny_samples):
        model, scaler = served
        direct = InferenceEngine(
            model, scaler, ServeConfig(max_batch=4)
        ).predict_many(tiny_samples)
        with make_service(served) as service:
            futures = [service.submit(s) for s in tiny_samples]
            results = [f.result(timeout=30.0) for f in futures]
        for a, b in zip(direct, results):
            np.testing.assert_array_equal(a.delay, b.delay)

    def test_count_mode_cuts_full_batches(self, served, tiny_samples):
        with make_service(served, max_batch=4) as service:
            futures = [service.submit(s) for s in tiny_samples]  # 8 requests
            for future in futures:
                future.result(timeout=30.0)
            stats = service.stats()
        assert stats["engine"]["batches"] == 2
        assert stats["served"] == len(tiny_samples)
        assert stats["accepted"] == len(tiny_samples)

    def test_zero_wait_serves_immediately(self, served, tiny_samples):
        service = make_service(served, coalesce="deadline", max_wait_ms=0.0)
        with service:
            for sample in tiny_samples[:3]:
                service.submit(sample).result(timeout=30.0)
            stats = service.stats()
        assert stats["engine"]["batches"] == 3

    def test_shards_route_by_topology(self, served, tiny_samples, nsfnet_samples):
        with make_service(served, workers=2, max_batch=2) as service:
            futures = [service.submit(s) for s in tiny_samples]
            futures += [service.submit(s) for s in nsfnet_samples]
            for future in futures:
                future.result(timeout=30.0)
            stats = service.stats()
        tiny_shard = TopologySignature.of(tiny_samples[0].topology).shard(2)
        nsf_shard = TopologySignature.of(nsfnet_samples[0].topology).shard(2)
        expected = [0, 0]
        expected[tiny_shard] += len(tiny_samples)
        expected[nsf_shard] += len(nsfnet_samples)
        assert stats["engine"]["per_worker_queries"] == expected

    def test_repeated_queries_hit_shared_prediction_cache(self, served, tiny_samples):
        with make_service(served, max_batch=1) as service:
            service.submit(tiny_samples[0]).result(timeout=30.0)
            service.submit(tiny_samples[0]).result(timeout=30.0)
            stats = service.stats()
        assert stats["prediction_cache"]["hits"] == 1
        assert stats["engine"]["batches"] == 1  # second query never forwarded

    def test_future_records_latency(self, served, tiny_samples):
        with make_service(served, max_batch=1) as service:
            future = service.submit(tiny_samples[0])
            future.result(timeout=30.0)
        assert future.done()
        assert future.latency_s is not None and future.latency_s >= 0.0


class TestAdmissionControl:
    def test_queue_full_rejects_with_reason(self, served, tiny_samples):
        service = make_service(served, max_batch=1, queue_depth=2)
        blocker = BlockedEngine(service._engines[0])
        service._engines[0] = blocker
        try:
            in_flight = service.submit(tiny_samples[0])
            assert blocker.entered.wait(timeout=10.0)  # worker parked serving it
            service.submit(tiny_samples[1])
            service.submit(tiny_samples[2])  # queue now at capacity (2)
            with pytest.raises(AdmissionError) as excinfo:
                service.submit(tiny_samples[3])
            assert excinfo.value.reason == "queue_full"
            assert service.stats()["rejected"]["queue_full"] == 1
        finally:
            blocker.release.set()
            service.close()
        assert in_flight.result(timeout=30.0) is not None

    def test_submit_after_close_rejects_with_shutdown(self, served, tiny_samples):
        service = make_service(served)
        service.close()
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(tiny_samples[0])
        assert excinfo.value.reason == "shutdown"
        assert service.stats()["rejected"]["shutdown"] == 1

    def test_close_without_drain_fails_queued_requests(self, served, tiny_samples):
        service = make_service(served, max_batch=1, queue_depth=8)
        blocker = BlockedEngine(service._engines[0])
        service._engines[0] = blocker
        in_flight = service.submit(tiny_samples[0])
        assert blocker.entered.wait(timeout=10.0)
        queued = [service.submit(s) for s in tiny_samples[1:3]]
        service.close(drain=False, timeout=0.05)
        for future in queued:
            error = future.exception(timeout=1.0)
            assert isinstance(error, AdmissionError)
            assert error.reason == "shutdown"
        blocker.release.set()  # the in-flight request still completes
        assert in_flight.result(timeout=30.0) is not None

    def test_close_with_drain_serves_backlog(self, served, tiny_samples):
        service = make_service(served, max_batch=4)
        futures = [service.submit(s) for s in tiny_samples]
        service.close(drain=True)
        for future in futures:
            assert future.result(timeout=30.0) is not None
        assert service.closed
        service.close()  # idempotent

    def test_expired_request_fails_with_deadline_error(self, served, tiny_samples):
        service = make_service(served, max_batch=1, queue_depth=8)
        blocker = BlockedEngine(service._engines[0])
        service._engines[0] = blocker
        try:
            service.submit(tiny_samples[0])
            assert blocker.entered.wait(timeout=10.0)
            doomed = service.submit(tiny_samples[1], deadline_ms=1.0)
            time.sleep(0.02)  # let the deadline lapse while queued
        finally:
            blocker.release.set()
            service.close()
        assert isinstance(doomed.exception(timeout=10.0), DeadlineExceededError)
        assert service.stats()["expired"] == 1


class TestServeFuture:
    def test_result_times_out_while_pending(self):
        future = ServeFuture(shard=0, submitted_at=0.0)
        with pytest.raises(TimeoutError):
            future.result(timeout=0.01)
        with pytest.raises(TimeoutError):
            future.exception(timeout=0.01)
        assert future.latency_s is None
