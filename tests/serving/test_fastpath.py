"""The raw-numpy inference kernel must replay RouteNet.forward exactly."""

import numpy as np
import pytest

from repro import nn
from repro.core import HyperParams, RouteNet
from repro.dataset import fit_scaler
from repro.errors import ModelError
from repro.serving import (
    InferenceEngine,
    ServeConfig,
    fast_forward,
    pack_inputs,
    supports_fast_forward,
)
from repro.training import Trainer


def _inputs(samples, scaler):
    trainer = Trainer(RouteNet(seed=0), scaler=scaler)
    return [trainer._prepare(s)[0] for s in samples]


class TestEquivalence:
    def test_matches_autodiff_forward_per_sample(self, tiny_samples, nsfnet_samples):
        samples = [tiny_samples[0], nsfnet_samples[0]]
        scaler = fit_scaler(list(tiny_samples))
        model = RouteNet(seed=11)
        for inp in _inputs(samples, scaler):
            with nn.no_grad():
                reference = model.forward(inp, training=False).numpy()
            np.testing.assert_allclose(
                fast_forward(model, inp), reference, rtol=0.0, atol=1e-12
            )

    def test_matches_autodiff_forward_fused(self, tiny_samples, nsfnet_samples):
        scaler = fit_scaler(list(tiny_samples))
        batch = pack_inputs(
            _inputs([*tiny_samples[:3], nsfnet_samples[0]], scaler)
        )
        model = RouteNet(seed=12)
        with nn.no_grad():
            reference = model.forward(batch.inputs, training=False).numpy()
        np.testing.assert_allclose(
            fast_forward(model, batch.inputs), reference, rtol=0.0, atol=1e-12
        )

    def test_rnn_cell_supported(self, tiny_samples):
        scaler = fit_scaler(list(tiny_samples))
        model = RouteNet(HyperParams(cell_type="rnn"), seed=13)
        inp = _inputs([tiny_samples[0]], scaler)[0]
        with nn.no_grad():
            reference = model.forward(inp, training=False).numpy()
        np.testing.assert_allclose(
            fast_forward(model, inp), reference, rtol=0.0, atol=1e-12
        )

    def test_feature_width_mismatch_raises(self, tiny_samples):
        scaler = fit_scaler(list(tiny_samples))
        wide = RouteNet(HyperParams(link_feature_dim=2))
        with pytest.raises(ModelError):
            fast_forward(wide, _inputs([tiny_samples[0]], scaler)[0])


class TestSupport:
    def test_stock_model_supported(self):
        assert supports_fast_forward(RouteNet(seed=1))

    def test_exotic_module_falls_back(self, tiny_samples):
        scaler = fit_scaler(list(tiny_samples))
        model = RouteNet(seed=14)

        class OddCell(nn.GRUCell):
            pass

        model.path_cell = OddCell(
            model.hparams.link_state_dim,
            model.hparams.path_state_dim,
            np.random.default_rng(0),
        )
        assert not supports_fast_forward(model)
        engine = InferenceEngine(model, scaler)
        assert not engine.fast_path
        # Serving still works through the autodiff forward.
        result = engine.predict_many([tiny_samples[0]])[0]
        reference = model.predict(engine.build_input(tiny_samples[0]), scaler)
        np.testing.assert_allclose(result.delay, reference.delay, atol=1e-12)

    def test_engine_opt_out(self, tiny_samples):
        scaler = fit_scaler(list(tiny_samples))
        engine = InferenceEngine(
            RouteNet(seed=15), scaler, ServeConfig(use_fast_path=False)
        )
        assert not engine.fast_path
        assert engine.stats()["fast_path"] is False
