"""The raw-numpy inference kernel must replay RouteNet.forward exactly."""

import numpy as np
import pytest

from repro import nn
from repro.analysis.shapes import paper_signatures
from repro.core import HyperParams, RouteNet
from repro.core.plan import plan_for
from repro.dataset import fit_scaler
from repro.errors import ModelError
from repro.serving import (
    InferenceEngine,
    ServeConfig,
    fast_forward,
    pack_inputs,
    supports_fast_forward,
)
from repro.training import Trainer


def _inputs(samples, scaler):
    trainer = Trainer(RouteNet(seed=0), scaler=scaler)
    return [trainer._prepare(s)[0] for s in samples]


class TestEquivalence:
    def test_matches_autodiff_forward_per_sample(self, tiny_samples, nsfnet_samples):
        samples = [tiny_samples[0], nsfnet_samples[0]]
        scaler = fit_scaler(list(tiny_samples))
        model = RouteNet(seed=11)
        for inp in _inputs(samples, scaler):
            with nn.no_grad():
                reference = model.forward(inp, training=False).numpy()
            np.testing.assert_allclose(
                fast_forward(model, inp), reference, rtol=0.0, atol=1e-12
            )

    def test_matches_autodiff_forward_fused(self, tiny_samples, nsfnet_samples):
        scaler = fit_scaler(list(tiny_samples))
        batch = pack_inputs(
            _inputs([*tiny_samples[:3], nsfnet_samples[0]], scaler)
        )
        model = RouteNet(seed=12)
        with nn.no_grad():
            reference = model.forward(batch.inputs, training=False).numpy()
        np.testing.assert_allclose(
            fast_forward(model, batch.inputs), reference, rtol=0.0, atol=1e-12
        )

    def test_rnn_cell_supported(self, tiny_samples):
        scaler = fit_scaler(list(tiny_samples))
        model = RouteNet(HyperParams(cell_type="rnn"), seed=13)
        inp = _inputs([tiny_samples[0]], scaler)[0]
        with nn.no_grad():
            reference = model.forward(inp, training=False).numpy()
        np.testing.assert_allclose(
            fast_forward(model, inp), reference, rtol=0.0, atol=1e-12
        )

    def test_feature_width_mismatch_raises(self, tiny_samples):
        scaler = fit_scaler(list(tiny_samples))
        wide = RouteNet(HyperParams(link_feature_dim=2))
        with pytest.raises(ModelError):
            fast_forward(wide, _inputs([tiny_samples[0]], scaler)[0])


def _paper_inputs(seed=7):
    """The three paper families' ModelInputs with randomized features."""
    rng = np.random.default_rng(seed)
    out = {}
    for family, sig in paper_signatures().items():
        inp = sig.model_input()
        inp.link_features[:] = rng.standard_normal(inp.link_features.shape)
        inp.path_features[:] = rng.standard_normal(inp.path_features.shape)
        out[family] = inp
    return out


class TestArena:
    """Arena-backed execution is pinned bitwise against unplanned."""

    def test_paper_families_bitwise_identical(self):
        model = RouteNet(seed=21)
        for family, inp in _paper_inputs().items():
            with nn.no_grad():
                reference = model.forward(inp, training=False).numpy()
            unplanned = fast_forward(model, inp, arena=None)
            planned = fast_forward(model, inp, arena="auto")
            repeat = fast_forward(model, inp, arena="auto")
            np.testing.assert_array_equal(unplanned, reference, err_msg=family)
            np.testing.assert_array_equal(planned, unplanned, err_msg=family)
            np.testing.assert_array_equal(repeat, planned, err_msg=family)

    def test_result_is_never_an_arena_view(self):
        model = RouteNet(seed=21)
        inp = _paper_inputs()["nsfnet"]
        planned = fast_forward(model, inp, arena="auto")
        assert planned.base is None
        arena = plan_for(inp).arena_for(model)
        backing = arena.view("h_path").base
        assert planned.base is not backing

    def test_peak_bytes_flat_across_round_counts(self):
        """More message-passing rounds must not grow the arena: dead-slot
        reuse (h_link/gx/msg generations alternate) keeps the peak flat."""
        inp = _paper_inputs()["nsfnet"]
        plan = plan_for(inp)
        sizes = {
            steps: plan.arena_for(
                RouteNet(HyperParams(message_passing_steps=steps), seed=21)
            ).plan.total_bytes
            for steps in (3, 4, 8, 16)
        }
        assert len(set(sizes.values())) == 1, sizes

    def test_lock_loser_falls_back_bitwise(self):
        model = RouteNet(seed=21)
        inp = _paper_inputs()["geant2"]
        expected = fast_forward(model, inp, arena=None)
        arena = plan_for(inp).arena_for(model)
        assert arena.acquire()  # simulate a concurrent caller holding it
        try:
            contested = fast_forward(model, inp, arena="auto")
        finally:
            arena.release()
        np.testing.assert_array_equal(contested, expected)

    def test_explicit_arena_object(self):
        model = RouteNet(seed=21)
        inp = _paper_inputs()["nsfnet"]
        arena = plan_for(inp).arena_for(model)
        expected = fast_forward(model, inp, arena=None)
        np.testing.assert_array_equal(
            fast_forward(model, inp, arena=arena), expected
        )

    def test_arena_is_cached_per_model_geometry(self):
        inp = _paper_inputs()["nsfnet"]
        plan = plan_for(inp)
        a = plan.arena_for(RouteNet(seed=1))
        b = plan.arena_for(RouteNet(seed=2))  # same geometry, other weights
        assert a is b
        wide = plan.arena_for(RouteNet(HyperParams(link_state_dim=32), seed=1))
        assert wide is not a

    def test_mixed_dtype_input_falls_back(self):
        model = RouteNet(seed=21)
        sig = paper_signatures()["nsfnet"]
        inp = sig.model_input()
        narrow = type(inp)(
            pairs=inp.pairs,
            link_features=inp.link_features.astype(np.float32),
            path_features=inp.path_features,
            link_indices=inp.link_indices,
            mask=inp.mask,
        )
        out = fast_forward(model, narrow, arena="auto")
        np.testing.assert_array_equal(
            out, fast_forward(model, narrow, arena=None)
        )


class TestSupport:
    def test_stock_model_supported(self):
        assert supports_fast_forward(RouteNet(seed=1))

    def test_exotic_module_falls_back(self, tiny_samples):
        scaler = fit_scaler(list(tiny_samples))
        model = RouteNet(seed=14)

        class OddCell(nn.GRUCell):
            pass

        model.path_cell = OddCell(
            model.hparams.link_state_dim,
            model.hparams.path_state_dim,
            np.random.default_rng(0),
        )
        assert not supports_fast_forward(model)
        engine = InferenceEngine(model, scaler)
        assert not engine.fast_path
        # Serving still works through the autodiff forward.
        result = engine.predict_many([tiny_samples[0]])[0]
        reference = model.predict(engine.build_input(tiny_samples[0]), scaler)
        np.testing.assert_allclose(result.delay, reference.delay, atol=1e-12)

    def test_engine_opt_out(self, tiny_samples):
        scaler = fit_scaler(list(tiny_samples))
        engine = InferenceEngine(
            RouteNet(seed=15), scaler, ServeConfig(use_fast_path=False)
        )
        assert not engine.fast_path
        assert engine.stats()["fast_path"] is False
