"""Concurrency stress: N submitters vs a sharded service, under the checker.

Satellite of the RP5xx PR: hammer a 4-shard :class:`ServingService` from
several threads with mixed deadlines and prediction-cache churn while the
dynamic lockset checker (``repro.analysis.concurrency.runtime``) watches
every lock and instrumented attribute, then replay the same queries
single-threaded and require digest-identical results.  The explicit
``tsan_runtime`` fixture installs the checker regardless of the
``REPRO_TSAN`` environment, so these regressions run in every CI job.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np
import pytest

from repro.core import RouteNet
from repro.dataset import fit_scaler
from repro.errors import AdmissionError, DeadlineExceededError
from repro.serving import ServeConfig, ServingService


@pytest.fixture(scope="module")
def served(tiny_samples, nsfnet_samples):
    model = RouteNet(seed=21)
    scaler = fit_scaler(list(tiny_samples) + list(nsfnet_samples))
    return model, scaler


def make_service(served, **overrides) -> ServingService:
    model, scaler = served
    knobs = dict(max_batch=4, coalesce="count", workers=4, queue_depth=256)
    knobs.update(overrides)
    return ServingService(model, scaler, ServeConfig(**knobs))


def result_digest(result) -> str:
    payload = np.ascontiguousarray(result.delay, dtype=np.float64).tobytes()
    if result.jitter is not None:
        payload += np.ascontiguousarray(result.jitter, dtype=np.float64).tobytes()
    return hashlib.sha256(payload).hexdigest()


class TestStress:
    def test_submitters_vs_shards_race_free_and_deterministic(
            self, served, tiny_samples, tsan_runtime):
        samples = list(tiny_samples)
        service = make_service(served)
        digests: dict[tuple[int, int], str] = {}
        failures: list[BaseException] = []
        mu = threading.Lock()

        def submitter(worker_id: int) -> None:
            try:
                for round_no in range(3):
                    futures = []
                    for i, sample in enumerate(samples):
                        # Mixed admission pressure: every 5th request gets a
                        # generous-but-finite deadline.
                        deadline = 10_000.0 if (i + round_no) % 5 else None
                        try:
                            futures.append(
                                (i, service.submit(sample, deadline_ms=deadline))
                            )
                        except AdmissionError:
                            continue  # queue full under pressure: legal
                    for i, future in futures:
                        try:
                            result = future.result(timeout=60.0)
                        except DeadlineExceededError:
                            continue
                        with mu:
                            digests[(worker_id, i)] = result_digest(result)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                failures.append(exc)

        def churner() -> None:
            try:
                for _ in range(20):
                    if service.prediction_cache is not None:
                        service.prediction_cache.clear()
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=submitter, args=(w,)) for w in range(4)
        ] + [threading.Thread(target=churner)]
        with service:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
        assert not failures, failures
        assert digests, "stress produced no successful results"

        # The checker watched every instrumented lock/attribute above.
        tsan_runtime.assert_race_free()
        tsan_runtime.assert_no_lock_inversion()

        # Replay single-threaded: every concurrent answer must be
        # digest-identical to the sequential one for the same sample.
        # Count-coalescing holds partial batches, so submit everything
        # before collecting (8 samples = two full max_batch=4 cuts).
        replay = make_service(served, workers=1)
        with replay:
            futures = [(i, replay.submit(s)) for i, s in enumerate(samples)]
            expected = {
                i: result_digest(f.result(timeout=60.0)) for i, f in futures
            }
        for (_worker, i), digest in digests.items():
            assert digest == expected[i], f"sample {i} diverged under load"

    def test_service_counters_are_coherent_after_stress(
            self, served, tiny_samples, tsan_runtime):
        samples = list(tiny_samples)
        service = make_service(served, workers=2)

        def pump():
            # Submit-all-then-wait: count-coalescing parks partial batches,
            # so one-at-a-time submit+wait would deadlock by design.
            futures = [service.submit(s) for s in samples]
            for f in futures:
                f.result(timeout=60.0)

        with service:
            threads = [threading.Thread(target=pump) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            stats = service.stats()
        tsan_runtime.assert_race_free()
        # Every accepted request is accounted for exactly once.
        assert stats["accepted"] == 3 * len(samples)
        assert (
            stats["served"] + stats["expired"] + stats["errors"]
        ) == stats["accepted"]


class TestEngineStatsSplit:
    """Pin: ``reset_stats`` zeroes per-window counters but never the
    cache-lifetime counters, including while submits are in flight."""

    def test_reset_stats_preserves_cache_lifetime_counters(
            self, served, tiny_samples, tsan_runtime):
        samples = list(tiny_samples)
        # Deadline coalescing cuts batches on a time window, so the
        # sequential submit+wait pattern below cannot park a partial batch.
        service = make_service(
            served, workers=2, coalesce="deadline", max_wait_ms=1.0)
        with service:
            for s in samples:
                service.submit(s).result(timeout=60.0)
            engine = service._engines[0]
            before = engine.stats()
            stop = threading.Event()

            def background_submits():
                while not stop.is_set():
                    for s in samples[:3]:
                        try:
                            service.submit(s).result(timeout=60.0)
                        except Exception:  # noqa: BLE001 — close() racing
                            return

            t = threading.Thread(target=background_submits)
            t.start()
            # Reset while submits are in flight: must be safe (no torn
            # state, no race report from the checker).
            for eng in service._engines:
                eng.reset_stats()
            stop.set()
            t.join(timeout=60.0)
            # Quiescent reset pins the exact split: per-window counters
            # restart from zero, cache-lifetime counters survive.
            for eng in service._engines:
                eng.reset_stats()
            after_reset = engine.stats()
        tsan_runtime.assert_race_free()

        assert after_reset["queries"] == 0
        assert after_reset["batches"] == 0
        for key in ("hits", "misses", "evictions"):
            assert after_reset["cache"][key] >= before["cache"][key]
        # The shared prediction tier is cache-lifetime too.
        assert service.prediction_cache is not None
        pc = service.prediction_cache.stats()
        assert pc["hits"] + pc["misses"] > 0
