"""Fused-batch packing: structure and numerical equivalence."""

import numpy as np
import pytest

from repro.core import FeatureScaler, ModelInput, RouteNet, build_model_input
from repro.dataset import fit_scaler
from repro.errors import ServingError
from repro.routing import RoutingScheme
from repro.serving import pack_inputs
from repro.topology import nsfnet
from repro.traffic import uniform_traffic
from repro.training import Trainer


def _input_for(topo, seed=0, scaler=None):
    routing = RoutingScheme.shortest_path(topo)
    tm = uniform_traffic(topo.num_nodes, 50.0, seed=seed)
    return build_model_input(topo, routing, tm, scaler=scaler)


class TestPackInputs:
    def test_offsets_and_shapes(self, tiny_topology):
        a = _input_for(tiny_topology, seed=1)
        b = _input_for(nsfnet(), seed=2)
        batch = pack_inputs([a, b])
        assert batch.num_samples == 2
        assert batch.path_offsets == (0, a.num_paths, a.num_paths + b.num_paths)
        assert batch.link_offsets == (0, a.num_links, a.num_links + b.num_links)
        fused = batch.inputs
        assert fused.num_paths == a.num_paths + b.num_paths
        assert fused.num_links == a.num_links + b.num_links
        assert fused.max_path_length == max(a.max_path_length, b.max_path_length)
        assert fused.pairs == a.pairs + b.pairs

    def test_indices_are_offset_into_disjoint_link_spaces(self, tiny_topology):
        a = _input_for(tiny_topology, seed=1)
        b = _input_for(nsfnet(), seed=2)
        batch = pack_inputs([a, b])
        idx = batch.inputs.link_indices
        rows_a = idx[: a.num_paths]
        rows_b = idx[a.num_paths :]
        assert rows_a[rows_a >= 0].max() < a.num_links
        assert rows_b[rows_b >= 0].min() >= a.num_links
        # Sample a's shorter rows are padded with -1 up to the fused width.
        assert (rows_a[:, a.max_path_length :] == -1).all()

    def test_single_input_roundtrip(self, tiny_topology):
        a = _input_for(tiny_topology)
        batch = pack_inputs([a])
        np.testing.assert_array_equal(batch.inputs.link_indices, a.link_indices)
        np.testing.assert_array_equal(batch.inputs.mask, a.mask)

    def test_split_rows_inverts_concat(self, tiny_topology):
        a = _input_for(tiny_topology, seed=1)
        b = _input_for(nsfnet(), seed=2)
        batch = pack_inputs([a, b])
        rows = np.arange(batch.inputs.num_paths * 2.0).reshape(-1, 2)
        parts = batch.split_rows(rows)
        assert [len(p) for p in parts] == [a.num_paths, b.num_paths]
        np.testing.assert_array_equal(np.concatenate(parts), rows)

    def test_empty_batch_rejected(self):
        with pytest.raises(ServingError):
            pack_inputs([])

    def test_mismatched_feature_widths_rejected(self, tiny_topology):
        a = _input_for(tiny_topology)
        wide = ModelInput(
            pairs=a.pairs,
            link_features=np.concatenate([a.link_features] * 2, axis=1),
            path_features=a.path_features,
            link_indices=a.link_indices,
            mask=a.mask,
        )
        with pytest.raises(ServingError):
            pack_inputs([a, wide])

    def test_split_rows_validates_row_count(self, tiny_topology):
        batch = pack_inputs([_input_for(tiny_topology)])
        with pytest.raises(ServingError):
            batch.split_rows(np.zeros((batch.inputs.num_paths + 1, 2)))


class TestFusedEquivalence:
    """The tentpole invariant: fused predictions == per-sample predictions."""

    def test_mixed_topologies_match_per_sample(self, tiny_samples, nsfnet_samples):
        samples = [
            tiny_samples[0], nsfnet_samples[0], tiny_samples[1],
            nsfnet_samples[1], tiny_samples[2],
        ]
        model = RouteNet(seed=3)
        trainer = Trainer(model, scaler=fit_scaler(samples))
        per_sample = [trainer.predict_sample(s) for s in samples]
        fused = trainer.engine(batch_size=len(samples)).predict_many(samples)
        for single, batched in zip(per_sample, fused):
            assert batched.pairs == single.pairs
            np.testing.assert_allclose(
                batched.delay, single.delay, rtol=0.0, atol=1e-10
            )
            np.testing.assert_allclose(
                batched.jitter, single.jitter, rtol=0.0, atol=1e-10
            )

    def test_forward_on_fused_input_matches_concatenated(self, tiny_samples):
        model = RouteNet(seed=5)
        scaler = FeatureScaler.identity()
        trainer = Trainer(model, scaler=scaler)
        inputs = [trainer._prepare(s)[0] for s in tiny_samples[:3]]
        batch = pack_inputs(inputs)
        fused_out = model.forward(batch.inputs).numpy()
        per_out = np.concatenate([model.forward(inp).numpy() for inp in inputs])
        np.testing.assert_allclose(fused_out, per_out, rtol=0.0, atol=1e-10)
