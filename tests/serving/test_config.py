"""ServeConfig: validation, replace, serialization."""

import pytest

from repro.errors import ServingError
from repro.serving import ServeConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.max_batch == 32
        assert config.coalesce == "deadline"
        assert config.deadline_ms is None

    @pytest.mark.parametrize(
        "bad",
        [
            {"max_batch": 0},
            {"max_wait_ms": -1.0},
            {"deadline_ms": 0.0},
            {"deadline_ms": -5.0},
            {"queue_depth": 0},
            {"workers": 0},
            {"input_cache_size": 0},
            {"prediction_cache_size": -1},
            {"coalesce": "fifo"},
        ],
    )
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ServingError):
            ServeConfig(**bad)

    def test_zero_prediction_cache_disables_tier(self):
        assert ServeConfig(prediction_cache_size=0).prediction_cache_size == 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServeConfig().max_batch = 4  # type: ignore[misc]


class TestReplace:
    def test_replace_returns_new_validated_config(self):
        base = ServeConfig()
        changed = base.replace(max_batch=4, coalesce="count")
        assert changed.max_batch == 4
        assert changed.coalesce == "count"
        assert base.max_batch == 32  # original untouched
        with pytest.raises(ServingError):
            base.replace(max_batch=0)


class TestToDict:
    def test_round_trips_through_constructor(self):
        config = ServeConfig(max_batch=8, workers=2, deadline_ms=50.0)
        rebuilt = ServeConfig(**config.to_dict())
        assert rebuilt == config
