"""Load harness: open/closed loop runs, report accounting, reproducibility."""

import math

import pytest

from repro.core import RouteNet
from repro.dataset import fit_scaler
from repro.serving import (
    ServeConfig,
    ServingService,
    predictions_digest,
    run_closed_loop,
    run_open_loop,
)


@pytest.fixture(scope="module")
def served(tiny_samples):
    model = RouteNet(seed=21)
    scaler = fit_scaler(list(tiny_samples))
    return model, scaler


def make_service(served, **overrides) -> ServingService:
    model, scaler = served
    knobs = dict(max_batch=4, coalesce="count", workers=1, queue_depth=128,
                 prediction_cache_size=0)
    knobs.update(overrides)
    return ServingService(model, scaler, ServeConfig(**knobs))


class TestClosedLoop:
    def test_accounts_every_request(self, served, tiny_samples):
        service = make_service(served)
        report, results = run_closed_loop(
            service, tiny_samples, num_requests=16, seed=3
        )
        assert report.requests == 16
        assert report.completed == len(results) == 16
        assert report.rejected == report.expired == report.errors == 0
        assert report.achieved_rps > 0
        assert math.isfinite(report.p50_ms) and report.p99_ms >= report.p50_ms
        assert service.closed  # a closed-loop run consumes its service

    def test_replay_is_bitwise_reproducible(self, served, tiny_samples):
        digests = []
        for _ in range(2):
            service = make_service(served, workers=2)
            _, results = run_closed_loop(
                service, tiny_samples, num_requests=24, seed=7
            )
            digests.append(predictions_digest(results))
        assert digests[0] == digests[1]

    def test_different_seed_changes_the_sequence(self, served, tiny_samples):
        digests = []
        for seed in (1, 2):
            service = make_service(served)
            _, results = run_closed_loop(
                service, tiny_samples, num_requests=16, seed=seed
            )
            digests.append(predictions_digest(results))
        assert digests[0] != digests[1]

    def test_rejects_bad_request_count(self, served, tiny_samples):
        with pytest.raises(ValueError):
            run_closed_loop(make_service(served), tiny_samples, num_requests=0)


class TestOpenLoop:
    def test_reports_offered_rate_and_fates(self, served, tiny_samples):
        service = make_service(served, coalesce="deadline")
        try:
            report = run_open_loop(
                service, tiny_samples, rate_rps=200.0, num_requests=20, seed=5
            )
        finally:
            service.close()
        assert report.offered_rps == 200.0
        assert report.requests == 20
        assert (report.completed + report.rejected + report.expired
                + report.errors) == 20
        assert report.completed > 0
        assert math.isfinite(report.p50_ms)
        payload = report.to_dict()
        assert payload["requests"] == 20

    def test_rejects_bad_rate(self, served, tiny_samples):
        service = make_service(served)
        try:
            with pytest.raises(ValueError):
                run_open_loop(service, tiny_samples, rate_rps=0.0, num_requests=4)
        finally:
            service.close()
