"""InferenceEngine: batched serving semantics, queueing, stats."""

import numpy as np
import pytest

from repro.core import RouteNet
from repro.dataset import fit_scaler
from repro.errors import ServingError
from repro.serving import InferenceEngine


@pytest.fixture(scope="module")
def served(tiny_samples):
    model = RouteNet(seed=21)
    scaler = fit_scaler(list(tiny_samples))
    return model, scaler


class TestPredictMany:
    def test_matches_single_sample_predictions(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, batch_size=3)
        results = engine.predict_many(tiny_samples)
        assert len(results) == len(tiny_samples)
        for sample, result in zip(tiny_samples, results):
            single = model.predict(engine.build_input(sample), scaler)
            assert result.pairs == single.pairs
            np.testing.assert_allclose(
                result.delay, single.delay, rtol=0.0, atol=1e-10
            )

    def test_chunks_by_batch_size(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, batch_size=3)
        engine.predict_many(tiny_samples)  # 8 samples -> 3+3+2
        stats = engine.stats()
        assert stats["batches"] == 3
        assert stats["queries"] == len(tiny_samples)
        assert stats["paths"] == sum(s.num_pairs for s in tiny_samples)

    def test_batch_size_override_per_call(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, batch_size=2)
        engine.predict_many(tiny_samples, batch_size=len(tiny_samples))
        assert engine.stats()["batches"] == 1

    def test_empty_rejected(self, served):
        model, scaler = served
        engine = InferenceEngine(model, scaler)
        with pytest.raises(ServingError):
            engine.predict_many([])
        with pytest.raises(ServingError):
            engine.predict_inputs([])

    def test_bad_batch_size_rejected(self, served):
        model, scaler = served
        with pytest.raises(ServingError):
            InferenceEngine(model, scaler, batch_size=0)


class TestSubmitFlush:
    def test_submit_then_flush_preserves_order(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, batch_size=4)
        direct = engine.predict_many(tiny_samples)
        for sample in tiny_samples:
            engine.submit(sample)
        assert engine.pending == len(tiny_samples)
        flushed = engine.flush()
        assert engine.pending == 0
        for a, b in zip(direct, flushed):
            np.testing.assert_array_equal(a.delay, b.delay)

    def test_flush_when_empty_is_noop(self, served):
        model, scaler = served
        engine = InferenceEngine(model, scaler)
        assert engine.flush() == []


class TestStats:
    def test_stage_timings_and_cache_counters(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, batch_size=4)
        engine.predict_many(tiny_samples)
        stats = engine.stats()
        for stage in ("build_s", "pack_s", "forward_s", "decode_s", "total_s"):
            assert stats[stage] >= 0.0
        assert stats["total_s"] >= stats["forward_s"]
        assert stats["cache"]["misses"] == len(tiny_samples)
        engine.predict_many(tiny_samples)  # second pass is all cache hits
        assert engine.stats()["cache"]["hits"] == len(tiny_samples)

    def test_reset_stats(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler)
        engine.predict_many(tiny_samples[:2])
        engine.reset_stats()
        stats = engine.stats()
        assert stats["queries"] == 0
        assert stats["total_s"] == 0.0

    def test_format_stats_renders(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler)
        engine.predict_many(tiny_samples[:2])
        text = InferenceEngine.format_stats(engine.stats())
        assert "forward" in text
        assert "cache" in text
