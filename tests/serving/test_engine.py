"""InferenceEngine: batched serving semantics, queueing, caches, stats."""

import numpy as np
import pytest

from repro.core import RouteNet
from repro.dataset import fit_scaler
from repro.errors import ReproDeprecationWarning, ServingError
from repro.serving import InferenceEngine, ServeConfig


@pytest.fixture(scope="module")
def served(tiny_samples):
    model = RouteNet(seed=21)
    scaler = fit_scaler(list(tiny_samples))
    return model, scaler


class TestPredictMany:
    def test_matches_single_sample_predictions(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, ServeConfig(max_batch=3))
        results = engine.predict_many(tiny_samples)
        assert len(results) == len(tiny_samples)
        for sample, result in zip(tiny_samples, results):
            single = model.predict(engine.build_input(sample), scaler)
            assert result.pairs == single.pairs
            np.testing.assert_allclose(
                result.delay, single.delay, rtol=0.0, atol=1e-10
            )

    def test_chunks_by_batch_size(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, ServeConfig(max_batch=3))
        engine.predict_many(tiny_samples)  # 8 samples -> 3+3+2
        stats = engine.stats()
        assert stats["batches"] == 3
        assert stats["queries"] == len(tiny_samples)
        assert stats["paths"] == sum(s.num_pairs for s in tiny_samples)

    def test_batch_size_override_per_call(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, ServeConfig(max_batch=2))
        engine.predict_many(tiny_samples, batch_size=len(tiny_samples))
        assert engine.stats()["batches"] == 1

    def test_empty_rejected(self, served):
        model, scaler = served
        engine = InferenceEngine(model, scaler)
        with pytest.raises(ServingError):
            engine.predict_many([])
        with pytest.raises(ServingError):
            engine.predict_inputs([])

    def test_bad_batch_size_rejected(self, served):
        model, scaler = served
        with pytest.raises(ServingError):
            InferenceEngine(model, scaler, ServeConfig(max_batch=0))


class TestLegacyKwargs:
    """The pre-ServeConfig keyword constructor stays alive behind a shim."""

    def test_batch_size_kwarg_warns_and_maps(self, served, tiny_samples):
        model, scaler = served
        import repro.serving.engine as engine_mod

        engine_mod._warned_legacy_kwargs = False
        with pytest.warns(ReproDeprecationWarning, match="ServeConfig"):
            engine = InferenceEngine(model, scaler, batch_size=3)
        assert engine.config.max_batch == 3
        engine.predict_many(tiny_samples)
        assert engine.stats()["batches"] == 3

    def test_legacy_warning_is_emitted_once(self, served):
        model, scaler = served
        import repro.serving.engine as engine_mod

        engine_mod._warned_legacy_kwargs = False
        with pytest.warns(ReproDeprecationWarning):
            InferenceEngine(model, scaler, batch_size=2)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            InferenceEngine(model, scaler, batch_size=2)  # silent second time

    def test_config_plus_legacy_kwargs_rejected(self, served):
        model, scaler = served
        with pytest.raises(ServingError):
            InferenceEngine(model, scaler, ServeConfig(), batch_size=2)

    def test_unknown_kwarg_is_a_type_error(self, served):
        model, scaler = served
        with pytest.raises(TypeError):
            InferenceEngine(model, scaler, bogus=1)


class TestSubmitFlush:
    def test_submit_then_flush_preserves_order(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, ServeConfig(max_batch=4))
        direct = engine.predict_many(tiny_samples)
        for sample in tiny_samples:
            engine.submit(sample)
        assert engine.pending == len(tiny_samples)
        flushed = engine.flush()
        assert engine.pending == 0
        for a, b in zip(direct, flushed):
            np.testing.assert_array_equal(a.delay, b.delay)

    def test_flush_when_empty_is_noop(self, served):
        model, scaler = served
        engine = InferenceEngine(model, scaler)
        assert engine.flush() == []

    def test_flush_counts_queries_once(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, ServeConfig(max_batch=4))
        for sample in tiny_samples:
            engine.submit(sample)
        engine.flush()
        assert engine.stats()["queries"] == len(tiny_samples)


class TestPredictionTier:
    def test_repeat_queries_hit_prediction_cache(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, ServeConfig(max_batch=4))
        first = engine.predict_many(tiny_samples)
        second = engine.predict_many(tiny_samples)
        stats = engine.stats()
        assert stats["prediction_cache"]["misses"] == len(tiny_samples)
        assert stats["prediction_cache"]["hits"] == len(tiny_samples)
        # A cached prediction is the same object — no recompute happened.
        for a, b in zip(first, second):
            assert a is b
        # Queries still count every request; batches only the first pass.
        assert stats["queries"] == 2 * len(tiny_samples)
        assert stats["batches"] == 2

    def test_intra_call_duplicates_computed_once(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler, ServeConfig(max_batch=8))
        doubled = list(tiny_samples) + list(tiny_samples)
        results = engine.predict_many(doubled)
        assert engine.stats()["paths"] == sum(s.num_pairs for s in tiny_samples)
        for a, b in zip(results[: len(tiny_samples)], results[len(tiny_samples):]):
            assert a is b

    def test_disabled_tier_falls_through_to_input_cache(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(
            model, scaler, ServeConfig(max_batch=4, prediction_cache_size=0)
        )
        engine.predict_many(tiny_samples)
        engine.predict_many(tiny_samples)
        stats = engine.stats()
        assert stats["prediction_cache"] is None
        assert stats["cache"]["misses"] == len(tiny_samples)
        assert stats["cache"]["hits"] == len(tiny_samples)
        assert stats["batches"] == 4

    def test_cached_results_match_fresh_engine(self, served, tiny_samples):
        model, scaler = served
        warm = InferenceEngine(model, scaler, ServeConfig(max_batch=4))
        warm.predict_many(tiny_samples)
        cached = warm.predict_many(tiny_samples)
        fresh = InferenceEngine(
            model, scaler, ServeConfig(max_batch=4, prediction_cache_size=0)
        ).predict_many(tiny_samples)
        for a, b in zip(cached, fresh):
            np.testing.assert_array_equal(a.delay, b.delay)


class TestStats:
    def test_stage_timings_and_cache_counters(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(
            model, scaler, ServeConfig(max_batch=4, prediction_cache_size=0)
        )
        engine.predict_many(tiny_samples)
        stats = engine.stats()
        for stage in ("build_s", "pack_s", "forward_s", "decode_s", "total_s"):
            assert stats[stage] >= 0.0
        assert stats["total_s"] >= stats["forward_s"]
        assert stats["cache"]["misses"] == len(tiny_samples)
        engine.predict_many(tiny_samples)  # second pass is all cache hits
        assert engine.stats()["cache"]["hits"] == len(tiny_samples)

    def test_reset_stats(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler)
        engine.predict_many(tiny_samples[:2])
        engine.reset_stats()
        stats = engine.stats()
        assert stats["queries"] == 0
        assert stats["total_s"] == 0.0
        # Cache counters are cache-lifetime: reset_stats leaves the tiers
        # (and their entries) intact.
        assert stats["prediction_cache"]["entries"] == 2

    def test_format_stats_renders(self, served, tiny_samples):
        model, scaler = served
        engine = InferenceEngine(model, scaler)
        engine.predict_many(tiny_samples[:2])
        text = InferenceEngine.format_stats(engine.stats())
        assert "forward" in text
        assert "cache" in text
        assert "preds" in text
