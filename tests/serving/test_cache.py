"""Content-addressed input cache: keying, LRU behavior, counters."""

import pytest

from repro.core import FeatureScaler
from repro.dataset import generate_dataset
from repro.serving import InputCache

from ..conftest import FAST_CONFIG


class TestSampleKey:
    def test_equal_content_same_key_across_objects(self, tiny_topology):
        # Two independent generations with the same seed produce equal (but
        # distinct) objects; the id()-keyed cache this replaces would miss —
        # or worse, alias a recycled id to stale tensors.
        a = generate_dataset(tiny_topology, 1, seed=9, config=FAST_CONFIG)[0]
        b = generate_dataset(tiny_topology, 1, seed=9, config=FAST_CONFIG)[0]
        assert a is not b
        cache = InputCache()
        assert cache.sample_key(a) == cache.sample_key(b)

    def test_different_content_different_key(self, tiny_samples):
        cache = InputCache()
        assert cache.sample_key(tiny_samples[0]) != cache.sample_key(tiny_samples[1])

    def test_build_params_change_key(self, tiny_samples):
        cache = InputCache()
        sample = tiny_samples[0]
        base = cache.sample_key(sample, include_load=False)
        assert base != cache.sample_key(sample, include_load=True)
        assert base != cache.sample_key(
            sample, include_load=False, scaler=FeatureScaler.identity()
        )

    def test_scaler_refit_changes_key(self, tiny_samples):
        cache = InputCache()
        sample = tiny_samples[0]
        one = cache.sample_key(sample, scaler=FeatureScaler.identity())
        other = FeatureScaler(
            2.0, 3.0, 4.0,
            FeatureScaler.identity().target_log_mean,
            FeatureScaler.identity().target_log_std,
        )
        assert one != cache.sample_key(sample, scaler=other)

    def test_digest_memo_hits_same_object(self, tiny_samples):
        cache = InputCache()
        first = cache.sample_key(tiny_samples[0])
        assert cache.sample_key(tiny_samples[0]) == first
        assert len(cache._digest_memo) == 1


class TestStorage:
    def test_get_or_build_builds_once(self):
        cache = InputCache()
        calls = []
        for _ in range(3):
            value = cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_lru_eviction_drops_oldest(self):
        cache = InputCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            InputCache(capacity=0)

    def test_clear_empties_everything(self, tiny_samples):
        cache = InputCache()
        cache.put(cache.sample_key(tiny_samples[0]), "x")
        cache.clear()
        assert len(cache) == 0
        assert len(cache._digest_memo) == 0
