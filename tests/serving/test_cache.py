"""Content-addressed input cache: keying, LRU behavior, counters."""

import pytest

from repro.core import FeatureScaler
from repro.dataset import generate_dataset
from repro.serving import InputCache

from ..conftest import FAST_CONFIG


class TestSampleKey:
    def test_equal_content_same_key_across_objects(self, tiny_topology):
        # Two independent generations with the same seed produce equal (but
        # distinct) objects; the id()-keyed cache this replaces would miss —
        # or worse, alias a recycled id to stale tensors.
        a = generate_dataset(tiny_topology, 1, seed=9, config=FAST_CONFIG)[0]
        b = generate_dataset(tiny_topology, 1, seed=9, config=FAST_CONFIG)[0]
        assert a is not b
        cache = InputCache()
        assert cache.sample_key(a) == cache.sample_key(b)

    def test_different_content_different_key(self, tiny_samples):
        cache = InputCache()
        assert cache.sample_key(tiny_samples[0]) != cache.sample_key(tiny_samples[1])

    def test_build_params_change_key(self, tiny_samples):
        cache = InputCache()
        sample = tiny_samples[0]
        base = cache.sample_key(sample, include_load=False)
        assert base != cache.sample_key(sample, include_load=True)
        assert base != cache.sample_key(
            sample, include_load=False, scaler=FeatureScaler.identity()
        )

    def test_scaler_refit_changes_key(self, tiny_samples):
        cache = InputCache()
        sample = tiny_samples[0]
        one = cache.sample_key(sample, scaler=FeatureScaler.identity())
        other = FeatureScaler(
            2.0, 3.0, 4.0,
            FeatureScaler.identity().target_log_mean,
            FeatureScaler.identity().target_log_std,
        )
        assert one != cache.sample_key(sample, scaler=other)

    def test_digest_memo_hits_same_object(self, tiny_samples):
        cache = InputCache()
        first = cache.sample_key(tiny_samples[0])
        assert cache.sample_key(tiny_samples[0]) == first
        assert len(cache._digest_memo) == 1


class TestStorage:
    def test_get_or_build_builds_once(self):
        cache = InputCache()
        calls = []
        for _ in range(3):
            value = cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_lru_eviction_drops_oldest(self):
        cache = InputCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            InputCache(capacity=0)

    def test_clear_empties_everything(self, tiny_samples):
        cache = InputCache()
        cache.put(cache.sample_key(tiny_samples[0]), "x")
        cache.clear()
        assert len(cache) == 0
        assert len(cache._digest_memo) == 0


class TestContentKey:
    def test_key_is_digest_pair(self, tiny_samples):
        cache = InputCache()
        params = InputCache.params_digest(include_load=False)
        key = cache.content_key(tiny_samples[0], params)
        assert key.endswith(f":{params}")
        # sample_key is the same composition
        assert key == cache.sample_key(tiny_samples[0], include_load=False)

    def test_params_digest_expands_to_dict_objects(self):
        one = InputCache.params_digest(scaler=FeatureScaler.identity())
        same = InputCache.params_digest(scaler=FeatureScaler.identity())
        other = InputCache.params_digest(
            scaler=FeatureScaler(
                2.0, 3.0, 4.0,
                FeatureScaler.identity().target_log_mean,
                FeatureScaler.identity().target_log_std,
            )
        )
        assert one == same
        assert one != other


class TestPredictionCache:
    def test_get_put_and_counters(self):
        from repro.serving import PredictionCache

        cache = PredictionCache(4)
        assert cache.get("k") is None
        cache.put("k", "result")
        assert cache.get("k") == "result"
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 1, "evictions": 0, "entries": 1}

    def test_lru_eviction(self):
        from repro.serving import PredictionCache

        cache = PredictionCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        from repro.serving import PredictionCache

        with pytest.raises(ValueError):
            PredictionCache(0)

    def test_clear(self):
        from repro.serving import PredictionCache

        cache = PredictionCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_thread_safety_under_contention(self):
        import threading

        from repro.serving import PredictionCache

        cache = PredictionCache(16)
        errors = []

        def worker(tag):
            try:
                for i in range(200):
                    cache.put(f"{tag}-{i % 20}", i)
                    cache.get(f"{tag}-{(i + 7) % 20}")
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["entries"] <= 16
