"""Tests for seeding helpers and the error hierarchy."""

import numpy as np
import pytest

import repro
from repro.errors import (
    ReproError,
    TopologyError,
    RoutingError,
    TrafficError,
    SimulationError,
    DatasetError,
    ModelError,
)
from repro.random import make_rng, split_rng, DEFAULT_SEED


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None)
        b = make_rng(DEFAULT_SEED)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_int_seed_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng


class TestSplitRng:
    def test_children_independent_and_deterministic(self):
        kids_a = split_rng(make_rng(1), 3)
        kids_b = split_rng(make_rng(1), 3)
        for a, b in zip(kids_a, kids_b):
            assert a.random() == b.random()

    def test_children_differ_from_each_other(self):
        kids = split_rng(make_rng(2), 4)
        values = {k.integers(0, 2**62) for k in kids}
        assert len(values) == 4

    def test_zero_children_raises(self):
        with pytest.raises(ValueError):
            split_rng(make_rng(0), 0)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [TopologyError, RoutingError, TrafficError, SimulationError, DatasetError, ModelError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise TopologyError("boom")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
