"""What-if planning studies driven by RouteNet predictions.

The demo's "network planning" examples answer counterfactual questions
without re-simulating: what happens to path delays if traffic grows 20%, or
if a backbone link fails and flows reroute?  Because a RouteNet forward pass
costs milliseconds (vs. seconds-to-minutes of packet-level simulation),
these sweeps become interactive — the paper's core cost argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FeatureScaler, RouteNet, build_model_input
from ..errors import TopologyError
from ..routing import RoutingScheme
from ..topology import Topology
from ..traffic import TrafficMatrix

__all__ = ["WhatIfResult", "traffic_scaling_whatif", "link_failure_whatif"]


@dataclass(frozen=True)
class WhatIfResult:
    """Predicted per-pair delays for one counterfactual scenario."""

    label: str
    pairs: tuple[tuple[int, int], ...]
    delay: np.ndarray

    def mean_delay(self) -> float:
        return float(self.delay.mean())

    def worst_pair(self) -> tuple[tuple[int, int], float]:
        idx = int(np.argmax(self.delay))
        return self.pairs[idx], float(self.delay[idx])


def _predict(
    model: RouteNet,
    scaler: FeatureScaler,
    topology: Topology,
    routing: RoutingScheme,
    traffic: TrafficMatrix,
    label: str,
    include_load: bool = False,
) -> WhatIfResult:
    inputs = build_model_input(
        topology, routing, traffic, scaler=scaler, include_load=include_load
    )
    pred = model.predict(inputs, scaler)
    return WhatIfResult(label=label, pairs=inputs.pairs, delay=pred.delay)


def traffic_scaling_whatif(
    model: RouteNet,
    scaler: FeatureScaler,
    topology: Topology,
    routing: RoutingScheme,
    traffic: TrafficMatrix,
    factors: tuple[float, ...] = (0.8, 1.0, 1.2, 1.5),
    include_load: bool = False,
) -> list[WhatIfResult]:
    """Predicted delays under uniformly scaled traffic.

    Returns one :class:`WhatIfResult` per factor, in the given order.
    """
    if not factors:
        raise ValueError("no scaling factors given")
    return [
        _predict(
            model,
            scaler,
            topology,
            routing,
            traffic.scaled(f),
            label=f"traffic x{f:.2f}",
            include_load=include_load,
        )
        for f in factors
    ]


def link_failure_whatif(
    model: RouteNet,
    scaler: FeatureScaler,
    topology: Topology,
    traffic: TrafficMatrix,
    failed_edge: tuple[int, int],
    include_load: bool = False,
) -> tuple[WhatIfResult, WhatIfResult]:
    """Predicted delays before and after one undirected edge fails.

    Both scenarios use shortest-path routing (flows reroute after the
    failure).  The surviving topology must remain connected.

    Returns:
        ``(before, after)`` what-if results.  Pairs present in both results
        can be compared element-wise via their ``pairs`` tuples.

    Raises:
        TopologyError: If removing the edge disconnects the network.
    """
    u, v = failed_edge
    before_routing = RoutingScheme.shortest_path(topology)
    before = _predict(
        model, scaler, topology, before_routing, traffic,
        label=f"baseline", include_load=include_load,
    )

    degraded = topology.without_edge(u, v)
    if not degraded.is_connected():
        raise TopologyError(
            f"removing edge {u}<->{v} disconnects {topology.name}"
        )
    after_routing = RoutingScheme.shortest_path(degraded)
    after = _predict(
        model, scaler, degraded, after_routing, traffic,
        label=f"fail {u}<->{v}", include_load=include_load,
    )
    return before, after
