"""Network visibility: the demo's interactive inspection features as a library.

Section 3 of the paper demonstrates "examples leveraging the predictions of
RouteNet for network visibility and planning", including "visual figures
representing the delay on end-to-end paths and more elaborated statistics
such as the Top-N paths with more delay".  This module provides those
computations over a trained model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FeatureScaler, RouteNet, build_model_input
from ..evaluation.reports import RankedPath, top_n_paths
from ..routing import RoutingScheme
from ..topology import Topology
from ..traffic import TrafficMatrix, link_loads

__all__ = ["NetworkView", "LinkUtilizationRow", "format_link_report"]


@dataclass(frozen=True)
class LinkUtilizationRow:
    """Offered utilization of one directed link."""

    link_id: int
    src: int
    dst: int
    utilization: float
    load_bits: float
    capacity: float


class NetworkView:
    """Model-driven visibility over one network scenario.

    Binds a trained RouteNet (+ its scaler) to a concrete
    (topology, routing, traffic) scenario, then answers the demo notebook's
    questions: per-path delay, Top-N worst paths, per-link hot spots.
    """

    def __init__(
        self,
        model: RouteNet,
        scaler: FeatureScaler,
        topology: Topology,
        routing: RoutingScheme,
        traffic: TrafficMatrix,
        include_load: bool = False,
    ) -> None:
        self.model = model
        self.scaler = scaler
        self.topology = topology
        self.routing = routing
        self.traffic = traffic
        self._inputs = build_model_input(
            topology, routing, traffic, scaler=scaler, include_load=include_load
        )
        self._predictions = model.predict(self._inputs, scaler)

    @property
    def pairs(self) -> tuple[tuple[int, int], ...]:
        return self._inputs.pairs

    def path_delay(self, src: int, dst: int) -> float:
        """Predicted mean per-packet delay for one pair (seconds)."""
        try:
            idx = self._inputs.pairs.index((src, dst))
        except ValueError:
            raise KeyError(f"pair ({src}, {dst}) carries no traffic") from None
        return float(self._predictions.delay[idx])

    def path_jitter(self, src: int, dst: int) -> float:
        """Predicted delay variance for one pair (seconds^2)."""
        if self._predictions.jitter is None:
            raise KeyError("model was trained without a jitter head")
        idx = self._inputs.pairs.index((src, dst))
        return float(self._predictions.jitter[idx])

    def delays(self) -> np.ndarray:
        """Predicted delay per pair, ordered like :attr:`pairs`."""
        return self._predictions.delay.copy()

    def top_delay_paths(self, n: int = 10) -> list[RankedPath]:
        """The demo's headline view: Top-N paths with most predicted delay."""
        return top_n_paths(self._inputs.pairs, self._predictions.delay, n=n)

    def mean_network_delay(self) -> float:
        """Traffic-weighted average of predicted path delays."""
        weights = np.array([self.traffic.rate(s, d) for s, d in self._inputs.pairs])
        total = weights.sum()
        if total == 0:
            return float(self._predictions.delay.mean())
        return float((self._predictions.delay * weights).sum() / total)

    def link_utilization(self) -> list[LinkUtilizationRow]:
        """Offered per-link utilization, most loaded first (analytic)."""
        loads = link_loads(self.topology, self.routing, self.traffic)
        rows = [
            LinkUtilizationRow(
                link_id=link.id,
                src=link.src,
                dst=link.dst,
                utilization=float(loads[link.id] / link.capacity),
                load_bits=float(loads[link.id]),
                capacity=link.capacity,
            )
            for link in self.topology.links
        ]
        rows.sort(key=lambda r: -r.utilization)
        return rows


def format_link_report(rows: list[LinkUtilizationRow], n: int = 10) -> str:
    """Render the busiest links as a table."""
    if not rows:
        raise ValueError("no link rows to format")
    header = f"{'link':>6s}  {'hop':>9s}  {'util':>7s}  {'load(b/s)':>12s}  {'cap(b/s)':>12s}"
    lines = [header, "-" * len(header)]
    for row in rows[:n]:
        lines.append(
            f"{row.link_id:>6d}  {row.src:>4d}->{row.dst:<4d} {row.utilization:>7.1%}"
            f"  {row.load_bits:>12.0f}  {row.capacity:>12.0f}"
        )
    return "\n".join(lines)
