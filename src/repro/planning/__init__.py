"""Network visibility and planning features (demo section 3)."""

from .visibility import NetworkView, LinkUtilizationRow, format_link_report
from .what_if import WhatIfResult, traffic_scaling_whatif, link_failure_whatif
from .capacity import (
    UpgradeOption,
    capacity_upgrade_whatif,
    rank_upgrade_candidates,
)
from .optimization import (
    CandidateScore,
    RoutingOptimizationResult,
    generate_candidates,
    optimize_routing,
    OBJECTIVES,
)

__all__ = [
    "NetworkView",
    "LinkUtilizationRow",
    "format_link_report",
    "WhatIfResult",
    "traffic_scaling_whatif",
    "link_failure_whatif",
    "UpgradeOption",
    "capacity_upgrade_whatif",
    "rank_upgrade_candidates",
    "CandidateScore",
    "RoutingOptimizationResult",
    "generate_candidates",
    "optimize_routing",
    "OBJECTIVES",
]
