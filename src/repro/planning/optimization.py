"""Model-driven routing optimization.

The paper's introduction motivates network models as the enabling piece of
optimization: "network optimization tools ... can only optimize what they
can model."  This module closes that loop: generate candidate routing
schemes, score each with a trained RouteNet in milliseconds, and pick the
one minimizing a delay objective — the workflow that would need a full
packet-level simulation per candidate otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FeatureScaler, RouteNet, build_model_input
from ..errors import RoutingError
from ..random import make_rng, split_rng
from ..routing import RoutingScheme
from ..serving import InferenceEngine, ServeConfig
from ..topology import Topology
from ..traffic import TrafficMatrix

__all__ = [
    "CandidateScore",
    "RoutingOptimizationResult",
    "generate_candidates",
    "optimize_routing",
    "OBJECTIVES",
]

#: Supported objectives: map per-path predicted delays -> scalar cost.
OBJECTIVES = {
    "mean": lambda delays, weights: float(np.average(delays, weights=weights)),
    "worst": lambda delays, _w: float(delays.max()),
    "p90": lambda delays, _w: float(np.quantile(delays, 0.9)),
}


@dataclass(frozen=True)
class CandidateScore:
    """Predicted cost of one candidate routing scheme."""

    index: int
    name: str
    score: float
    mean_delay: float
    worst_delay: float


@dataclass(frozen=True)
class RoutingOptimizationResult:
    """Outcome of a routing search."""

    objective: str
    best: CandidateScore
    scores: list[CandidateScore]
    candidates: list[RoutingScheme]

    @property
    def best_routing(self) -> RoutingScheme:
        return self.candidates[self.best.index]


def generate_candidates(
    topology: Topology,
    count: int,
    seed: int | np.random.Generator | None = None,
) -> list[RoutingScheme]:
    """Candidate pool: shortest-path plus ``count - 1`` randomized schemes.

    Alternates random-weight and random-k-shortest-path draws so the pool
    mixes globally consistent and per-pair-diverse routings.
    """
    if count < 1:
        raise RoutingError(f"need at least one candidate, got {count}")
    rng = make_rng(seed)
    candidates: list[RoutingScheme] = [RoutingScheme.shortest_path(topology)]
    child_rngs = split_rng(rng, max(0, count - 1))
    for i, child in enumerate(child_rngs):
        if i % 2 == 0:
            candidates.append(RoutingScheme.random_weighted(topology, seed=child))
        else:
            candidates.append(RoutingScheme.random_ksp(topology, k=3, seed=child))
    return candidates[:count]


def optimize_routing(
    model: RouteNet,
    scaler: FeatureScaler,
    topology: Topology,
    traffic: TrafficMatrix,
    candidates: list[RoutingScheme] | None = None,
    num_candidates: int = 8,
    objective: str = "mean",
    seed: int | np.random.Generator | None = None,
) -> RoutingOptimizationResult:
    """Pick the candidate routing with the lowest predicted delay objective.

    Args:
        candidates: Explicit candidate pool; generated when omitted.
        num_candidates: Pool size when generating.
        objective: ``"mean"`` (traffic-weighted), ``"worst"`` or ``"p90"``.

    Returns:
        Scores for every candidate plus the winner, sorted by score.

    Raises:
        RoutingError: On an unknown objective or empty candidate pool.
    """
    if objective not in OBJECTIVES:
        raise RoutingError(
            f"unknown objective {objective!r}; options: {sorted(OBJECTIVES)}"
        )
    if candidates is None:
        candidates = generate_candidates(topology, num_candidates, seed=seed)
    if not candidates:
        raise RoutingError("empty candidate pool")

    cost_fn = OBJECTIVES[objective]
    # All candidates are scored by ONE fused forward pass instead of a
    # per-candidate inference loop — the search cost is dominated by the
    # model, so batching directly accelerates the optimization.
    engine = InferenceEngine(
        model, scaler, ServeConfig(max_batch=max(len(candidates), 1))
    )
    inputs_list = [
        build_model_input(topology, routing, traffic, scaler=scaler)
        for routing in candidates
    ]
    predictions = engine.predict_inputs(inputs_list)
    scores = []
    for index, (routing, inputs, pred) in enumerate(
        zip(candidates, inputs_list, predictions)
    ):
        delays = pred.delay
        weights = np.array([traffic.rate(s, d) for s, d in inputs.pairs])
        if weights.sum() == 0:
            weights = None
        scores.append(
            CandidateScore(
                index=index,
                name=f"{routing.name}#{index}",
                score=cost_fn(delays, weights),
                mean_delay=float(np.average(delays, weights=weights)),
                worst_delay=float(delays.max()),
            )
        )
    ranked = sorted(scores, key=lambda s: s.score)
    return RoutingOptimizationResult(
        objective=objective, best=ranked[0], scores=ranked, candidates=candidates
    )
