"""Capacity-planning what-ifs: where should the next upgrade go?

Uses RouteNet to predict the network-wide delay effect of upgrading each
candidate link, ranking upgrades by predicted benefit — the "network
planning" workflow the demo's section 3 gestures at, executed at model
(millisecond) rather than simulator (minute) cost per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FeatureScaler, RouteNet, build_model_input
from ..routing import RoutingScheme
from ..topology import Topology
from ..traffic import TrafficMatrix, link_loads

__all__ = ["UpgradeOption", "capacity_upgrade_whatif", "rank_upgrade_candidates"]


@dataclass(frozen=True)
class UpgradeOption:
    """Predicted effect of one candidate upgrade."""

    edge: tuple[int, int]
    utilization_before: float
    mean_delay_before: float
    mean_delay_after: float

    @property
    def improvement(self) -> float:
        """Relative mean-delay reduction (positive = better)."""
        if self.mean_delay_before == 0:
            return 0.0
        return 1.0 - self.mean_delay_after / self.mean_delay_before


def _mean_delay(
    model: RouteNet,
    scaler: FeatureScaler,
    topology: Topology,
    routing: RoutingScheme,
    traffic: TrafficMatrix,
) -> float:
    inputs = build_model_input(topology, routing, traffic, scaler=scaler)
    delays = model.predict(inputs, scaler).delay
    weights = np.array([traffic.rate(s, d) for s, d in inputs.pairs])
    if weights.sum() == 0:
        return float(delays.mean())
    return float((delays * weights).sum() / weights.sum())


def capacity_upgrade_whatif(
    model: RouteNet,
    scaler: FeatureScaler,
    topology: Topology,
    routing: RoutingScheme,
    traffic: TrafficMatrix,
    edge: tuple[int, int],
    factor: float = 2.0,
) -> UpgradeOption:
    """Predict mean delay before/after multiplying one edge's capacity.

    Routing is held fixed (paths stay valid: :meth:`Topology.with_capacity`
    preserves link ids), isolating the pure capacity effect.

    Raises:
        TopologyError: If the edge does not exist.
        ValueError: For a non-positive factor.
    """
    if factor <= 0:
        raise ValueError(f"capacity factor must be positive, got {factor}")
    u, v = edge
    current = topology.links[topology.link_id(u, v)].capacity
    loads = link_loads(topology, routing, traffic)
    utilization = float(loads[topology.link_id(u, v)] / current)

    before = _mean_delay(model, scaler, topology, routing, traffic)
    upgraded = topology.with_capacity(u, v, current * factor)
    after = _mean_delay(model, scaler, upgraded, routing, traffic)
    return UpgradeOption(
        edge=(u, v),
        utilization_before=utilization,
        mean_delay_before=before,
        mean_delay_after=after,
    )


def rank_upgrade_candidates(
    model: RouteNet,
    scaler: FeatureScaler,
    topology: Topology,
    routing: RoutingScheme,
    traffic: TrafficMatrix,
    factor: float = 2.0,
    top: int = 5,
) -> list[UpgradeOption]:
    """Evaluate upgrading each of the ``top`` most-utilized edges.

    Returns options sorted by predicted improvement, best first.
    """
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    loads = link_loads(topology, routing, traffic)
    utilization = loads / topology.capacities()
    # Collapse directed links to undirected edges keyed by (min, max),
    # scored by their busier direction.
    edge_util: dict[tuple[int, int], float] = {}
    for link in topology.links:
        key = (min(link.src, link.dst), max(link.src, link.dst))
        edge_util[key] = max(edge_util.get(key, 0.0), float(utilization[link.id]))
    candidates = sorted(edge_util, key=lambda e: -edge_util[e])[:top]

    options = [
        capacity_upgrade_whatif(
            model, scaler, topology, routing, traffic, edge, factor=factor
        )
        for edge in candidates
    ]
    options.sort(key=lambda o: -o.improvement)
    return options
