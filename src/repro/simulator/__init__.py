"""Packet-level discrete-event network simulator (OMNeT++ substitute)."""

from .events import EventQueue
from .packet import Packet
from .queues import LinkQueue
from .stats import FlowAccumulator, FlowStats, LinkStats, SimulationResult
from .network import SimulationConfig, NetworkSimulator, simulate

__all__ = [
    "EventQueue",
    "Packet",
    "LinkQueue",
    "FlowAccumulator",
    "FlowStats",
    "LinkStats",
    "SimulationResult",
    "SimulationConfig",
    "NetworkSimulator",
    "simulate",
]
