"""Packet representation for the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass

from ..units import Bits, Seconds

__all__ = ["Packet"]


@dataclass(slots=True)
class Packet:
    """One packet in flight.

    Attributes:
        flow: Index of the (src, dst) flow this packet belongs to.
        size_bits: Packet length in bits (drives transmission time).
        created_at: Simulation time the packet entered the network.
        route: Link-id sequence the packet must traverse.
        hop: Index into ``route`` of the link currently being traversed.
        record: Whether this packet contributes to statistics (False during
            the warm-up transient).
        priority: Scheduling class, 0 = highest (used when links run
            multiple priority bands).
    """

    flow: int
    size_bits: Bits
    created_at: Seconds
    route: tuple[int, ...]
    hop: int = 0
    record: bool = True
    priority: int = 0

    @property
    def remaining_hops(self) -> int:
        return len(self.route) - self.hop

    def current_link(self) -> int:
        """Link id the packet is queued on / transmitted over."""
        return self.route[self.hop]

    def advance(self) -> bool:
        """Move to the next hop; returns True if the packet is delivered."""
        self.hop += 1
        return self.hop >= len(self.route)
