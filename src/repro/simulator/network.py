"""The packet-level network simulator.

This is the library's substitute for the paper's custom OMNeT++ simulator:
a discrete-event simulation of store-and-forward networks with one FIFO
output queue per directed link, finite buffers (tail drop), configurable
arrival processes and packet-size distributions, and per-flow delay/jitter
statistics after a warm-up transient.

Event types (encoded as small tuples for speed):

* ``("gen", flow)`` — the flow's source emits its next packet;
* ``("arr", link_id, packet)`` — a packet reaches the tail of a link queue;
* ``("dep", link_id)`` — the link finishes serializing its head packet.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass


from ..errors import SimulationError
from ..random import make_rng, split_rng
from ..routing import RoutingScheme
from ..topology import Topology
from ..traffic import (
    ConstantPacketSize,
    ExponentialPacketSize,
    TrafficMatrix,
    make_arrivals,
    DEFAULT_MEAN_PACKET_BITS,
)
from ..units import BitsPerPacket, Seconds
from .events import EventQueue
from .packet import Packet
from .queues import LinkQueue
from .stats import FlowAccumulator, FlowStats, LinkStats, SimulationResult

__all__ = ["SimulationConfig", "NetworkSimulator", "simulate"]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of a simulation run.

    Attributes:
        duration: Seconds of simulated packet generation.
        warmup: Packets created before this time are not recorded
            (transient removal).
        buffer_packets: FIFO buffer size per link, in packets.
        mean_packet_bits: Average packet length in bits.
        packet_size: ``"exponential"`` (dataset default) or ``"constant"``.
        arrivals: ``"poisson"`` (dataset default), ``"onoff"`` or
            ``"deterministic"``.
        priority_bands: Strict-priority scheduling bands per link (1 = plain
            FIFO; >1 enables the QoS extension).
        delay_quantiles: Collect per-flow delay percentiles (p50/p90/p99)
            via reservoir sampling (small extra cost per delivery).
        quantile_reservoir: Reservoir slots per flow when enabled.
        seed: Master seed; per-flow streams are split deterministically.
    """

    duration: Seconds = 20.0
    warmup: Seconds = 2.0
    buffer_packets: int = 64
    mean_packet_bits: BitsPerPacket = DEFAULT_MEAN_PACKET_BITS
    packet_size: str = "exponential"
    arrivals: str = "poisson"
    priority_bands: int = 1
    delay_quantiles: bool = False
    quantile_reservoir: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise SimulationError(f"duration must be positive, got {self.duration}")
        if not 0 <= self.warmup < self.duration:
            raise SimulationError(
                f"warmup must lie in [0, duration), got {self.warmup}"
            )
        if self.packet_size not in ("exponential", "constant"):
            raise SimulationError(f"unknown packet size model {self.packet_size!r}")
        if self.priority_bands < 1:
            raise SimulationError(
                f"priority_bands must be >= 1, got {self.priority_bands}"
            )
        if self.quantile_reservoir < 1:
            raise SimulationError(
                f"quantile_reservoir must be >= 1, got {self.quantile_reservoir}"
            )


class NetworkSimulator:
    """Single-run simulator binding a topology, routing and traffic matrix."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingScheme,
        traffic: TrafficMatrix,
        config: SimulationConfig | None = None,
        flow_priorities: dict[tuple[int, int], int] | None = None,
    ) -> None:
        if routing.topology is not topology and routing.topology != topology:
            raise SimulationError("routing scheme was built for a different topology")
        if traffic.num_nodes != topology.num_nodes:
            raise SimulationError(
                f"traffic matrix is {traffic.num_nodes}-node but topology has "
                f"{topology.num_nodes}"
            )
        self.topology = topology
        self.routing = routing
        self.traffic = traffic
        self.config = config or SimulationConfig()
        self.flow_priorities = flow_priorities or {}
        bands = self.config.priority_bands
        for pair, priority in self.flow_priorities.items():
            if not 0 <= priority < bands:
                raise SimulationError(
                    f"flow {pair} has priority {priority}, outside [0, {bands})"
                )

    def run(self) -> SimulationResult:
        """Execute the simulation and return aggregated statistics."""
        cfg = self.config
        # Wall time feeds the wall_time_seconds metric only; no event or
        # sampling decision depends on it.
        start_wall = _time.perf_counter()  # repro-lint: disable=RP204
        master = make_rng(cfg.seed)

        # One flow per pair with positive demand; routes as link-id tuples.
        flows: list[tuple[int, int]] = [
            pair for pair in self.traffic.nonzero_pairs() if pair in self.routing
        ]
        if not flows:
            raise SimulationError("traffic matrix has no routed positive-demand pair")
        routes = [self.routing.link_path(s, d) for s, d in flows]
        rngs = split_rng(master, 2 * len(flows))

        arrival_iters = []
        sizers = []
        for i, (s, d) in enumerate(flows):
            rate_pps = self.traffic.rate(s, d) / cfg.mean_packet_bits
            process = make_arrivals(cfg.arrivals, rate_pps, seed=rngs[2 * i])
            arrival_iters.append(process.interarrivals())
            if cfg.packet_size == "exponential":
                sizers.append(ExponentialPacketSize(cfg.mean_packet_bits, seed=rngs[2 * i + 1]))
            else:
                sizers.append(ConstantPacketSize(cfg.mean_packet_bits))

        queues = [
            LinkQueue(
                link,
                buffer_packets=cfg.buffer_packets,
                priority_bands=cfg.priority_bands,
                # Busy time is measured over the generation window only, so
                # drain-phase service cannot push utilization past 1.0.
                horizon=cfg.duration,
            )
            for link in self.topology.links
        ]
        priorities = [self.flow_priorities.get(pair, 0) for pair in flows]
        reservoir = cfg.quantile_reservoir if cfg.delay_quantiles else 0
        stat_rngs = (
            split_rng(make_rng(cfg.seed + 1), len(flows)) if reservoir else None
        )
        accumulators = [
            FlowAccumulator(
                reservoir_size=reservoir,
                rng=stat_rngs[i] if stat_rngs else None,
            )
            for i in range(len(flows))
        ]
        # Two sets of per-flow counters with different semantics:
        # *_total covers every packet (warmup included) and sums exactly to
        # the run-level conservation counters; ``flow_drops`` counts only
        # recorded (post-warmup) packets and feeds the loss-rate labels.
        flow_drops = [0] * len(flows)
        flow_drops_total = [0] * len(flows)
        flow_delivered_total = [0] * len(flows)

        events = EventQueue()
        for i, it in enumerate(arrival_iters):
            events.push(next(it), ("gen", i))

        generated = delivered = dropped = 0
        processed = 0
        links = self.topology.links

        while events:
            now, event = events.pop()
            processed += 1
            kind = event[0]

            if kind == "gen":
                flow = event[1]
                if now > cfg.duration:
                    continue  # generation window closed; do not reschedule
                packet = Packet(
                    flow=flow,
                    size_bits=sizers[flow].sample(),
                    created_at=now,
                    route=routes[flow],
                    record=now >= cfg.warmup,
                    priority=priorities[flow],
                )
                generated += 1
                events.push(now, ("arr", packet.current_link(), packet))
                events.push(now + next(arrival_iters[flow]), ("gen", flow))

            elif kind == "arr":
                link_id, packet = event[1], event[2]
                queue = queues[link_id]
                if queue.try_enqueue(packet):
                    if queue.is_idle:
                        _, done_at = queue.start_service(now)
                        events.push(done_at, ("dep", link_id))
                else:
                    dropped += 1
                    flow_drops_total[packet.flow] += 1
                    if packet.record:
                        flow_drops[packet.flow] += 1

            else:  # "dep"
                link_id = event[1]
                queue = queues[link_id]
                packet = queue.finish_service(now)
                arrive_at = now + links[link_id].propagation_delay
                if packet.advance():
                    delivered += 1
                    flow_delivered_total[packet.flow] += 1
                    if packet.record:
                        accumulators[packet.flow].add(arrive_at - packet.created_at)
                else:
                    events.push(arrive_at, ("arr", packet.current_link(), packet))
                if queue.has_waiting():
                    _, done_at = queue.start_service(now)
                    events.push(done_at, ("dep", link_id))

        in_flight = generated - delivered - dropped
        if in_flight != 0:
            raise SimulationError(
                f"conservation violated: generated={generated}, "
                f"delivered={delivered}, dropped={dropped}"
            )

        flow_stats = {
            (s, d): FlowStats(
                src=s,
                dst=d,
                delivered=acc.count,
                dropped=flow_drops[i],
                delivered_total=flow_delivered_total[i],
                dropped_total=flow_drops_total[i],
                mean_delay=acc.mean,
                jitter=acc.variance,
                min_delay=acc.min_delay if acc.count else float("nan"),
                max_delay=acc.max_delay if acc.count else float("nan"),
                p50=acc.quantile(0.50),
                p90=acc.quantile(0.90),
                p99=acc.quantile(0.99),
            )
            for i, ((s, d), acc) in enumerate(zip(flows, accumulators))
        }
        link_stats = [
            LinkStats(
                link_id=q.link.id,
                utilization=q.utilization(cfg.duration),
                packets_sent=q.packets_sent,
                packets_dropped=q.packets_dropped,
                bits_sent=q.bits_sent,
            )
            for q in queues
        ]
        return SimulationResult(
            duration=cfg.duration,
            warmup=cfg.warmup,
            flows=flow_stats,
            links=link_stats,
            generated=generated,
            delivered=delivered,
            dropped=dropped,
            in_flight=0,
            events_processed=processed,
            wall_time_seconds=_time.perf_counter() - start_wall,  # repro-lint: disable=RP204
        )


def simulate(
    topology: Topology,
    routing: RoutingScheme,
    traffic: TrafficMatrix,
    config: SimulationConfig | None = None,
    flow_priorities: dict[tuple[int, int], int] | None = None,
) -> SimulationResult:
    """Convenience one-shot wrapper around :class:`NetworkSimulator`."""
    return NetworkSimulator(
        topology, routing, traffic, config, flow_priorities=flow_priorities
    ).run()
