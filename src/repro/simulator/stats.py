"""Statistics collection for the packet-level simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import Bits, Seconds

from ..random import make_rng

__all__ = ["FlowAccumulator", "FlowStats", "LinkStats", "SimulationResult"]


class FlowAccumulator:
    """Streaming statistics for one flow's delays.

    Mean/variance use Welford's algorithm; optional quantiles use reservoir
    sampling (Vitter's algorithm R) with ``reservoir_size`` slots, giving
    unbiased percentile estimates without storing every delay.
    """

    __slots__ = (
        "count", "_mean", "_m2", "min_delay", "max_delay",
        "_reservoir", "_reservoir_size", "_rng",
    )

    def __init__(
        self,
        reservoir_size: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min_delay = np.inf
        self.max_delay = 0.0
        self._reservoir_size = reservoir_size
        self._reservoir: list[float] = []
        self._rng = make_rng(0) if rng is None else rng

    def add(self, delay: Seconds) -> None:
        self.count += 1
        diff = delay - self._mean
        self._mean += diff / self.count
        self._m2 += diff * (delay - self._mean)
        if delay < self.min_delay:
            self.min_delay = delay
        if delay > self.max_delay:
            self.max_delay = delay
        if self._reservoir_size > 0:
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(delay)
            else:
                slot = int(self._rng.integers(0, self.count))
                if slot < self._reservoir_size:
                    self._reservoir[slot] = delay

    def quantile(self, q: float) -> float:
        """Reservoir-estimated delay quantile; NaN without a reservoir."""
        if not self._reservoir:
            return float("nan")
        return float(np.quantile(self._reservoir, q))

    @property
    def mean(self) -> float:
        return self._mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Population variance of observed delays (the paper's 'jitter')."""
        return self._m2 / self.count if self.count else float("nan")


@dataclass(frozen=True)
class FlowStats:
    """Final per-flow delivery statistics.

    Warmup semantics: ``delivered`` and ``dropped`` count *recorded*
    packets only — those created at or after the warmup cutoff — and feed
    the delay/jitter/loss labels.  ``delivered_total`` and ``dropped_total``
    count every packet of the flow including the warmup transient; they sum
    exactly to the run-level :class:`SimulationResult` conservation
    counters (``Σ delivered_total == result.delivered``,
    ``Σ dropped_total == result.dropped``).

    ``p50/p90/p99`` are reservoir estimates, NaN unless the simulation ran
    with ``delay_quantiles=True``.
    """

    src: int
    dst: int
    delivered: int
    dropped: int
    mean_delay: Seconds
    jitter: float  # delay variance
    min_delay: Seconds
    max_delay: Seconds
    delivered_total: int = 0
    dropped_total: int = 0
    p50: float = float("nan")
    p90: float = float("nan")
    p99: float = float("nan")

    @property
    def loss_rate(self) -> float:
        """Measurement-window (post-warmup) loss fraction of this flow."""
        total = self.delivered + self.dropped
        return self.dropped / total if total else 0.0


@dataclass(frozen=True)
class LinkStats:
    """Final per-link counters."""

    link_id: int
    utilization: float
    packets_sent: int
    packets_dropped: int
    bits_sent: Bits


@dataclass(frozen=True)
class SimulationResult:
    """Everything a simulation run reports.

    ``flows`` maps (src, dst) to :class:`FlowStats` for every pair with
    positive demand; ``links`` is indexed by link id.  The global counters
    cover *every* generated packet, warmup included, and satisfy both
    ``generated == delivered + dropped + in_flight`` (checked by the
    simulator before returning) and
    ``delivered == Σ flows[p].delivered_total`` /
    ``dropped == Σ flows[p].dropped_total``.  Per-flow ``delivered`` /
    ``dropped`` (without ``_total``) are restricted to the post-warmup
    measurement window — see :class:`FlowStats`.
    """

    duration: Seconds
    warmup: Seconds
    flows: dict[tuple[int, int], FlowStats]
    links: list[LinkStats]
    generated: int
    delivered: int
    dropped: int
    in_flight: int
    events_processed: int = 0
    wall_time_seconds: Seconds = 0.0

    def delay_matrix(self, num_nodes: int) -> np.ndarray:
        """Dense (n, n) matrix of mean delays; NaN where no flow/observation."""
        out = np.full((num_nodes, num_nodes), np.nan)
        for (s, d), stats in self.flows.items():
            out[s, d] = stats.mean_delay
        return out

    def mean_delay_vector(self, pairs: list[tuple[int, int]]) -> np.ndarray:
        """Mean delay per pair, ordered like ``pairs`` (NaN when missing)."""
        return np.array(
            [
                self.flows[p].mean_delay if p in self.flows else np.nan
                for p in pairs
            ]
        )

    @property
    def overall_loss_rate(self) -> float:
        total = self.delivered + self.dropped
        return self.dropped / total if total else 0.0
