"""Event queue for the discrete-event simulator.

A thin wrapper over ``heapq`` that (i) breaks simultaneous-event ties with a
monotonic sequence number so execution order is deterministic, and (ii)
refuses events scheduled in the past, which turns subtle causality bugs into
immediate errors.
"""

from __future__ import annotations

import heapq
from typing import Any

from ..units import Seconds

from ..errors import SimulationError

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Timestamp of the most recently popped event."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: Seconds, payload: Any) -> None:
        """Schedule ``payload`` at ``time`` (must not precede current time)."""
        if time < self._now:
            raise SimulationError(
                f"event scheduled at t={time} before current time t={self._now}"
            )
        heapq.heappush(self._heap, (time, self._counter, payload))
        self._counter += 1

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time, _, payload = heapq.heappop(self._heap)
        self._now = time
        return time, payload

    def peek_time(self) -> float:
        """Timestamp of the next event without removing it."""
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0][0]
