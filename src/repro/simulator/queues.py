"""Per-link FIFO output queues with finite buffers."""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError
from ..topology import Link
from ..units import Seconds
from .packet import Packet

__all__ = ["LinkQueue"]


class LinkQueue:
    """Output queue + transmitter for one directed link.

    Models the standard store-and-forward output port: at most one packet is
    being serialized at any time at ``capacity`` bits/s; up to ``buffer_packets``
    packets may be held in total (in service + waiting).  Arrivals beyond that
    are dropped (tail drop).

    With ``priority_bands > 1`` the queue becomes a non-preemptive
    strict-priority scheduler: each packet's ``priority`` (0 = highest)
    selects a band, the transmitter always serves the lowest-numbered
    non-empty band next, and the buffer is shared across bands.
    """

    def __init__(
        self,
        link: Link,
        buffer_packets: int = 64,
        priority_bands: int = 1,
        horizon: Seconds | None = None,
    ) -> None:
        if buffer_packets < 1:
            raise SimulationError(f"buffer must hold at least 1 packet, got {buffer_packets}")
        if priority_bands < 1:
            raise SimulationError(f"need at least 1 priority band, got {priority_bands}")
        if horizon is not None and horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        self.link = link
        self.buffer_packets = buffer_packets
        self.priority_bands = priority_bands
        #: Measurement horizon for ``busy_time``: transmission time is only
        #: accrued inside ``[0, horizon]``.  The simulator keeps serving
        #: queued packets after the generation window closes (the drain
        #: phase), and without the horizon that extra busy time inflated
        #: utilization past 1.0 on saturated links.  ``None`` accrues
        #: everything (standalone/unit use).
        self.horizon = horizon
        self._bands: list[deque[Packet]] = [deque() for _ in range(priority_bands)]
        self._in_service: Packet | None = None
        # Counters for utilization / occupancy statistics.  ``busy_time`` is
        # horizon-clipped (see above); the throughput counters below cover
        # the whole run including the drain phase.
        self.busy_time = 0.0
        self.bits_sent = 0.0
        self.packets_sent = 0
        self.packets_dropped = 0

    @property
    def occupancy(self) -> int:
        """Packets currently held (in service + waiting)."""
        waiting = sum(len(band) for band in self._bands)
        return waiting + (1 if self._in_service is not None else 0)

    @property
    def is_idle(self) -> bool:
        return self._in_service is None

    def _band_for(self, packet: Packet) -> deque[Packet]:
        if not 0 <= packet.priority < self.priority_bands:
            raise SimulationError(
                f"packet priority {packet.priority} outside "
                f"[0, {self.priority_bands})"
            )
        return self._bands[packet.priority]

    def try_enqueue(self, packet: Packet) -> bool:
        """Accept or tail-drop ``packet``; returns True if accepted.

        The caller is responsible for starting transmission (via
        :meth:`start_service`) when the queue was idle.
        """
        band = self._band_for(packet)
        if self.occupancy >= self.buffer_packets:
            self.packets_dropped += 1
            return False
        band.append(packet)
        return True

    def start_service(self, now: Seconds) -> tuple[Packet, float]:
        """Begin transmitting the next packet (highest band, FIFO within).

        Returns:
            ``(packet, completion_time)``.

        Raises:
            SimulationError: If the transmitter is busy or the queue empty.
        """
        if self._in_service is not None:
            raise SimulationError(f"link {self.link.id} transmitter already busy")
        for band in self._bands:
            if band:
                packet = band.popleft()
                break
        else:
            raise SimulationError(f"link {self.link.id} has no packet to serve")
        self._in_service = packet
        service_time = packet.size_bits / self.link.capacity
        return packet, now + service_time

    def finish_service(self, now: Seconds) -> Packet:
        """Complete the in-flight transmission and update counters.

        ``busy_time`` accrues only the part of the transmission that falls
        inside the measurement horizon, so drain-phase service (after the
        generation window) never biases utilization.
        """
        if self._in_service is None:
            raise SimulationError(f"link {self.link.id} finished service while idle")
        packet = self._in_service
        self._in_service = None
        service_time = packet.size_bits / self.link.capacity
        if self.horizon is None:
            self.busy_time += service_time
        else:
            started = now - service_time
            self.busy_time += max(0.0, min(now, self.horizon) - max(started, 0.0))
        self.bits_sent += packet.size_bits
        self.packets_sent += 1
        return packet

    def has_waiting(self) -> bool:
        return any(self._bands)

    def utilization(self, duration: Seconds) -> float:
        """Fraction of ``duration`` the transmitter spent sending.

        No clamping: when ``horizon == duration`` the ratio is structurally
        <= 1 (a serial transmitter cannot be busy longer than the window it
        is measured over), and for horizon-less standalone queues a ratio
        above 1 is a real signal of measuring past the window — silently
        clamping it used to hide saturated-link accounting bugs.
        """
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration}")
        return self.busy_time / duration
