"""Routing schemes: one loop-free path per source-destination pair.

A :class:`RoutingScheme` is the routing input of RouteNet and of the
simulator.  Factories cover the variety used by the paper's datasets:

* :meth:`RoutingScheme.shortest_path` — plain hop-count shortest paths;
* :meth:`RoutingScheme.random_weighted` — shortest paths under random link
  weights (a different valid scheme per draw);
* :meth:`RoutingScheme.random_ksp` — uniform choice among each pair's k
  shortest paths.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from ..errors import RoutingError
from ..random import make_rng
from ..topology import Topology
from .ksp import k_shortest_paths
from .shortest_path import all_pairs_shortest_paths

__all__ = ["RoutingScheme"]


class RoutingScheme:
    """Immutable per-pair single-path routing over a topology."""

    def __init__(
        self,
        topology: Topology,
        paths: Mapping[tuple[int, int], Sequence[int]],
        name: str = "routing",
    ) -> None:
        self.topology = topology
        self.name = name
        self._paths: dict[tuple[int, int], tuple[int, ...]] = {}
        self._link_paths: dict[tuple[int, int], tuple[int, ...]] = {}
        for pair, node_path in paths.items():
            node_path = tuple(int(n) for n in node_path)
            self._validate_path(pair, node_path)
            self._paths[pair] = node_path
            self._link_paths[pair] = tuple(
                topology.link_id(u, v) for u, v in zip(node_path[:-1], node_path[1:])
            )

    def _validate_path(self, pair: tuple[int, int], path: tuple[int, ...]) -> None:
        src, dst = pair
        if len(path) < 2:
            raise RoutingError(f"path for {pair} has fewer than 2 nodes")
        if path[0] != src or path[-1] != dst:
            raise RoutingError(f"path {path} does not join pair {pair}")
        if len(set(path)) != len(path):
            raise RoutingError(f"path {path} for {pair} contains a loop")
        for u, v in zip(path[:-1], path[1:]):
            if not self.topology.has_link(u, v):
                raise RoutingError(f"path {path} uses missing link {u}->{v}")

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def shortest_path(cls, topology: Topology) -> "RoutingScheme":
        """Hop-count shortest-path routing for every ordered pair."""
        return cls(topology, all_pairs_shortest_paths(topology), name="shortest-path")

    @classmethod
    def random_weighted(
        cls,
        topology: Topology,
        seed: int | np.random.Generator | None = None,
        weight_low: float = 0.5,
        weight_high: float = 2.0,
    ) -> "RoutingScheme":
        """Shortest paths under uniformly random link weights.

        Every draw yields a consistent (destination-based trees per weight
        vector) but generally non-minimal-hop routing scheme; this mirrors
        how the public datasets vary routing between samples.
        """
        rng = make_rng(seed)
        weights = rng.uniform(weight_low, weight_high, size=topology.num_links)
        return cls(
            topology,
            all_pairs_shortest_paths(topology, weights),
            name="random-weighted",
        )

    @classmethod
    def random_ksp(
        cls,
        topology: Topology,
        k: int = 3,
        seed: int | np.random.Generator | None = None,
    ) -> "RoutingScheme":
        """Uniform random choice among each pair's k shortest loopless paths."""
        rng = make_rng(seed)
        paths: dict[tuple[int, int], list[int]] = {}
        for pair in topology.node_pairs():
            options = k_shortest_paths(topology, pair[0], pair[1], k)
            paths[pair] = options[int(rng.integers(0, len(options)))]
        return cls(topology, paths, name=f"random-{k}sp")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> list[tuple[int, int]]:
        """Routed (src, dst) pairs in deterministic sorted order."""
        return sorted(self._paths)

    def node_path(self, src: int, dst: int) -> tuple[int, ...]:
        """The routed path for ``(src, dst)`` as a node sequence."""
        try:
            return self._paths[(src, dst)]
        except KeyError:
            raise RoutingError(f"no path routed for pair ({src}, {dst})") from None

    def link_path(self, src: int, dst: int) -> tuple[int, ...]:
        """The routed path for ``(src, dst)`` as a link-id sequence."""
        try:
            return self._link_paths[(src, dst)]
        except KeyError:
            raise RoutingError(f"no path routed for pair ({src}, {dst})") from None

    def items(self) -> Iterator[tuple[tuple[int, int], tuple[int, ...]]]:
        """Iterate ``(pair, node_path)`` sorted by pair."""
        for pair in self.pairs:
            yield pair, self._paths[pair]

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return pair in self._paths

    def max_path_length(self) -> int:
        """Longest routed path, in hops."""
        return max(len(p) for p in self._link_paths.values())

    def links_used(self) -> set[int]:
        """Set of link ids traversed by at least one path."""
        used: set[int] = set()
        for link_path in self._link_paths.values():
            used.update(link_path)
        return used

    def paths_through_link(self, link_id: int) -> list[tuple[int, int]]:
        """Pairs whose route traverses ``link_id``."""
        return [
            pair
            for pair in self.pairs
            if link_id in self._link_paths[pair]
        ]

    def to_dict(self) -> dict[str, list[int]]:
        """JSON-friendly representation ``{"src-dst": [nodes...]}``."""
        return {f"{s}-{d}": list(p) for (s, d), p in self.items()}

    @classmethod
    def from_dict(
        cls, topology: Topology, data: Mapping[str, Sequence[int]], name: str = "routing"
    ) -> "RoutingScheme":
        """Inverse of :meth:`to_dict`."""
        paths: dict[tuple[int, int], list[int]] = {}
        for key, path in data.items():
            s, d = key.split("-")
            paths[(int(s), int(d))] = list(path)
        return cls(topology, paths, name=name)

    def __repr__(self) -> str:
        return (
            f"RoutingScheme(name={self.name!r}, topology={self.topology.name!r}, "
            f"pairs={len(self)})"
        )
