"""Shortest-path algorithms (implemented from scratch; networkx is used only
in tests as an oracle).

Weights are per-directed-link, indexed by link id.  Ties are broken
deterministically by node id so routing schemes are reproducible.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..errors import RoutingError
from ..topology import Topology

__all__ = ["dijkstra", "shortest_path", "all_pairs_shortest_paths"]


def dijkstra(
    topology: Topology,
    source: int,
    weights: Sequence[float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths.

    Args:
        topology: The network.
        source: Source node.
        weights: Per-link weights (defaults to 1.0 per hop).  Must be
            non-negative.

    Returns:
        ``(dist, prev)`` where ``dist[v]`` is the distance from ``source``
        and ``prev[v]`` is the predecessor node on the best path (-1 for the
        source and for unreachable nodes).
    """
    n = topology.num_nodes
    if not 0 <= source < n:
        raise RoutingError(f"source node {source} outside [0, {n})")
    if weights is None:
        w = np.ones(topology.num_links)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (topology.num_links,):
            raise RoutingError(
                f"weights must have one entry per link ({topology.num_links}), got {w.shape}"
            )
        if (w < 0).any():
            raise RoutingError("negative link weights are not supported")

    dist = np.full(n, np.inf)
    prev = np.full(n, -1, dtype=int)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for link in topology.out_links(u):
            v = link.dst
            nd = d + w[link.id]
            # Strict inequality plus heap ordering by (distance, node) keeps
            # tie-breaking deterministic.
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, prev


def _walk_back(prev: np.ndarray, source: int, target: int) -> list[int]:
    path = [target]
    while path[-1] != source:
        p = int(prev[path[-1]])
        if p < 0:
            raise RoutingError(f"node {target} unreachable from {source}")
        path.append(p)
    path.reverse()
    return path


def shortest_path(
    topology: Topology,
    source: int,
    target: int,
    weights: Sequence[float] | None = None,
) -> list[int]:
    """Shortest path from ``source`` to ``target`` as a node sequence."""
    if source == target:
        raise RoutingError("source and target must differ")
    _, prev = dijkstra(topology, source, weights)
    return _walk_back(prev, source, target)


def all_pairs_shortest_paths(
    topology: Topology,
    weights: Sequence[float] | None = None,
) -> dict[tuple[int, int], list[int]]:
    """Shortest path (node sequence) for every ordered node pair."""
    paths: dict[tuple[int, int], list[int]] = {}
    for source in range(topology.num_nodes):
        dist, prev = dijkstra(topology, source, weights)
        for target in range(topology.num_nodes):
            if target == source:
                continue
            if not np.isfinite(dist[target]):
                raise RoutingError(f"node {target} unreachable from {source}")
            paths[(source, target)] = _walk_back(prev, source, target)
    return paths
