"""Yen's k-shortest loopless paths.

Used to generate the "wide variety of routing schemes" of the paper's
training set: picking random alternatives among each pair's k best paths
yields valid but non-shortest routings.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..errors import RoutingError
from ..topology import Topology
from .shortest_path import dijkstra, _walk_back

__all__ = ["k_shortest_paths"]


def _path_cost(topology: Topology, path: Sequence[int], w: np.ndarray) -> float:
    return float(
        sum(w[topology.link_id(u, v)] for u, v in zip(path[:-1], path[1:]))
    )


def _shortest_with_bans(
    topology: Topology,
    source: int,
    target: int,
    w: np.ndarray,
    banned_links: set[int],
    banned_nodes: set[int],
) -> list[int] | None:
    """Dijkstra with removed links/nodes; returns None when disconnected."""
    n = topology.num_nodes
    dist = np.full(n, np.inf)
    prev = np.full(n, -1, dtype=int)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        if u == target:
            break
        for link in topology.out_links(u):
            v = link.dst
            if link.id in banned_links or v in banned_nodes:
                continue
            nd = d + w[link.id]
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))
    if not np.isfinite(dist[target]):
        return None
    return _walk_back(prev, source, target)


def k_shortest_paths(
    topology: Topology,
    source: int,
    target: int,
    k: int,
    weights: Sequence[float] | None = None,
) -> list[list[int]]:
    """Return up to ``k`` loopless paths in non-decreasing cost order.

    Implements Yen's algorithm on top of :func:`dijkstra`.  Fewer than ``k``
    paths are returned when the graph does not contain that many loopless
    alternatives.
    """
    if k < 1:
        raise RoutingError(f"k must be >= 1, got {k}")
    if source == target:
        raise RoutingError("source and target must differ")
    w = (
        np.ones(topology.num_links)
        if weights is None
        else np.asarray(weights, dtype=float)
    )

    dist, prev = dijkstra(topology, source, w)
    if not np.isfinite(dist[target]):
        raise RoutingError(f"node {target} unreachable from {source}")
    best = _walk_back(prev, source, target)
    found: list[list[int]] = [best]
    # Candidate heap keyed by (cost, path) with path as tuple for tie-breaks.
    candidates: list[tuple[float, tuple[int, ...]]] = []
    seen: set[tuple[int, ...]] = {tuple(best)}

    while len(found) < k:
        last = found[-1]
        for i in range(len(last) - 1):
            spur_node = last[i]
            root = last[: i + 1]
            banned_links: set[int] = set()
            for path in found:
                if len(path) > i and path[: i + 1] == root:
                    banned_links.add(topology.link_id(path[i], path[i + 1]))
            banned_nodes = set(root[:-1])
            spur = _shortest_with_bans(
                topology, spur_node, target, w, banned_links, banned_nodes
            )
            if spur is None:
                continue
            candidate = tuple(root[:-1] + spur)
            if candidate in seen:
                continue
            seen.add(candidate)
            heapq.heappush(
                candidates, (_path_cost(topology, candidate, w), candidate)
            )
        if not candidates:
            break
        _, next_path = heapq.heappop(candidates)
        found.append(list(next_path))
    return found
