"""Routing substrate: shortest paths, k-shortest paths, routing schemes."""

from .shortest_path import dijkstra, shortest_path, all_pairs_shortest_paths
from .ksp import k_shortest_paths
from .schemes import RoutingScheme

__all__ = [
    "dijkstra",
    "shortest_path",
    "all_pairs_shortest_paths",
    "k_shortest_paths",
    "RoutingScheme",
]
