"""Closed-form M/M/1 and M/M/1/B queueing formulas.

These are the building blocks of the analytic delay model the paper's
introduction describes as the classical (and insufficient) alternative to
learned models: "Analytic models (e.g., Queuing Theory) fail to achieve
accurate estimation in real-world scenarios with complex configurations".

All rates are in packets/second; all times in seconds.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..units import PacketsPerSecond, Seconds

__all__ = [
    "mm1_mean_delay",
    "mm1_delay_variance",
    "mm1_mean_queue_length",
    "mm1b_blocking_probability",
    "mm1b_mean_queue_length",
    "mm1b_mean_delay",
]


def _check_rates(arrival_rate: PacketsPerSecond, service_rate: PacketsPerSecond) -> None:
    if arrival_rate < 0:
        raise ReproError(f"arrival rate must be non-negative, got {arrival_rate}")
    if service_rate <= 0:
        raise ReproError(f"service rate must be positive, got {service_rate}")


def mm1_mean_delay(arrival_rate: PacketsPerSecond, service_rate: PacketsPerSecond) -> Seconds:
    """Mean sojourn time ``W = 1 / (mu - lambda)``; infinite when unstable."""
    _check_rates(arrival_rate, service_rate)
    if arrival_rate >= service_rate:
        return float("inf")
    return 1.0 / (service_rate - arrival_rate)


def mm1_delay_variance(arrival_rate: PacketsPerSecond, service_rate: PacketsPerSecond) -> float:
    """Variance of the sojourn time: ``1 / (mu - lambda)^2``.

    The M/M/1 sojourn time is exponential with rate ``mu - lambda``, so its
    variance is the square of its mean.
    """
    w = mm1_mean_delay(arrival_rate, service_rate)
    return w * w


def mm1_mean_queue_length(arrival_rate: PacketsPerSecond, service_rate: PacketsPerSecond) -> float:
    """Mean number in system ``L = rho / (1 - rho)``."""
    _check_rates(arrival_rate, service_rate)
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        return float("inf")
    return rho / (1.0 - rho)


def mm1b_blocking_probability(
    arrival_rate: PacketsPerSecond, service_rate: PacketsPerSecond, buffer_packets: int
) -> float:
    """Blocking (drop) probability of an M/M/1/B system.

    ``buffer_packets`` is the total number of packets the system can hold
    (in service + waiting), i.e. the ``B`` in M/M/1/B.
    """
    _check_rates(arrival_rate, service_rate)
    if buffer_packets < 1:
        raise ReproError(f"buffer must hold at least 1 packet, got {buffer_packets}")
    rho = arrival_rate / service_rate
    b = buffer_packets
    if rho == 0.0:  # repro-lint: disable=RP002 -- exact-zero guard
        return 0.0
    if np.isclose(rho, 1.0):
        return 1.0 / (b + 1)
    return float(rho**b * (1.0 - rho) / (1.0 - rho ** (b + 1)))


def mm1b_mean_queue_length(
    arrival_rate: PacketsPerSecond, service_rate: PacketsPerSecond, buffer_packets: int
) -> float:
    """Mean number in an M/M/1/B system."""
    _check_rates(arrival_rate, service_rate)
    rho = arrival_rate / service_rate
    b = buffer_packets
    if rho == 0.0:  # repro-lint: disable=RP002 -- exact-zero guard
        return 0.0
    if np.isclose(rho, 1.0):
        return b / 2.0
    top = rho * (1.0 - (b + 1) * rho**b + b * rho ** (b + 1))
    bottom = (1.0 - rho) * (1.0 - rho ** (b + 1))
    return float(top / bottom)


def mm1b_mean_delay(
    arrival_rate: PacketsPerSecond, service_rate: PacketsPerSecond, buffer_packets: int
) -> Seconds:
    """Mean sojourn time of *accepted* packets in an M/M/1/B system.

    By Little's law ``W = L / lambda_eff`` with
    ``lambda_eff = lambda * (1 - P_block)``.  When no traffic is offered the
    sojourn of a hypothetical packet is just its service time ``1/mu``.
    """
    _check_rates(arrival_rate, service_rate)
    if arrival_rate == 0.0:  # repro-lint: disable=RP002 -- exact-zero guard
        return 1.0 / service_rate
    blocking = mm1b_blocking_probability(arrival_rate, service_rate, buffer_packets)
    effective = arrival_rate * (1.0 - blocking)
    if effective <= 0.0:
        return float("inf")
    return mm1b_mean_queue_length(arrival_rate, service_rate, buffer_packets) / effective
