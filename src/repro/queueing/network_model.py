"""Analytic end-to-end delay model (the queueing-theory baseline).

Treats every link as an independent M/M/1 (or M/M/1/B) queue fed by the
fluid load that routing assigns to it, and predicts a path's mean delay as
the sum of per-link sojourn times plus propagation (a Jackson-network-style
independence approximation).  Exactly the kind of classical model the paper
says "fails to achieve accurate estimation in real-world scenarios" — it is
implemented here as the comparison baseline for the learned model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..routing import RoutingScheme
from ..topology import Topology
from ..traffic import TrafficMatrix, link_loads, DEFAULT_MEAN_PACKET_BITS
from ..units import BitsPerPacket
from .mm1 import (
    mm1_mean_delay,
    mm1_delay_variance,
    mm1b_blocking_probability,
    mm1b_mean_delay,
)

__all__ = ["QueueingNetworkModel", "QueueingPrediction"]


@dataclass(frozen=True)
class QueueingPrediction:
    """Per-pair analytic estimates, ordered like the query pairs."""

    pairs: list[tuple[int, int]]
    delay: np.ndarray
    jitter: np.ndarray


class QueueingNetworkModel:
    """Independent-queues analytic predictor of per-pair delay and jitter.

    Args:
        mean_packet_bits: Average packet size used to convert bit rates to
            packet rates.
        buffer_packets: If given, links are modeled as M/M/1/B with that
            buffer; otherwise infinite-buffer M/M/1 (unstable links then
            predict infinite delay).
    """

    def __init__(
        self,
        mean_packet_bits: BitsPerPacket = DEFAULT_MEAN_PACKET_BITS,
        buffer_packets: int | None = None,
    ) -> None:
        if mean_packet_bits <= 0:
            raise ValueError(f"mean_packet_bits must be positive, got {mean_packet_bits}")
        self.mean_packet_bits = mean_packet_bits
        self.buffer_packets = buffer_packets

    def link_delays(
        self,
        topology: Topology,
        routing: RoutingScheme,
        traffic: TrafficMatrix,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-link mean sojourn time and sojourn variance."""
        loads_bits = link_loads(topology, routing, traffic)
        arrival_pps = loads_bits / self.mean_packet_bits
        service_pps = topology.capacities() / self.mean_packet_bits
        delays = np.empty(topology.num_links)
        variances = np.empty(topology.num_links)
        for i, (lam, mu) in enumerate(zip(arrival_pps, service_pps)):
            if self.buffer_packets is None:
                delays[i] = mm1_mean_delay(lam, mu)
            else:
                delays[i] = mm1b_mean_delay(lam, mu, self.buffer_packets)
            # Jitter uses the (possibly diverging) M/M/1 sojourn variance;
            # for finite buffers this is an upper-bound approximation.
            variances[i] = mm1_delay_variance(lam, mu) if lam < mu else delays[i] ** 2
        return delays, variances

    def predict(
        self,
        topology: Topology,
        routing: RoutingScheme,
        traffic: TrafficMatrix,
        pairs: list[tuple[int, int]] | None = None,
    ) -> QueueingPrediction:
        """Predict mean delay and jitter for each pair.

        Args:
            pairs: Pairs to evaluate; defaults to every routed pair with
                positive demand.
        """
        if pairs is None:
            pairs = [p for p in traffic.nonzero_pairs() if p in routing]
        link_delay, link_var = self.link_delays(topology, routing, traffic)
        prop = np.array([l.propagation_delay for l in topology.links])
        delay = np.empty(len(pairs))
        jitter = np.empty(len(pairs))
        for i, (s, d) in enumerate(pairs):
            path = routing.link_path(s, d)
            idx = np.fromiter(path, dtype=np.intp)
            delay[i] = float(link_delay[idx].sum() + prop[idx].sum())
            jitter[i] = float(link_var[idx].sum())
        return QueueingPrediction(pairs=list(pairs), delay=delay, jitter=jitter)

    def predict_loss(
        self,
        topology: Topology,
        routing: RoutingScheme,
        traffic: TrafficMatrix,
        pairs: list[tuple[int, int]] | None = None,
    ) -> np.ndarray:
        """Analytic per-pair packet-loss estimate.

        Each link drops with its M/M/1/B blocking probability; a path's loss
        is ``1 - prod(1 - P_block_l)`` under link independence.  Requires a
        finite ``buffer_packets`` (infinite buffers never drop).

        Raises:
            ValueError: If the model was built without a finite buffer.
        """
        if self.buffer_packets is None:
            raise ValueError("loss prediction needs a finite buffer_packets")
        if pairs is None:
            pairs = [p for p in traffic.nonzero_pairs() if p in routing]
        arrival_pps = link_loads(topology, routing, traffic) / self.mean_packet_bits
        service_pps = topology.capacities() / self.mean_packet_bits
        blocking = np.array(
            [
                mm1b_blocking_probability(lam, mu, self.buffer_packets)
                for lam, mu in zip(arrival_pps, service_pps)
            ]
        )
        loss = np.empty(len(pairs))
        for i, (s, d) in enumerate(pairs):
            idx = np.fromiter(routing.link_path(s, d), dtype=np.intp)
            loss[i] = 1.0 - float(np.prod(1.0 - blocking[idx]))
        return loss
