"""Reduced-load fixed-point approximation for loss networks.

The plain :class:`~repro.queueing.network_model.QueueingNetworkModel` feeds
every link its *offered* load, which over-counts at high utilization: a
packet dropped upstream never loads downstream links.  The classic fix
(Kelly's reduced-load / Erlang fixed point, adapted here to M/M/1/B links)
iterates:

1. given per-link blocking probabilities, thin every flow's rate along its
   path (a packet reaches link *k* only if no earlier link dropped it);
2. recompute each link's blocking from its thinned arrival rate;
3. repeat until the blocking vector converges.

The result is a self-consistent traffic solution that stays meaningful in
overload, giving both a better analytic baseline and a sanity oracle for
the simulator's loss behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..routing import RoutingScheme
from ..topology import Topology
from ..traffic import TrafficMatrix, DEFAULT_MEAN_PACKET_BITS
from .mm1 import mm1b_blocking_probability, mm1b_mean_delay

__all__ = ["FixedPointSolution", "ReducedLoadModel"]


@dataclass(frozen=True)
class FixedPointSolution:
    """Converged traffic solution.

    Attributes:
        pairs: Flows in the order predictions are reported.
        delay: Per-pair mean delay of *delivered* packets (seconds).
        loss: Per-pair end-to-end loss probability.
        link_blocking: Per-link blocking probability at the fixed point.
        link_arrival_pps: Thinned per-link arrival rates (packets/s).
        iterations: Iterations until convergence.
    """

    pairs: list[tuple[int, int]]
    delay: np.ndarray
    loss: np.ndarray
    link_blocking: np.ndarray
    link_arrival_pps: np.ndarray
    iterations: int


class ReducedLoadModel:
    """Erlang-style fixed-point analytic model over M/M/1/B links."""

    def __init__(
        self,
        mean_packet_bits: float = DEFAULT_MEAN_PACKET_BITS,
        buffer_packets: int = 64,
        tolerance: float = 1e-9,
        max_iterations: int = 200,
        damping: float = 0.5,
    ) -> None:
        if mean_packet_bits <= 0:
            raise ReproError(f"mean_packet_bits must be positive, got {mean_packet_bits}")
        if buffer_packets < 1:
            raise ReproError(f"buffer_packets must be >= 1, got {buffer_packets}")
        if not 0 < damping <= 1:
            raise ReproError(f"damping must be in (0, 1], got {damping}")
        self.mean_packet_bits = mean_packet_bits
        self.buffer_packets = buffer_packets
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.damping = damping

    def solve(
        self,
        topology: Topology,
        routing: RoutingScheme,
        traffic: TrafficMatrix,
        pairs: list[tuple[int, int]] | None = None,
    ) -> FixedPointSolution:
        """Run the fixed-point iteration and report per-pair KPIs.

        Raises:
            ReproError: If the iteration fails to converge.
        """
        if pairs is None:
            pairs = [p for p in traffic.nonzero_pairs() if p in routing]
        flow_rate_pps = np.array(
            [traffic.rate(s, d) / self.mean_packet_bits for s, d in pairs]
        )
        flow_paths = [
            np.fromiter(routing.link_path(s, d), dtype=np.intp) for s, d in pairs
        ]
        service_pps = topology.capacities() / self.mean_packet_bits
        num_links = topology.num_links

        blocking = np.zeros(num_links)
        arrivals = np.zeros(num_links)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # Thin every flow along its path under the current blocking.
            arrivals = np.zeros(num_links)
            for rate, path in zip(flow_rate_pps, flow_paths):
                surviving = rate
                for link in path:
                    arrivals[link] += surviving
                    surviving *= 1.0 - blocking[link]
            new_blocking = np.array(
                [
                    mm1b_blocking_probability(lam, mu, self.buffer_packets)
                    for lam, mu in zip(arrivals, service_pps)
                ]
            )
            new_blocking = (
                self.damping * new_blocking + (1.0 - self.damping) * blocking
            )
            shift = float(np.abs(new_blocking - blocking).max())
            blocking = new_blocking
            if shift < self.tolerance:
                break
        else:
            raise ReproError(
                f"reduced-load fixed point did not converge in "
                f"{self.max_iterations} iterations"
            )

        link_delay = np.array(
            [
                mm1b_mean_delay(lam, mu, self.buffer_packets)
                for lam, mu in zip(arrivals, service_pps)
            ]
        )
        prop = np.array([l.propagation_delay for l in topology.links])
        delay = np.empty(len(pairs))
        loss = np.empty(len(pairs))
        for i, path in enumerate(flow_paths):
            delay[i] = float(link_delay[path].sum() + prop[path].sum())
            loss[i] = 1.0 - float(np.prod(1.0 - blocking[path]))
        return FixedPointSolution(
            pairs=list(pairs),
            delay=delay,
            loss=loss,
            link_blocking=blocking,
            link_arrival_pps=arrivals,
            iterations=iterations,
        )
