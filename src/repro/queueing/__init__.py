"""Queueing-theory substrate: M/M/1(/B) formulas and the analytic baseline."""

from .mm1 import (
    mm1_mean_delay,
    mm1_delay_variance,
    mm1_mean_queue_length,
    mm1b_blocking_probability,
    mm1b_mean_queue_length,
    mm1b_mean_delay,
)
from .network_model import QueueingNetworkModel, QueueingPrediction
from .fixed_point import ReducedLoadModel, FixedPointSolution

__all__ = [
    "mm1_mean_delay",
    "mm1_delay_variance",
    "mm1_mean_queue_length",
    "mm1b_blocking_probability",
    "mm1b_mean_queue_length",
    "mm1b_mean_delay",
    "QueueingNetworkModel",
    "QueueingPrediction",
    "ReducedLoadModel",
    "FixedPointSolution",
]
