"""Network topology model.

A :class:`Topology` is a set of nodes joined by *directed* links (every
physical cable is two directed links, one per direction), each with a
transmission capacity in bits/s and a propagation delay in seconds.  Directed
links are the unit the rest of the library works with: routing produces
sequences of link ids, the simulator attaches one FIFO queue per link, and
RouteNet keeps one hidden state per link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from ..errors import TopologyError
from ..units import BitsPerSecond, Seconds

__all__ = ["Link", "Topology"]


@dataclass(frozen=True)
class Link:
    """A directed link ``src -> dst``.

    Attributes:
        id: Dense index in ``[0, num_links)``.
        src: Source node.
        dst: Destination node.
        capacity: Transmission rate in bits/s.
        propagation_delay: Fixed per-traversal latency in seconds.
    """

    id: int
    src: int
    dst: int
    capacity: BitsPerSecond
    propagation_delay: Seconds = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TopologyError(f"self-loop link at node {self.src}")
        if self.capacity <= 0:
            raise TopologyError(f"link {self.src}->{self.dst} has capacity {self.capacity}")
        if self.propagation_delay < 0:
            raise TopologyError(
                f"link {self.src}->{self.dst} has negative propagation delay"
            )


class Topology:
    """An immutable directed network graph with per-link capacities."""

    def __init__(self, num_nodes: int, links: Sequence[Link], name: str = "topology") -> None:
        if num_nodes < 2:
            raise TopologyError(f"a network needs at least 2 nodes, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.name = name
        self.links: tuple[Link, ...] = tuple(links)
        self._index: dict[tuple[int, int], int] = {}
        self._adjacency: dict[int, list[int]] = {n: [] for n in range(num_nodes)}
        for i, link in enumerate(self.links):
            if link.id != i:
                raise TopologyError(f"link ids must be dense; got {link.id} at position {i}")
            if not (0 <= link.src < num_nodes and 0 <= link.dst < num_nodes):
                raise TopologyError(f"link {link.src}->{link.dst} references unknown node")
            key = (link.src, link.dst)
            if key in self._index:
                raise TopologyError(f"duplicate link {link.src}->{link.dst}")
            self._index[key] = i
            self._adjacency[link.src].append(i)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        capacity: float | Sequence[float] = 10_000.0,
        propagation_delay: float | Sequence[float] = 0.0,
        name: str = "topology",
    ) -> "Topology":
        """Build a topology from undirected edges (each becomes two links).

        Args:
            num_nodes: Node count; nodes are ``0..num_nodes-1``.
            edges: Undirected ``(u, v)`` pairs.
            capacity: Either one capacity for every link or one value per
                undirected edge (applied to both directions).
            propagation_delay: Same convention as ``capacity``.
            name: Human-readable topology name.
        """
        edges = list(edges)
        caps = cls._per_edge(capacity, len(edges), "capacity")
        delays = cls._per_edge(propagation_delay, len(edges), "propagation_delay")
        links: list[Link] = []
        for (u, v), cap, delay in zip(edges, caps, delays):
            links.append(Link(len(links), u, v, cap, delay))
            links.append(Link(len(links), v, u, cap, delay))
        return cls(num_nodes, links, name=name)

    @staticmethod
    def _per_edge(value: float | Sequence[float], n: int, what: str) -> list[float]:
        if np.isscalar(value):
            return [float(value)] * n
        values = [float(v) for v in value]
        if len(values) != n:
            raise TopologyError(f"{what} list has {len(values)} entries for {n} edges")
        return values

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return len(self.links)

    def link_id(self, src: int, dst: int) -> int:
        """Dense id of the directed link ``src -> dst``.

        Raises:
            TopologyError: If no such link exists.
        """
        try:
            return self._index[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link {src}->{dst} in {self.name}") from None

    def has_link(self, src: int, dst: int) -> bool:
        return (src, dst) in self._index

    def out_links(self, node: int) -> list[Link]:
        """Links departing ``node``."""
        return [self.links[i] for i in self._adjacency[node]]

    def neighbors(self, node: int) -> list[int]:
        return [self.links[i].dst for i in self._adjacency[node]]

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    def node_pairs(self) -> Iterator[tuple[int, int]]:
        """All ordered (src, dst) pairs with src != dst."""
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if src != dst:
                    yield (src, dst)

    def capacities(self) -> np.ndarray:
        """Vector of link capacities, indexed by link id."""
        return np.array([link.capacity for link in self.links])

    # ------------------------------------------------------------------
    # Validation / interop
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether every node can reach every other node over directed links."""
        if self.num_nodes == 0:
            return True
        for start in (0,):  # directed graphs from undirected edges are symmetric
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nb in self.neighbors(node):
                    if nb not in seen:
                        seen.add(nb)
                        frontier.append(nb)
            if len(seen) != self.num_nodes:
                return False
        # Also verify reverse reachability (asymmetric link sets are allowed).
        reverse: dict[int, list[int]] = {n: [] for n in range(self.num_nodes)}
        for link in self.links:
            reverse[link.dst].append(link.src)
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for nb in reverse[node]:
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        return len(seen) == self.num_nodes

    def validate(self) -> None:
        """Raise :class:`TopologyError` on a disconnected network."""
        if not self.is_connected():
            raise TopologyError(f"topology {self.name!r} is not strongly connected")

    def without_edge(self, u: int, v: int) -> "Topology":
        """A copy with the undirected edge ``u <-> v`` removed (both links).

        Link ids are re-densified, so routing schemes must be recomputed on
        the returned topology.  Used by link-failure what-if studies.

        Raises:
            TopologyError: If the edge does not exist in both directions.
        """
        doomed = {self.link_id(u, v), self.link_id(v, u)}
        links = []
        for link in self.links:
            if link.id in doomed:
                continue
            links.append(
                Link(
                    len(links),
                    link.src,
                    link.dst,
                    link.capacity,
                    link.propagation_delay,
                )
            )
        return Topology(self.num_nodes, links, name=f"{self.name}-minus-{u}-{v}")

    def with_capacity(self, u: int, v: int, capacity: float) -> "Topology":
        """A copy with the undirected edge ``u <-> v`` set to ``capacity``.

        Link ids are preserved, so existing routing schemes remain valid on
        the returned topology.  Used by capacity-upgrade what-if studies.
        """
        doomed = {self.link_id(u, v), self.link_id(v, u)}
        links = [
            Link(
                link.id,
                link.src,
                link.dst,
                capacity if link.id in doomed else link.capacity,
                link.propagation_delay,
            )
            for link in self.links
        ]
        return Topology(self.num_nodes, links, name=self.name)

    def to_networkx(self) -> "nx.DiGraph":
        """Export as a ``networkx.DiGraph`` (for tests and analysis)."""
        g = nx.DiGraph(name=self.name)
        g.add_nodes_from(range(self.num_nodes))
        for link in self.links:
            g.add_edge(
                link.src,
                link.dst,
                id=link.id,
                capacity=link.capacity,
                propagation_delay=link.propagation_delay,
            )
        return g

    def __repr__(self) -> str:
        return f"Topology(name={self.name!r}, nodes={self.num_nodes}, links={self.num_links})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and self.links == other.links
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self.links, self.name))
