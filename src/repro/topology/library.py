"""Reference topologies used in the paper's evaluation.

The demo trains on (i) the 14-node NSFNET topology and (ii) a 50-node
synthetic topology, and evaluates generalization on the 24-node Geant2
topology.  NSFNET below is the classic 14-node/21-edge T1 backbone used by
the public RouteNet datasets.  Geant2 is a 24-node/38-edge reconstruction of
the pan-European research backbone as distributed with those datasets; GBN
(17-node German backbone) is included for extra evaluation variety.

Capacities default to 10 kbit/s with a 1000-bit mean packet size, matching
the scaled-down units of the public datasets (what matters to every model in
this library is the traffic/capacity ratio, not absolute magnitudes).
"""

from __future__ import annotations

from typing import Sequence

from .graph import Topology

__all__ = ["nsfnet", "geant2", "gbn", "abilene", "TOPOLOGY_LIBRARY", "by_name"]

DEFAULT_CAPACITY = 10_000.0  # bits/s

_NSFNET_EDGES: list[tuple[int, int]] = [
    (0, 1), (0, 2), (0, 7),
    (1, 2), (1, 3),
    (2, 5),
    (3, 4), (3, 10),
    (4, 5), (4, 6),
    (5, 9), (5, 13),
    (6, 7),
    (7, 8),
    (8, 9), (8, 11), (8, 12),
    (10, 11), (10, 12),
    (11, 13),
    (12, 13),
]

_GEANT2_EDGES: list[tuple[int, int]] = [
    (0, 1), (0, 2),
    (1, 3), (1, 6), (1, 9),
    (2, 3), (2, 4),
    (3, 5), (3, 6),
    (4, 7),
    (5, 8),
    (6, 8), (6, 9),
    (7, 8), (7, 11),
    (8, 11), (8, 12), (8, 17), (8, 18), (8, 20),
    (9, 10), (9, 12), (9, 13),
    (10, 13),
    (11, 14), (11, 20),
    (12, 13), (12, 19), (12, 21),
    (13, 14),
    (14, 15),
    (15, 16),
    (16, 17),
    (17, 18),
    (18, 21),
    (19, 23),
    (21, 22),
    (22, 23),
]

# Internet2/Abilene (11 PoPs, 14 trunks): Seattle(0), Sunnyvale(1), LA(2),
# Denver(3), Houston(4), Kansas City(5), Indianapolis(6), Atlanta(7),
# Chicago(8), Washington DC(9), New York(10).
_ABILENE_EDGES: list[tuple[int, int]] = [
    (0, 1), (0, 3),
    (1, 2), (1, 3),
    (2, 4),
    (3, 5),
    (4, 5), (4, 7),
    (5, 6),
    (6, 7), (6, 8),
    (7, 9),
    (8, 10),
    (9, 10),
]

_GBN_EDGES: list[tuple[int, int]] = [
    (0, 1), (0, 2),
    (1, 2), (1, 9),
    (2, 3), (2, 4),
    (3, 4), (3, 6),
    (4, 5), (4, 9),
    (5, 6), (5, 8),
    (6, 7),
    (7, 8), (7, 10),
    (8, 11),
    (9, 10), (9, 13),
    (10, 11), (10, 12),
    (11, 12), (11, 14),
    (12, 15),
    (13, 14), (13, 16),
    (14, 15), (14, 16),
    (15, 16),
]


def nsfnet(capacity: float | Sequence[float] = DEFAULT_CAPACITY) -> Topology:
    """The 14-node / 21-edge NSFNET backbone (training topology #1)."""
    return Topology.from_edges(14, _NSFNET_EDGES, capacity=capacity, name="nsfnet")


def geant2(capacity: float | Sequence[float] = DEFAULT_CAPACITY) -> Topology:
    """The 24-node Geant2 backbone (the *unseen* evaluation topology)."""
    return Topology.from_edges(24, _GEANT2_EDGES, capacity=capacity, name="geant2")


def gbn(capacity: float | Sequence[float] = DEFAULT_CAPACITY) -> Topology:
    """The 17-node German Backbone Network (extra evaluation topology)."""
    return Topology.from_edges(17, _GBN_EDGES, capacity=capacity, name="gbn")


def abilene(capacity: float | Sequence[float] = DEFAULT_CAPACITY) -> Topology:
    """The 11-node Internet2/Abilene backbone (extra evaluation topology)."""
    return Topology.from_edges(11, _ABILENE_EDGES, capacity=capacity, name="abilene")


TOPOLOGY_LIBRARY = {
    "nsfnet": nsfnet,
    "geant2": geant2,
    "gbn": gbn,
    "abilene": abilene,
}


def by_name(name: str, capacity: float | Sequence[float] = DEFAULT_CAPACITY) -> Topology:
    """Look up a reference topology by name.

    Raises:
        KeyError: For unknown names (listing the available ones).
    """
    try:
        factory = TOPOLOGY_LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; available: {sorted(TOPOLOGY_LIBRARY)}"
        ) from None
    return factory(capacity=capacity)
