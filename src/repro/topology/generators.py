"""Synthetic topology generators.

The paper trains on a 50-node *synthetically generated* topology and claims
generalization over "topologies of variable size (up to 50 nodes)".  These
generators reproduce that setup: seeded random connected graphs with bounded
degree and realistic capacity assignment.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import TopologyError
from ..random import make_rng
from .graph import Topology
from .library import DEFAULT_CAPACITY

__all__ = ["synthetic_topology", "variable_size_family", "CAPACITY_TIERS"]

#: Capacity tiers used by heterogeneous assignment (bits/s); mirrors the
#: 10k/25k/40k tiering of the public RouteNet datasets.
CAPACITY_TIERS: tuple[float, ...] = (10_000.0, 25_000.0, 40_000.0)


def synthetic_topology(
    num_nodes: int,
    seed: int | np.random.Generator | None = None,
    mean_degree: float = 3.0,
    max_degree: int = 8,
    capacity: float | None = DEFAULT_CAPACITY,
    capacity_tiers: Sequence[float] = CAPACITY_TIERS,
    name: str | None = None,
) -> Topology:
    """Generate a random connected topology.

    The construction starts from a random spanning tree (guaranteeing
    connectivity) and then adds random extra edges until the target mean
    degree is met, preferring low-degree nodes so the graph stays
    backbone-like instead of hub-dominated.

    Args:
        num_nodes: Number of nodes (>= 2).
        seed: Seed or generator for reproducibility.
        mean_degree: Target average undirected degree (>= 2 for useful nets).
        max_degree: Per-node degree cap.
        capacity: Uniform link capacity; ``None`` samples from
            ``capacity_tiers`` per edge instead.
        capacity_tiers: Tier values used when ``capacity is None``.
        name: Topology name; defaults to ``synthetic-<n>``.

    Returns:
        A connected :class:`Topology`.
    """
    if num_nodes < 2:
        raise TopologyError(f"need at least 2 nodes, got {num_nodes}")
    if mean_degree < 1.0:
        raise TopologyError(f"mean_degree must be >= 1, got {mean_degree}")
    rng = make_rng(seed)

    # Random spanning tree: attach each new node to a uniformly random
    # already-placed node (random recursive tree).
    order = rng.permutation(num_nodes)
    edges: set[tuple[int, int]] = set()
    degree = np.zeros(num_nodes, dtype=int)
    for i in range(1, num_nodes):
        u = int(order[i])
        v = int(order[rng.integers(0, i)])
        edges.add((min(u, v), max(u, v)))
        degree[u] += 1
        degree[v] += 1

    target_edges = max(num_nodes - 1, int(round(mean_degree * num_nodes / 2.0)))
    attempts = 0
    max_attempts = 50 * target_edges + 100
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        candidates = np.flatnonzero(degree < max_degree)
        if candidates.size < 2:
            break
        # Bias toward low-degree nodes to keep the degree distribution flat.
        weights = 1.0 / (1.0 + degree[candidates].astype(float))
        weights /= weights.sum()
        u, v = rng.choice(candidates, size=2, replace=False, p=weights)
        u, v = int(min(u, v)), int(max(u, v))
        if (u, v) in edges:
            continue
        edges.add((u, v))
        degree[u] += 1
        degree[v] += 1

    edge_list = sorted(edges)
    if capacity is None:
        caps = [float(rng.choice(capacity_tiers)) for _ in edge_list]
    else:
        caps = capacity
    topo = Topology.from_edges(
        num_nodes,
        edge_list,
        capacity=caps,
        name=name or f"synthetic-{num_nodes}",
    )
    topo.validate()
    return topo


def variable_size_family(
    sizes: Sequence[int],
    seed: int | np.random.Generator | None = None,
    **kwargs: object,
) -> list[Topology]:
    """Generate one synthetic topology per requested size.

    Used by the "variable size up to 50 nodes" generalization experiments.
    Each topology gets an independent child RNG stream, so the family is
    reproducible as a whole and element-wise stable under reordering.
    """
    rng = make_rng(seed)
    seeds = rng.integers(0, 2**63 - 1, size=len(sizes))
    return [
        synthetic_topology(int(n), seed=int(s), name=f"synthetic-{n}-v{i}", **kwargs)
        for i, (n, s) in enumerate(zip(sizes, seeds))
    ]
