"""Geographic positions and propagation delays for reference topologies.

The base library models propagation as zero (queueing dominates at the
scaled-down capacities).  For studies where speed-of-light latency matters
— e.g. comparing transcontinental vs metro paths — this module attaches
approximate site coordinates to each reference backbone and derives
per-edge propagation delays from great-circle distance through fiber
(refractive index ~1.47, i.e. ~204,000 km/s, with a 1.3x route-vs-geodesic
detour factor).

Coordinates are approximate (city centroids) and documented as such; they
produce realistic *relative* latencies, which is all the models consume.
"""

from __future__ import annotations

import math

from ..errors import TopologyError
from .graph import Link, Topology

__all__ = [
    "NODE_POSITIONS",
    "haversine_km",
    "edge_propagation_delay",
    "with_geographic_delays",
    "SPEED_IN_FIBER_KM_S",
    "ROUTE_DETOUR_FACTOR",
]

SPEED_IN_FIBER_KM_S = 204_000.0  # c / 1.47
ROUTE_DETOUR_FACTOR = 1.3  # fiber routes are longer than geodesics

#: Approximate (latitude, longitude) per node for each reference topology.
NODE_POSITIONS: dict[str, dict[int, tuple[float, float]]] = {
    "nsfnet": {
        0: (47.61, -122.33),   # Seattle
        1: (37.44, -122.14),   # Palo Alto
        2: (32.72, -117.16),   # San Diego
        3: (40.76, -111.89),   # Salt Lake City
        4: (40.01, -105.27),   # Boulder
        5: (29.76, -95.37),    # Houston
        6: (40.81, -96.68),    # Lincoln
        7: (40.12, -88.24),    # Champaign
        8: (40.44, -79.99),    # Pittsburgh
        9: (33.75, -84.39),    # Atlanta
        10: (42.28, -83.74),   # Ann Arbor
        11: (42.44, -76.50),   # Ithaca
        12: (38.99, -76.94),   # College Park
        13: (40.35, -74.66),   # Princeton
    },
    "abilene": {
        0: (47.61, -122.33),   # Seattle
        1: (37.37, -122.04),   # Sunnyvale
        2: (34.05, -118.24),   # Los Angeles
        3: (39.74, -104.99),   # Denver
        4: (29.76, -95.37),    # Houston
        5: (39.10, -94.58),    # Kansas City
        6: (39.77, -86.16),    # Indianapolis
        7: (33.75, -84.39),    # Atlanta
        8: (41.88, -87.63),    # Chicago
        9: (38.91, -77.04),    # Washington DC
        10: (40.71, -74.01),   # New York
    },
    "gbn": {
        0: (54.32, 10.14),     # Kiel
        1: (53.55, 9.99),      # Hamburg
        2: (53.08, 8.81),      # Bremen
        3: (52.37, 9.74),      # Hannover
        4: (52.52, 13.41),     # Berlin
        5: (51.46, 7.01),      # Essen
        6: (51.51, 7.47),      # Dortmund
        7: (50.94, 6.96),      # Koeln
        8: (50.11, 8.68),      # Frankfurt
        9: (51.34, 12.37),     # Leipzig
        10: (49.49, 8.47),     # Mannheim
        11: (49.01, 8.40),     # Karlsruhe
        12: (48.78, 9.18),     # Stuttgart
        13: (49.45, 11.08),    # Nuernberg
        14: (48.40, 9.99),     # Ulm
        15: (48.14, 11.58),    # Muenchen
        16: (51.05, 13.74),    # Dresden
    },
    "geant2": {
        0: (38.72, -9.14),     # Lisbon
        1: (51.51, -0.13),     # London
        2: (40.42, -3.70),     # Madrid
        3: (48.86, 2.35),      # Paris
        4: (53.35, -6.26),     # Dublin
        5: (46.20, 6.14),      # Geneva
        6: (50.85, 4.35),      # Brussels
        7: (41.39, 2.17),      # Barcelona
        8: (50.11, 8.68),      # Frankfurt
        9: (52.37, 4.90),      # Amsterdam
        10: (55.68, 12.57),    # Copenhagen
        11: (45.46, 9.19),     # Milan
        12: (48.21, 16.37),    # Vienna
        13: (52.52, 13.41),    # Berlin
        14: (50.08, 14.44),    # Prague
        15: (47.50, 19.04),    # Budapest
        16: (44.43, 26.10),    # Bucharest
        17: (41.90, 12.50),    # Rome
        18: (46.05, 14.51),    # Ljubljana
        19: (59.33, 18.07),    # Stockholm
        20: (37.98, 23.73),    # Athens
        21: (48.15, 17.11),    # Bratislava
        22: (52.23, 21.01),    # Warsaw
        23: (60.17, 24.94),    # Helsinki
    },
}


def haversine_km(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Great-circle distance between two (lat, lon) points, in km."""
    lat1, lon1 = map(math.radians, a)
    lat2, lon2 = map(math.radians, b)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * 6371.0 * math.asin(math.sqrt(h))


def edge_propagation_delay(
    a: tuple[float, float],
    b: tuple[float, float],
    detour_factor: float = ROUTE_DETOUR_FACTOR,
) -> float:
    """One-way propagation delay (seconds) for a fiber between two sites."""
    return haversine_km(a, b) * detour_factor / SPEED_IN_FIBER_KM_S


def with_geographic_delays(
    topology: Topology,
    positions: dict[int, tuple[float, float]] | None = None,
    detour_factor: float = ROUTE_DETOUR_FACTOR,
) -> Topology:
    """A copy of ``topology`` with distance-derived propagation delays.

    Args:
        positions: Node coordinates; defaults to the built-in table for the
            topology's name.

    Raises:
        TopologyError: If no positions are known for the topology or a node
            lacks coordinates.
    """
    if positions is None:
        try:
            positions = NODE_POSITIONS[topology.name]
        except KeyError:
            raise TopologyError(
                f"no built-in coordinates for topology {topology.name!r}; "
                f"pass positions explicitly"
            ) from None
    links = []
    for link in topology.links:
        try:
            a, b = positions[link.src], positions[link.dst]
        except KeyError as exc:
            raise TopologyError(f"node {exc} has no coordinates") from None
        links.append(
            Link(
                link.id,
                link.src,
                link.dst,
                link.capacity,
                edge_propagation_delay(a, b, detour_factor),
            )
        )
    return Topology(topology.num_nodes, links, name=topology.name)
