"""Network topologies: graph model, reference backbones, synthetic generators."""

from .graph import Link, Topology
from .library import (
    nsfnet,
    geant2,
    gbn,
    abilene,
    by_name,
    TOPOLOGY_LIBRARY,
    DEFAULT_CAPACITY,
)
from .generators import synthetic_topology, variable_size_family, CAPACITY_TIERS
from .geo import (
    NODE_POSITIONS,
    haversine_km,
    edge_propagation_delay,
    with_geographic_delays,
)

__all__ = [
    "Link",
    "Topology",
    "nsfnet",
    "geant2",
    "gbn",
    "abilene",
    "by_name",
    "TOPOLOGY_LIBRARY",
    "DEFAULT_CAPACITY",
    "synthetic_topology",
    "variable_size_family",
    "CAPACITY_TIERS",
    "NODE_POSITIONS",
    "haversine_km",
    "edge_propagation_delay",
    "with_geographic_delays",
]
