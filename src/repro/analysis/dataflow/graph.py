"""SSA-style def–use graph of one recorded autodiff tape.

A recorded fused step (see :mod:`repro.analysis.dataflow.recorder`) becomes
a :class:`TapeGraph`: one :class:`TapeValue` per tape node (plus anonymous
scratch arrays that backward closures capture), each carrying shape/dtype,
its storage/alias class, the message-passing round it was defined in, and
its parents — the SSA def–use structure the RP6xx checks and the arena
planner consume.

**Program points.**  Forward definitions get sequential points ``0..N-1``
in execution order.  The backward pass unwinds the tape in reverse, so the
backward closure of the node defined at point ``p`` executes at point
``2N - 1 - p``: the whole fused step occupies points ``[0, 2N)`` and every
liveness question reduces to interval arithmetic on that single clock.

A value's buffer is live from its definition to its last read:

* forward reads happen at each consumer's definition point;
* a backward closure that *retains* the array (declared per op via
  ``Tensor._make(..., retains=...)``) reads it when that closure runs, at
  the mirrored point of its node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TapeValue", "TapeGraph"]


@dataclass
class TapeValue:
    """One SSA value: a tape node's output array (or captured scratch).

    Attributes:
        vid: SSA id == forward definition point (0-based, def order).
        op: Producing op name (``"matmul"``, ``"step_precomputed"``, ...);
            ``"<leaf>"`` for inputs/parameters, ``"<scratch>"`` suffix for
            closure-captured arrays with no tape node of their own.
        shape: Array shape.
        dtype: Array dtype string.
        nbytes: Array size in bytes.
        storage: Alias-class id — values whose arrays share underlying
            storage (views via reshape/transpose/slice) share this id.
        phase: Tape phase (``tape_mark`` label, e.g. ``"round/2"``) active
            at definition; ``""`` before the first mark.
        parents: vids of the tape parents (empty for leaves/scratch).
        is_leaf: True for values with no backward (inputs, parameters).
        retains: vids of the values whose arrays this node's backward
            closure reads (resolved from the op's ``retains=`` declaration).
        name: Optional human label (parameter names).
    """

    vid: int
    op: str
    shape: tuple[int, ...]
    dtype: str
    nbytes: int
    storage: int
    phase: str
    parents: tuple[int, ...] = ()
    is_leaf: bool = False
    retains: tuple[int, ...] = ()
    name: str | None = None
    #: Forward-read points (consumers' def points); filled by TapeGraph.
    uses: list[int] = field(default_factory=list)

    def label(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        where = f" @{self.phase}" if self.phase else ""
        return f"v{self.vid} = {self.op}{tag} {self.shape} {self.dtype}{where}"


class TapeGraph:
    """The def–use graph of one recorded forward+backward.

    Built incrementally by the recorder; :meth:`finalize` resolves forward
    uses and backward retention into liveness intervals.
    """

    def __init__(self) -> None:
        self.values: list[TapeValue] = []
        #: vid of the loss (backward root), set by the recorder.
        self.loss_vid: int | None = None
        #: vid of the model output (kept live alongside the loss).
        self.output_vid: int | None = None
        #: vid -> vids of nodes whose backward retains it (finalize()).
        self._retained_by: dict[int, list[int]] = {}
        #: storage id -> member vids (finalize()).
        self._storages: dict[int, list[int]] = {}

    # -- construction ----------------------------------------------------
    def add(self, value: TapeValue) -> TapeValue:
        assert value.vid == len(self.values)
        self.values.append(value)
        return value

    @property
    def num_points(self) -> int:
        """Total program points: N forward defs + N mirrored backward slots."""
        return 2 * len(self.values)

    def backward_point(self, vid: int) -> int:
        """The point at which ``vid``'s backward closure executes."""
        return self.num_points - 1 - vid

    # -- queries ----------------------------------------------------------
    def finalize(self) -> None:
        """Resolve use/retention/alias indexes from the edges (idempotent)."""
        self._retained_by = {}
        self._storages = {}
        for v in self.values:
            v.uses.clear()
        for v in self.values:
            self._storages.setdefault(v.storage, []).append(v.vid)
            for pid in v.parents:
                self.values[pid].uses.append(v.vid)
            for rid in v.retains:
                self._retained_by.setdefault(rid, []).append(v.vid)

    def alias_class(self, vid: int) -> list[int]:
        """All vids sharing ``vid``'s storage (including itself)."""
        return self._storages[self.values[vid].storage]

    def retained_by(self, vid: int) -> list[int]:
        """vids of the nodes whose backward closures read ``vid``'s array."""
        return self._retained_by.get(vid, [])

    def last_use(self, vid: int) -> int:
        """Last program point at which ``vid``'s *storage* is read.

        Covers forward consumers, backward closures that retained the
        array, and — because views share bytes — the same questions for
        every member of the alias class.
        """
        last = 0
        for member in self.alias_class(vid):
            value = self.values[member]
            for use in value.uses:
                last = max(last, use)
            for reader in self._retained_by.get(member, ()):
                last = max(last, self.backward_point(reader))
        return last

    def liveness(self) -> dict[int, tuple[int, int]]:
        """vid -> ``[first_def, last_use]`` interval over the alias class.

        Leaves (parameters, inputs) live for the whole timeline — they
        exist before the step and survive it — so arena planning excludes
        them via :attr:`TapeValue.is_leaf`.
        """
        out: dict[int, tuple[int, int]] = {}
        horizon = self.num_points - 1
        for v in self.values:
            if v.is_leaf:
                out[v.vid] = (0, horizon)
                continue
            members = self.alias_class(v.vid)
            start = min(members)  # first definition in the alias class
            out[v.vid] = (start, max(self.last_use(v.vid), v.vid))
        return out

    def reachable_from(self, vid: int) -> set[int]:
        """All ancestor vids of ``vid`` (inclusive) along parent edges."""
        seen: set[int] = set()
        stack = [vid]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.values[cur].parents)
        return seen

    def def_use_chain(self, vid: int, depth: int = 3) -> str:
        """A readable def–use chain for finding messages.

        Shows the value, its producing parents (to ``depth``), and its
        consumers — enough to locate the op in model code without a
        debugger.
        """
        value = self.values[vid]
        lines = [f"def  {value.label()}"]
        frontier = list(value.parents)
        for level in range(1, depth + 1):
            if not frontier:
                break
            labels = ", ".join(self.values[p].label() for p in frontier[:4])
            more = "" if len(frontier) <= 4 else f" (+{len(frontier) - 4} more)"
            lines.append(f"{'  ' * level}<- {labels}{more}")
            frontier = [g for p in frontier[:4] for g in self.values[p].parents]
        if value.uses:
            used = ", ".join(f"v{u}" for u in value.uses[:6])
            lines.append(f"used by {used} (forward)")
        readers = self._retained_by.get(vid, [])
        if readers:
            pts = ", ".join(
                f"v{r}@point {self.backward_point(r)}" for r in readers[:6]
            )
            lines.append(f"retained by backward of {pts}")
        return "\n  ".join(lines)

    def peak_bytes(self, include_leaves: bool = False) -> int:
        """Peak concurrent buffer footprint over the fused step.

        The maximum, over all program points, of the total bytes of live
        interior values — the quantity the arena planner flattens and
        RP604 budgets.  One storage (alias class) is counted once.
        """
        live = self.liveness()
        events: dict[int, int] = {}
        counted: set[int] = set()
        for v in self.values:
            if v.is_leaf and not include_leaves:
                continue
            if v.storage in counted:
                continue
            counted.add(v.storage)
            start, end = live[v.vid]
            events[start] = events.get(start, 0) + v.nbytes
            events[end + 1] = events.get(end + 1, 0) - v.nbytes
        peak = cur = 0
        for point in sorted(events):
            cur += events[point]
            peak = max(peak, cur)
        return peak

    def round_stats(self) -> dict[str, dict[str, int]]:
        """Per-phase buffer counts/bytes (defs attributed to their phase)."""
        stats: dict[str, dict[str, int]] = {}
        for v in self.values:
            if v.is_leaf:
                continue
            bucket = stats.setdefault(
                v.phase or "<pre>", {"buffers": 0, "bytes": 0}
            )
            bucket["buffers"] += 1
            bucket["bytes"] += v.nbytes
        return stats
