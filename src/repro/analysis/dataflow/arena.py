"""Arena memory planning over liveness intervals.

Given the first-def/last-use intervals of a set of buffers (from a recorded
tape, :mod:`repro.analysis.dataflow.recorder`, or the inference timeline in
:mod:`repro.core.plan`), :func:`plan_arena` assigns each buffer a byte
offset in one backing allocation by greedy interval-graph coloring: buffers
whose live ranges never overlap may share bytes, so the arena's total size
is the *peak* concurrent footprint rather than the sum of all buffers.

The plan is **verified, not trusted**: :meth:`ArenaPlan.verify` re-checks
every pair of time-overlapping buffers for byte-range disjointness and
returns the proof (pair counts + any violations) that the driver embeds in
the ``--format json`` payload and CI uploads as an artifact.  A planner bug
therefore cannot silently corrupt execution — it fails the build instead.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BufferInterval", "ArenaPlan", "ArenaPlanError", "plan_arena"]

#: Offsets are aligned to cache-line granularity so no two buffers ever
#: share a line (false sharing) and vector loads stay aligned.
DEFAULT_ALIGNMENT = 64


class ArenaPlanError(ValueError):
    """The planner produced (or was asked to verify) an unsound layout."""


@dataclass(frozen=True)
class BufferInterval:
    """One buffer's liveness: ``[start, end]`` inclusive, in program points.

    Attributes:
        name: Unique buffer name (e.g. ``"h_link/2"`` or ``"v17"``).
        nbytes: Buffer size in bytes.
        start: Program point of the first definition.
        end: Program point of the last use (inclusive).
    """

    name: str
    nbytes: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ArenaPlanError(f"buffer {self.name!r} has {self.nbytes} bytes")
        if self.end < self.start:
            raise ArenaPlanError(
                f"buffer {self.name!r} ends ({self.end}) before it starts "
                f"({self.start})"
            )

    def overlaps_time(self, other: "BufferInterval") -> bool:
        return self.start <= other.end and other.start <= self.end


@dataclass(frozen=True)
class ArenaPlan:
    """A verified offset assignment for a set of buffer intervals.

    Attributes:
        total_bytes: Size of the backing allocation.
        alignment: Every offset is a multiple of this.
        offsets: Buffer name -> byte offset.
        intervals: The input intervals (same order as given).
    """

    total_bytes: int
    alignment: int
    offsets: dict[str, int]
    intervals: tuple[BufferInterval, ...]

    def verify(self) -> dict:
        """Prove no two live-overlapping buffers share bytes.

        Returns:
            The proof record: counts of pairs checked, the subset that
            overlap in time, and (always empty for a sound plan) the
            violations.

        Raises:
            ArenaPlanError: If any live pair's byte ranges intersect, or a
                buffer falls outside the arena / off alignment.
        """
        violations: list[dict] = []
        live_pairs = 0
        n = len(self.intervals)
        for iv in self.intervals:
            off = self.offsets[iv.name]
            if off % self.alignment:
                raise ArenaPlanError(
                    f"buffer {iv.name!r} offset {off} breaks "
                    f"{self.alignment}-byte alignment"
                )
            if off < 0 or off + iv.nbytes > self.total_bytes:
                raise ArenaPlanError(
                    f"buffer {iv.name!r} [{off}, {off + iv.nbytes}) outside "
                    f"arena of {self.total_bytes} bytes"
                )
        for i in range(n):
            a = self.intervals[i]
            a_off = self.offsets[a.name]
            for j in range(i + 1, n):
                b = self.intervals[j]
                if not a.overlaps_time(b):
                    continue
                live_pairs += 1
                b_off = self.offsets[b.name]
                if a_off < b_off + b.nbytes and b_off < a_off + a.nbytes:
                    violations.append({
                        "a": a.name, "b": b.name,
                        "a_range": [a_off, a_off + a.nbytes],
                        "b_range": [b_off, b_off + b.nbytes],
                        "live_overlap": [max(a.start, b.start),
                                         min(a.end, b.end)],
                    })
        proof = {
            "buffers": n,
            "pairs_checked": n * (n - 1) // 2,
            "live_pairs": live_pairs,
            "violations": violations,
            "total_bytes": self.total_bytes,
            "alignment": self.alignment,
        }
        if violations:
            first = violations[0]
            raise ArenaPlanError(
                f"arena plan is unsound: {len(violations)} overlapping live "
                f"pair(s); first: {first['a']!r} {first['a_range']} vs "
                f"{first['b']!r} {first['b_range']} live together at points "
                f"{first['live_overlap']}"
            )
        return proof

    def to_json(self) -> dict:
        """The plan + proof as one JSON-ready object (the CI artifact)."""
        return {
            "total_bytes": self.total_bytes,
            "alignment": self.alignment,
            "buffers": [
                {
                    "name": iv.name,
                    "nbytes": iv.nbytes,
                    "offset": self.offsets[iv.name],
                    "live": [iv.start, iv.end],
                }
                for iv in self.intervals
            ],
            "proof": self.verify(),
        }


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def plan_arena(
    intervals: "list[BufferInterval] | tuple[BufferInterval, ...]",
    alignment: int = DEFAULT_ALIGNMENT,
) -> ArenaPlan:
    """Greedy interval-graph coloring: lowest non-conflicting aligned offset.

    Buffers are placed in order of (start, larger-first): for each buffer
    the candidate offset starts at 0 and is bumped past every already
    placed, time-overlapping buffer it would intersect, until a gap fits.
    Sorting by start keeps the scan linear-ish in practice; larger-first
    within a tie reduces fragmentation (classic best-fit-decreasing).

    The returned plan has already passed :meth:`ArenaPlan.verify`.

    Raises:
        ArenaPlanError: On duplicate names or a verification failure.
    """
    intervals = tuple(intervals)
    names = [iv.name for iv in intervals]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ArenaPlanError(f"duplicate buffer names: {dupes}")

    order = sorted(intervals, key=lambda iv: (iv.start, -iv.nbytes, iv.name))
    offsets: dict[str, int] = {}
    placed: list[BufferInterval] = []
    total = 0
    for iv in order:
        conflicts = sorted(
            ((offsets[p.name], offsets[p.name] + p.nbytes)
             for p in placed if p.overlaps_time(iv)),
            key=lambda r: r[0],
        )
        offset = 0
        for lo, hi in conflicts:
            if offset + iv.nbytes <= lo:
                break  # fits in the gap before this conflict
            offset = max(offset, _align_up(hi, alignment))
        offsets[iv.name] = offset
        placed.append(iv)
        total = max(total, offset + iv.nbytes)

    plan = ArenaPlan(
        total_bytes=_align_up(total, alignment) if total else 0,
        alignment=alignment,
        offsets=offsets,
        intervals=intervals,
    )
    plan.verify()
    return plan
