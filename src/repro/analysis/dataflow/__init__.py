"""Tape dataflow analysis: SSA liveness, alias classes, arena planning.

The front half of plan-compiled execution (ROADMAP: "Scale to 100–300-node
topologies"): a symbolic recorder turns one fused forward+backward of the
real RouteNet into an SSA-style def–use graph with per-buffer shape/dtype,
alias/view classes and first-def/last-use liveness intervals per
message-passing round.  On top of that graph:

* the RP6xx rules (:mod:`~repro.analysis.dataflow.checks`) prove the tape
  free of gradient-corrupting in-place writes (RP601), dead stores
  (RP602), scope-escaping buffers (RP603) and arena-size regressions
  (RP604);
* the arena planner (:mod:`~repro.analysis.dataflow.arena`) colors the
  liveness interval graph into a verified offset layout whose proof ships
  in the driver's JSON payload, and whose inference twin
  (:func:`repro.core.plan.inference_arena_intervals`) backs the serving
  fast path's buffers.
"""

from .arena import ArenaPlan, ArenaPlanError, BufferInterval, plan_arena
from .checks import check_tape, run_dataflow, tape_arena_plan, tape_intervals
from .graph import TapeGraph, TapeValue
from .recorder import RecordedStep, TapeRecorder, record_fused_step

__all__ = [
    "ArenaPlan",
    "ArenaPlanError",
    "BufferInterval",
    "plan_arena",
    "TapeGraph",
    "TapeValue",
    "TapeRecorder",
    "RecordedStep",
    "record_fused_step",
    "check_tape",
    "run_dataflow",
    "tape_arena_plan",
    "tape_intervals",
]
