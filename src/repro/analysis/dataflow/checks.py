"""The RP6xx dataflow checks over the recorded RouteNet tape.

One entry point, :func:`run_dataflow`, wired into the driver
(``python -m repro.analysis``): for each paper topology family it records a
real fused forward+backward (:func:`record_fused_step`), then discharges:

* **RP601** — in-place write to a buffer whose alias class is still live
  (a retained array's fingerprint changed before its backward ran); would
  silently corrupt the gradients.
* **RP602** — dead store: a tape value never read by the loss or any
  gradient path; wasted compute and memory every step.
* **RP603** — buffer escaped its tape scope: an interior array survived
  tape teardown (held via closure/global/cache), violating the
  ``_GradBufferPool`` discipline.
* **RP604** — peak-arena-bytes regression: the planned arena for the
  recorded tape outgrew the committed per-family budget in
  ``BENCH_training.json``.

It also emits the verified :class:`~repro.analysis.dataflow.arena.ArenaPlan`
per family — both the training-tape plan and the inference plan that
:mod:`repro.serving.fastpath` executes — as the ``--format json`` payload's
``dataflow`` section (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..lint import Violation
from ..shapes import paper_signatures
from .arena import ArenaPlan, BufferInterval, plan_arena
from .graph import TapeGraph
from .recorder import RecordedStep, record_fused_step

__all__ = ["run_dataflow", "tape_intervals", "tape_arena_plan", "check_tape"]

#: Allowed growth over the committed budget before RP604 fires.  The tape
#: structure is deterministic for fixed dims, so this only absorbs benign
#: planner-ordering changes, not real regressions.
BUDGET_HEADROOM = 1.10


def tape_intervals(graph: TapeGraph) -> list[BufferInterval]:
    """One liveness interval per interior storage class of the tape.

    Views share bytes, so an alias class contributes a single buffer sized
    by its largest member.  Leaves (parameters, inputs) outlive the step
    and are excluded; zero-byte values (empty timesteps) need no arena.
    """
    live = graph.liveness()
    by_storage: dict[int, BufferInterval] = {}
    for v in graph.values:
        if v.is_leaf or v.nbytes == 0:
            continue
        start, end = live[v.vid]
        prev = by_storage.get(v.storage)
        if prev is None:
            by_storage[v.storage] = BufferInterval(
                name=f"v{v.vid}", nbytes=v.nbytes, start=start, end=end
            )
        elif v.nbytes > prev.nbytes:
            by_storage[v.storage] = BufferInterval(
                name=prev.name, nbytes=v.nbytes, start=start, end=end
            )
    return list(by_storage.values())


def tape_arena_plan(graph: TapeGraph) -> ArenaPlan:
    """The verified arena plan for one recorded fused step."""
    return plan_arena(tape_intervals(graph))


def _tape_path(family: str) -> str:
    """Pseudo-path for findings that live on a recorded tape, not a file."""
    return f"<tape:{family}>"


def check_tape(step: RecordedStep, family: str) -> list[Violation]:
    """RP601/RP602/RP603 over one recorded step (RP604 needs budgets)."""
    graph = step.graph
    findings: list[Violation] = []

    for mutation in step.mutations:
        owner = graph.values[mutation.owner_vid]
        findings.append(Violation(
            path=_tape_path(family), line=0, col=0, code="RP601",
            message=(
                f"in-place write to live buffer v{mutation.retained_vid}: "
                f"retained by the backward of {owner.label()} (runs at point "
                f"{graph.backward_point(owner.vid)}) but its contents changed "
                f"first (crc 0x{mutation.crc_at_def:08x} -> "
                f"0x{mutation.crc_at_use:08x}); gradients computed from the "
                f"overwritten values are silently wrong.\n  "
                + graph.def_use_chain(mutation.retained_vid)
            ),
        ))

    if graph.loss_vid is not None:
        alive = graph.reachable_from(graph.loss_vid)
        if graph.output_vid is not None:
            alive |= graph.reachable_from(graph.output_vid)
        for v in graph.values:
            if v.is_leaf or v.vid in alive:
                continue
            if any(u in alive for u in v.uses):
                continue  # feeds a live value through a non-parent edge
            if any(r in alive for r in graph.retained_by(v.vid)):
                continue  # read by a live node's backward (e.g. scratch)
            findings.append(Violation(
                path=_tape_path(family), line=0, col=0, code="RP602",
                message=(
                    f"dead store: {v.label()} is never read by the loss or "
                    f"any gradient path; the op (and its backward buffers) "
                    f"is wasted work every step.\n  "
                    + graph.def_use_chain(v.vid)
                ),
                severity="warning",
            ))

    for vid in step.escaped:
        v = graph.values[vid]
        findings.append(Violation(
            path=_tape_path(family), line=0, col=0, code="RP603",
            message=(
                f"buffer escaped its tape scope: {v.label()} is still "
                f"referenced after the tape was torn down (closure, global "
                f"or cache holds it), so its {v.nbytes} bytes leak across "
                f"steps and the arena cannot reclaim the slot.\n  "
                + graph.def_use_chain(vid)
            ),
        ))

    return findings


def _load_budgets(bench_path: Path) -> dict[str, dict]:
    if not bench_path.exists():
        return {}
    try:
        payload = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    arena = payload.get("arena") or {}
    budgets = arena.get("budgets") or {}
    return budgets if isinstance(budgets, dict) else {}


def run_dataflow(
    repo_root: "Path | None" = None,
    families: "dict[str, object] | None" = None,
) -> tuple[list[Violation], dict]:
    """Record the fused step for each paper family and run RP601–RP604.

    Args:
        repo_root: Repository root holding ``BENCH_training.json`` (the
            RP604 budgets); ``None`` skips the budget comparison.
        families: ``{name: TopologySignature}`` override (tests); defaults
            to :func:`~repro.analysis.shapes.paper_signatures`.

    Returns:
        ``(findings, payload)`` — the payload lands under ``"dataflow"``
        in the driver's JSON output and is uploaded as the ArenaPlan CI
        artifact.
    """
    from ...core import HyperParams, RouteNet
    from ...core.plan import inference_arena_intervals, plan_for

    if families is None:
        families = paper_signatures()
    budgets = (
        _load_budgets(repo_root / "BENCH_training.json") if repo_root else {}
    )

    findings: list[Violation] = []
    payload: dict[str, dict] = {"families": {}, "arena_plans": {}}
    model = RouteNet(HyperParams(), seed=0)
    targets = model.hparams.readout_targets

    for family, sig in families.items():
        inputs = sig.model_input()
        step = record_fused_step(
            model, inputs, np.zeros((sig.num_paths, targets))
        )
        findings.extend(check_tape(step, family))

        tape_plan = tape_arena_plan(step.graph)
        infer_plan = plan_arena(
            inference_arena_intervals(model, plan_for(inputs))
        )
        payload["arena_plans"][family] = {
            "tape": tape_plan.to_json(),
            "inference": infer_plan.to_json(),
        }
        stats = {
            "values": len(step.graph.values),
            "program_points": step.graph.num_points,
            "peak_tape_bytes": step.graph.peak_bytes(),
            "tape_arena_bytes": tape_plan.total_bytes,
            "inference_arena_bytes": infer_plan.total_bytes,
            "rounds": step.graph.round_stats(),
        }
        payload["families"][family] = stats

        budget = (budgets.get(family) or {}).get("tape_arena_bytes")
        if budget:
            ceiling = int(budget * BUDGET_HEADROOM)
            stats["budget_tape_arena_bytes"] = int(budget)
            if tape_plan.total_bytes > ceiling:
                findings.append(Violation(
                    path="BENCH_training.json", line=0, col=0, code="RP604",
                    message=(
                        f"peak-arena-bytes regression on {family}: the "
                        f"planned tape arena needs "
                        f"{tape_plan.total_bytes} bytes, over the committed "
                        f"budget of {int(budget)} (+10% headroom = "
                        f"{ceiling}); re-run "
                        f"benchmarks/bench_training_throughput.py and commit "
                        f"the new budget if the growth is intentional"
                    ),
                ))

    return findings, payload
