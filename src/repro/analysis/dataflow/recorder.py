"""Symbolic tape recorder: one fused forward+backward → a :class:`TapeGraph`.

Same interception trick as the shape checker (:mod:`repro.analysis.shapes`):
instead of swapping the op layer for abstract twins, the recorder wraps the
single funnel every op goes through — ``Tensor._make`` — so the *real*
model runs with real values while every node's structure (op, shapes,
storage aliasing, backward retention) is captured on the side.  A
``tape_mark`` observer segments the recording into message-passing rounds.

On top of the structural capture the recorder adds two runtime obligations:

* **Retention fingerprints** (RP601): every array a backward closure
  declares it will read (``Tensor._make(..., retains=...)``) is
  checksummed at node creation; :meth:`TapeRecorder.verify_retained`
  re-checksums after ``backward()`` ran, so any in-place write to a buffer
  whose alias class was still live — which would have silently corrupted
  the gradients — is caught with the full def–use chain.
* **Escape tracking** (RP603): every interior value's array is weakly
  referenced; after the tape is dropped, arrays still alive are buffers
  that escaped their tape scope (held via a closure, a global, a cache)
  in violation of the ``_GradBufferPool`` discipline.
"""

from __future__ import annotations

import gc
import weakref
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from ...nn.tensor import Tensor, set_tape_observer
from .graph import TapeGraph, TapeValue

__all__ = ["TapeRecorder", "RecordedStep", "record_fused_step"]


def _op_name(backward: "Callable[..., None] | None") -> str:
    """Op name from the backward closure's qualname (see sanitize.py)."""
    if backward is None:
        return "<leaf>"
    qualname = getattr(backward, "__qualname__", "")
    owner = qualname.split(".<locals>")[0]
    return owner.split(".")[-1].strip("_") or "<unknown>"


def _crc(arr: np.ndarray) -> int:
    data = arr if arr.flags.c_contiguous else np.ascontiguousarray(arr)
    return zlib.crc32(data.tobytes())


@dataclass
class Mutation:
    """A retained buffer whose contents changed before its backward ran."""

    owner_vid: int
    retained_vid: int
    crc_at_def: int
    crc_at_use: int


class TapeRecorder:
    """Builds a :class:`TapeGraph` while real model code executes.

    Use via :func:`record_fused_step` for the standard fused-step capture,
    or drive :meth:`recording` manually for custom scopes.
    """

    def __init__(self) -> None:
        self.graph = TapeGraph()
        self._phase = ""
        #: id(array) -> vid, valid while the array is pinned below.
        self._vid_by_array: dict[int, int] = {}
        #: id(root array) -> storage class id.
        self._storage_ids: dict[int, int] = {}
        self._next_storage = 0
        #: Strong refs keeping every seen array alive during recording so
        #: id()s cannot be recycled and fingerprints stay checkable.
        self._pins: list[np.ndarray] = []
        #: (vid, weakref to the value's array) for escape detection.
        self._escape_refs: list[tuple[int, weakref.ref]] = []
        #: Retention fingerprints: (owner_vid, retained_vid, ref, crc).
        self._fingerprints: list[tuple[int, int, weakref.ref, int]] = []

    # -- array bookkeeping ------------------------------------------------
    @staticmethod
    def _root(arr: np.ndarray) -> np.ndarray:
        while isinstance(arr.base, np.ndarray):
            arr = arr.base
        return arr

    def _storage_for(self, arr: np.ndarray) -> int:
        root = self._root(arr)
        key = id(root)
        storage = self._storage_ids.get(key)
        if storage is None:
            storage = self._next_storage
            self._next_storage += 1
            self._storage_ids[key] = storage
            self._pins.append(root)
        return storage

    def _register(
        self,
        arr: np.ndarray,
        op: str,
        parents: tuple[int, ...] = (),
        is_leaf: bool = False,
        name: str | None = None,
    ) -> int:
        vid = len(self.graph.values)
        value = TapeValue(
            vid=vid,
            op=op,
            shape=tuple(arr.shape),
            dtype=str(arr.dtype),
            nbytes=int(arr.nbytes),
            storage=self._storage_for(arr),
            phase=self._phase,
            parents=parents,
            is_leaf=is_leaf,
            name=name,
        )
        self.graph.add(value)
        self._vid_by_array[id(arr)] = vid
        self._pins.append(arr)
        self._escape_refs.append((vid, weakref.ref(arr)))
        return vid

    def _vid_for(self, tensor_in: Tensor) -> int:
        """The vid of a parent tensor's array, registering leaves lazily."""
        vid = self._vid_by_array.get(id(tensor_in.data))
        if vid is None:
            vid = self._register(
                tensor_in.data,
                op="<leaf>",
                is_leaf=True,
                name=tensor_in.name,
            )
        return vid

    # -- interception -----------------------------------------------------
    def _observe(self, out: Tensor, parents: tuple[Tensor, ...],
                 backward: "Callable[..., None]") -> None:
        op = _op_name(backward)
        parent_vids = tuple(self._vid_for(p) for p in parents)
        vid = self._register(out.data, op=op, parents=parent_vids)
        retain_vids = []
        for arr in out.backward_retains:
            rid = self._vid_by_array.get(id(arr))
            if rid is None:
                root_id = id(self._root(arr))
                rid = self._vid_by_array.get(root_id)
            if rid is None:
                # Closure-captured scratch with no tape node of its own
                # (e.g. the fused GRU's gate activations): give it an
                # anonymous SSA value so liveness and RP601 cover it too.
                rid = self._register(arr, op=f"{op}.<scratch>")
            retain_vids.append(rid)
            self._fingerprints.append(
                (vid, rid, weakref.ref(arr), _crc(arr))
            )
        self.graph.values[vid].retains = tuple(retain_vids)

    def _on_mark(self, label: str) -> None:
        self._phase = label

    @contextmanager
    def recording(self) -> Iterator["TapeRecorder"]:
        """Intercept ``Tensor._make`` + ``tape_mark`` inside the block.

        Process-global like the shape checker's patch — do not record
        concurrently with other tape work.
        """
        original = Tensor.__dict__["_make"].__func__

        def recorded_make(
            data: np.ndarray,
            parents: "Iterable[Tensor]",
            backward: "Callable[[np.ndarray], None]",
            retains: "tuple[np.ndarray, ...] | None" = None,
        ) -> Tensor:
            parents = tuple(parents)
            out = original(data, parents, backward, retains)
            self._observe(out, parents, backward)
            return out

        Tensor._make = staticmethod(recorded_make)
        set_tape_observer(self._on_mark)
        try:
            yield self
        finally:
            Tensor._make = staticmethod(original)
            set_tape_observer(None)

    # -- post-hoc obligations ---------------------------------------------
    def mark_loss(self, loss: Tensor) -> None:
        self.graph.loss_vid = self._vid_by_array.get(id(loss.data))

    def mark_output(self, out: Tensor) -> None:
        self.graph.output_vid = self._vid_by_array.get(id(out.data))

    def verify_retained(self) -> list[Mutation]:
        """Re-checksum every retained array (call after ``backward()``).

        Returns:
            One :class:`Mutation` per retained buffer whose contents
            changed between node creation and now — an in-place write to a
            live alias class (RP601).
        """
        mutations = []
        for owner, retained, ref, crc in self._fingerprints:
            arr = ref()
            if arr is None:
                continue  # died with its closure before we could recheck
            now = _crc(arr)
            if now != crc:
                mutations.append(Mutation(owner, retained, crc, now))
        return mutations

    def release(self) -> None:
        """Drop every strong reference the recorder holds.

        After this (and after the caller drops its own tensors), interior
        arrays still alive are tape escapes — see :meth:`escaped_values`.
        """
        self._pins.clear()
        self._vid_by_array.clear()
        self._storage_ids.clear()

    def escaped_values(self) -> list[int]:
        """vids of interior values whose arrays outlived the tape.

        Only meaningful after :meth:`release`, dropping the recorded
        output/loss tensors, and a ``gc.collect()`` — leaves (parameters,
        inputs) legitimately survive and are excluded.
        """
        gc.collect()
        return [
            vid for vid, ref in self._escape_refs
            if ref() is not None and not self.graph.values[vid].is_leaf
        ]


@dataclass
class RecordedStep:
    """Everything :func:`record_fused_step` captured for one fused step."""

    graph: TapeGraph
    mutations: list[Mutation]
    escaped: list[int]


def record_fused_step(
    model: "object",
    inputs: "object",
    targets: np.ndarray,
    between_forward_and_backward: "Callable[[Tensor], None] | None" = None,
) -> RecordedStep:
    """Record one real fused training step of ``model`` on ``inputs``.

    Runs ``model.forward`` + Huber loss + ``loss.backward()`` under the
    recorder, then discharges the runtime obligations: retention
    fingerprints (RP601) and tape-escape tracking (RP603).

    Args:
        model: A :class:`~repro.core.RouteNet` (or anything with the same
            forward contract).
        inputs: The :class:`~repro.core.ModelInput` to run.
        targets: (P, targets) regression targets for the loss.
        between_forward_and_backward: Test hook invoked with the loss
            tensor after the forward pass and before ``backward()`` —
            where an optimizer stepping early (the classic RP601 injection)
            would run.

    Returns:
        A :class:`RecordedStep`; the tape itself is torn down before
        return so escape detection is already resolved.
    """
    from ...training.loss import huber_loss

    recorder = TapeRecorder()
    with recorder.recording():
        out = model.forward(inputs, training=False)
        loss = huber_loss(out, targets)
        recorder.mark_output(out)
        recorder.mark_loss(loss)
        if between_forward_and_backward is not None:
            between_forward_and_backward(loss)
        loss.backward()
    mutations = recorder.verify_retained()
    recorder.graph.finalize()
    # Tear the tape down exactly like a training step would: drop every
    # strong reference, then ask what survived.
    for param in getattr(model, "parameters", lambda: [])():
        param.zero_grad()
    recorder.release()
    del out, loss
    escaped = recorder.escaped_values()
    return RecordedStep(
        graph=recorder.graph, mutations=mutations, escaped=escaped
    )
