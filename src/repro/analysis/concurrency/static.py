"""Static lockset / guardedness proofs (RP5xx).

PR 6–7 made threads load-bearing: ``ServingService`` coalesces batches
across worker threads behind per-shard ``Condition`` objects, the
prediction cache is a shared LRU, and ``PersistentPool`` keeps restart
bookkeeping the parent mutates while workers run.  This pass proves — in
the Eraser lockset tradition, but fully static — that every access to
thread-shared state happens under a consistent lockset:

* **RP501** — an attribute is guarded by a lock on some interprocedural
  paths but accessed without it on others (the classic lost-update /
  torn-read shape).
* **RP502** — a write with an *empty* lockset reachable from two or more
  thread roots: no lock anywhere, and at least two threads can race on
  it.  The flip side is a *single-writer proof*: an unguarded write
  reachable from exactly one root is legal (the per-shard ``InputCache``
  and the parent-only pool bookkeeping rely on this).
* **RP503** — a blocking call (``Condition.wait`` on a *different*
  condition, ``join``, ``queue.get/put``, ``time.sleep``, ``open``)
  while holding a lock: a latency cliff at best, a deadlock ingredient
  at worst.
* **RP504** — a cycle in the derived lock-order graph: two paths acquire
  the same locks in opposite orders.

Mechanics
---------

**Thread roots.**  Analysis starts at (1) every ``threading.Thread(
target=...)`` target, (2) every *public* method of a lock-owning class
(owning a lock declares concurrency intent: public methods are the
surface other threads call), and (3) every ``Condition.wait`` loop body.
Entry locksets are propagated interprocedurally over the existing
:class:`~repro.analysis.flow.callgraph.CallGraph`: a worklist of
``(function, entry-lockset)`` contexts, with call sites matched to
resolved edges by source position — so a helper called both with and
without a lock held is analysed in both contexts, and every finding
carries the full root→access call chain like RP2xx.

**Names, not instances.**  Locks are identified by their owning-class
attribute (``ServingService._stats_lock``); a list comprehension of
locks (``self._conds = [tsan.make_condition() for _ in ...]``) collapses
to one *family* name ``ServingService._conds[]``.  The collapse is the
pass's documented precision limit: two distinct shard conditions are one
static name, so a cross-shard race *between family members* is invisible
here — the instance-precise dynamic checker
(:mod:`repro.analysis.concurrency.runtime`) covers that gap.

**Bindings are not accesses.**  Taking a reference to a shard's deque
(``queue = self._queues[shard]``) is a binding; calling ``queue.append``
or ``len(queue)`` is the access.  This lets the common idiom "bind
outside, touch inside the lock" pass without false positives while still
charging every element operation to the container's lockset.

Severity mirrors RP4xx: **errors** inside the threaded serving/runner
modules, **warnings** elsewhere.  ``# repro-lint: disable=RP5xx``
suppressions go through the shared :func:`~repro.analysis.flow.base.emit`
path, so the RP008 stale-suppression audit covers them.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from ..lint import Violation
from ..flow.base import emit
from ..flow.callgraph import (
    _MUTATING_METHODS,
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _dotted,
)

__all__ = ["ThreadRoot", "check_concurrency", "find_thread_roots",
           "run_concurrency"]

#: Canonical lock constructors -> kind.  The ``repro.tsan`` names are the
#: post-alias canonical forms kept as belt-and-braces: the index normally
#: chases ``tsan.make_lock`` all the way to ``threading.Lock``.
_LOCK_CTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "repro.tsan.make_lock": "lock",
    "repro.tsan.make_rlock": "rlock",
    "repro.tsan.make_condition": "condition",
}
_QUEUE_CTORS = {
    "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
    "queue.PriorityQueue", "multiprocessing.Queue",
}
#: Internally-synchronized (or inherently per-thread, for ``local``)
#: objects: no access tracking, only blocking-call checks
#: (``Event.wait``, ``Queue.get/put``).
_SAFE_CTORS = (
    {"threading.Event", "threading.Barrier", "threading.local"}
    | _QUEUE_CTORS
)
#: Element constructors that make a list comprehension a *sync container*
#: (elements are shared objects accessed through bindings, the list itself
#: is frozen after ``__init__``).
_SYNC_ELEMENT_CTORS = {"collections.deque"} | _QUEUE_CTORS

_THREAD_CLASS = "threading.Thread"

#: Thread-shared classes analysed even without owning a lock: their
#: single-writer discipline is *proved* by the RP502 root count rather
#: than assumed.
_SHARED_EXTRA = ("repro.serving.cache.InputCache",)

#: Modules where RP5xx findings are errors (the threaded serving/pool
#: set the ISSUE gates on); warnings elsewhere.
_STRICT_PREFIXES = ("repro.serving", "repro.runner")

#: Dunders that are public entry points despite the underscore.
_PUBLIC_DUNDERS = {"__enter__", "__exit__", "__len__", "__contains__",
                   "__iter__", "__call__", "__getitem__", "__setitem__"}

#: Simple dotted calls that block.
_BLOCKING_SIMPLE = {"time.sleep": "time.sleep", "open": "open()"}
#: ``.join`` receivers that are string/path machinery, not threads.
_JOIN_EXEMPT_PREFIXES = ("os.", "posixpath.", "ntpath.", "shutil.",
                        "str.", "bytes.")

#: Interprocedural context cap (function × entry-lockset pairs).
_MAX_CONTEXTS = 4000


@dataclass(frozen=True)
class ThreadRoot:
    """One function another thread can be executing."""

    qualname: str
    reason: str  #: ``thread-target`` | ``public-method`` | ``condition-wait``


@dataclass
class _SharedClass:
    """Lock/attr classification for one thread-shared class."""

    qualname: str
    module: str
    locks: dict[str, str] = field(default_factory=dict)     #: attr -> lock name
    lock_kinds: dict[str, str] = field(default_factory=dict)  #: lock name -> kind
    families: set[str] = field(default_factory=set)         #: family attrs
    sync_containers: set[str] = field(default_factory=set)
    safe: set[str] = field(default_factory=set)
    queues: set[str] = field(default_factory=set)

    def lock_name(self, attr: str) -> str | None:
        return self.locks.get(attr)


@dataclass(frozen=True)
class _Access:
    cls: str
    attr: str
    kind: str  #: "read" | "write"
    line: int
    col: int
    fn: str
    lockset: frozenset


@dataclass(frozen=True)
class _Blocking:
    fn: str
    line: int
    col: int
    desc: str
    held: tuple


@dataclass(frozen=True)
class _Acquire:
    lock: str
    held_before: tuple
    fn: str
    line: int


# ---------------------------------------------------------------------------
# discovery
# ---------------------------------------------------------------------------

def _ctor_kind(index: ProjectIndex, module: str, call: ast.expr,
               table: dict[str, str]) -> str | None:
    if not isinstance(call, ast.Call):
        return None
    written = _dotted(call.func)
    if written is None:
        return None
    canonical = index.resolve(written, module)
    return table.get(canonical) if isinstance(table, dict) else (
        canonical if canonical in table else None)


def _discover_shared(index: ProjectIndex) -> dict[str, _SharedClass]:
    """Classify every attribute of every class that owns a lock."""
    table: dict[str, _SharedClass] = {}
    for info in index.modules.values():
        for cls in info.classes.values():
            qual = f"{info.name}.{cls.name}"
            sc = _SharedClass(qualname=qual, module=info.name)
            for meth_qual in cls.methods.values():
                fn = index.lookup_function(meth_qual)
                if fn is None or isinstance(fn.node, ast.Lambda):
                    continue
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Assign):
                        targets, value = node.targets, node.value
                    elif isinstance(node, ast.AnnAssign) and node.value is not None:
                        targets, value = [node.target], node.value
                    else:
                        continue
                    for target in targets:
                        if not (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            continue
                        _classify_attr(index, info.name, sc, target.attr, value)
            if sc.locks or qual in _SHARED_EXTRA:
                table[qual] = sc
    # Inherit lock/attr classifications from shared bases (lock names keep
    # the defining class so base-method and subclass-method locksets agree).
    for info in index.modules.values():
        for cls in info.classes.values():
            qual = f"{info.name}.{cls.name}"
            for base in cls.bases:
                parent = table.get(index.resolve(base, info.name))
                if parent is None:
                    continue
                child = table.setdefault(
                    qual, _SharedClass(qualname=qual, module=info.name))
                for attr, name in parent.locks.items():
                    child.locks.setdefault(attr, name)
                child.lock_kinds.update(parent.lock_kinds)
                child.families |= parent.families
                child.sync_containers |= parent.sync_containers
                child.safe |= parent.safe
                child.queues |= parent.queues
    return table


def _classify_attr(index: ProjectIndex, module: str, sc: _SharedClass,
                   attr: str, value: ast.expr) -> None:
    kind = _ctor_kind(index, module, value, _LOCK_CTORS)
    if kind is not None:
        name = f"{sc.qualname}.{attr}"
        sc.locks[attr] = name
        sc.lock_kinds[name] = kind
        return
    if isinstance(value, ast.Call):
        written = _dotted(value.func)
        canonical = index.resolve(written, module) if written else ""
        if canonical in _SAFE_CTORS:
            sc.safe.add(attr)
            if canonical in _QUEUE_CTORS:
                sc.queues.add(attr)
        return
    if isinstance(value, ast.ListComp):
        elt_kind = _ctor_kind(index, module, value.elt, _LOCK_CTORS)
        if elt_kind is not None:
            name = f"{sc.qualname}.{attr}[]"
            sc.locks[attr] = name
            sc.lock_kinds[name] = elt_kind
            sc.families.add(attr)
            return
        if isinstance(value.elt, ast.Call):
            written = _dotted(value.elt.func)
            if written and index.resolve(written, module) in _SYNC_ELEMENT_CTORS:
                sc.sync_containers.add(attr)


def find_thread_roots(index: ProjectIndex,
                      shared: dict[str, _SharedClass] | None = None,
                      ) -> list[ThreadRoot]:
    """Every function some thread other than the caller's may execute."""
    if shared is None:
        shared = _discover_shared(index)
    roots: dict[str, ThreadRoot] = {}

    def add(qualname: str | None, reason: str) -> None:
        if qualname is not None and qualname not in roots:
            roots[qualname] = ThreadRoot(qualname=qualname, reason=reason)

    for info in index.modules.values():
        for fn in info.functions.values():
            if isinstance(fn.node, ast.Lambda):
                continue
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                written = _dotted(call.func)
                if written is None:
                    continue
                if index.resolve(written, info.name) != _THREAD_CLASS:
                    continue
                target_expr = None
                for kw in call.keywords:
                    if kw.arg == "target":
                        target_expr = kw.value
                if target_expr is None and len(call.args) > 1:
                    target_expr = call.args[1]
                if target_expr is None:
                    continue
                dotted = _dotted(target_expr)
                if dotted is None:
                    continue
                if dotted.startswith("self.") and fn.class_name is not None:
                    meth = dotted.split(".")[1]
                    resolved = index._method_via_bases(info, fn.class_name, meth)
                    add(resolved.qualname if resolved else None, "thread-target")
                else:
                    target = index.lookup_function(
                        index.resolve(dotted, info.name))
                    add(target.qualname if target else None, "thread-target")

    for sc in shared.values():
        if not sc.locks:
            continue
        cls = index.class_of(sc.qualname)
        if cls is None:
            continue
        conds = {a for a, n in sc.locks.items()
                 if sc.lock_kinds.get(n) == "condition"}
        for name, meth_qual in cls.methods.items():
            fn = index.lookup_function(meth_qual)
            if fn is None:
                continue
            if not name.startswith("_") or name in _PUBLIC_DUNDERS:
                add(fn.qualname, "public-method")
            elif conds and not isinstance(fn.node, ast.Lambda):
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Call) \
                            and isinstance(node.func, ast.Attribute) \
                            and node.func.attr in ("wait", "wait_for"):
                        add(fn.qualname, "condition-wait")
                        break
    return sorted(roots.values(), key=lambda r: r.qualname)


# ---------------------------------------------------------------------------
# per-context body walk
# ---------------------------------------------------------------------------

class _LockWalker(ast.NodeVisitor):
    """Walk one function body under one entry lockset."""

    def __init__(self, pass_: "_ConcurrencyPass", fn: FunctionInfo,
                 info: ModuleInfo, sc: _SharedClass | None,
                 entry: frozenset) -> None:
        self.p = pass_
        self.fn = fn
        self.info = info
        self.sc = sc
        self.held: list[str] = sorted(entry)
        #: local name -> ("lock", name) | ("elem", attr) | ("struct", attr)
        self.aliases: dict[str, tuple] = {}
        #: (line, col) -> lockset held at that call site.
        self.calls: dict[tuple[int, int], frozenset] = {}
        self.in_init = sc is not None and fn.class_name is not None and \
            fn.qualname.rsplit(".", 1)[-1] in ("__init__", "__post_init__")

    # -- classification helpers ----------------------------------------
    def _self_attr(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return expr.attr
        return None

    def _lock_of(self, expr: ast.expr) -> str | None:
        """Lock name of an expression, or None (families via subscript)."""
        if self.sc is not None:
            attr = self._self_attr(expr)
            if attr in self.sc.locks and attr not in self.sc.families:
                return self.sc.locks[attr]
            if isinstance(expr, ast.Subscript):
                inner = self._self_attr(expr.value)
                if inner in self.sc.locks and inner in self.sc.families:
                    return self.sc.locks[inner]
        if isinstance(expr, ast.Name):
            alias = self.aliases.get(expr.id)
            if alias is not None and alias[0] == "lock":
                return alias[1]
        return None

    def _elem_of(self, expr: ast.expr) -> str | None:
        """Sync-container attr whose *element* this expression denotes."""
        if isinstance(expr, ast.Subscript) and self.sc is not None:
            attr = self._self_attr(expr.value)
            if attr in self.sc.sync_containers:
                return attr
        if isinstance(expr, ast.Name):
            alias = self.aliases.get(expr.id)
            if alias is not None and alias[0] == "elem":
                return alias[1]
        return None

    def _tracked_data(self, attr: str | None) -> bool:
        """Is ``self.<attr>`` plain shared data (tracked read/write)?"""
        if attr is None or self.sc is None:
            return False
        if attr in self.sc.locks or attr in self.sc.safe \
                or attr in self.sc.sync_containers:
            return False
        cls = self.p.index.class_of(self.sc.qualname)
        if cls is not None and attr in cls.methods:
            return False
        return True

    # -- recording ------------------------------------------------------
    def _access(self, attr: str, kind: str, node: ast.AST) -> None:
        if self.sc is None or self.in_init:
            return
        self.p.record_access(_Access(
            cls=self.sc.qualname, attr=attr, kind=kind,
            line=node.lineno, col=node.col_offset,
            fn=self.fn.qualname, lockset=frozenset(self.held)))

    def _blocking(self, node: ast.AST, desc: str,
                  exempt: str | None = None) -> None:
        others = [h for h in self.held if h != exempt]
        if others:
            self.p.record_blocking(_Blocking(
                fn=self.fn.qualname, line=node.lineno, col=node.col_offset,
                desc=desc, held=tuple(others)), self.info)

    # -- with: lock acquisition -----------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired = 0
        for item in node.items:
            lock = self._lock_of(item.context_expr)
            if lock is None:
                self.visit(item.context_expr)
                continue
            self.p.record_acquire(_Acquire(
                lock=lock, held_before=tuple(self.held),
                fn=self.fn.qualname, line=item.context_expr.lineno), self.info)
            self.held.append(lock)
            acquired += 1
            if isinstance(item.optional_vars, ast.Name):
                self.aliases[item.optional_vars.id] = ("lock", lock)
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(acquired):
            self.held.pop()

    visit_AsyncWith = visit_With

    # -- assignments: bindings vs accesses -------------------------------
    def _value_alias(self, value: ast.expr) -> tuple | None:
        """Alias classification a plain ``x = <value>`` binding creates."""
        lock = self._lock_of(value)
        if lock is not None:
            return ("lock", lock)
        elem = self._elem_of(value)
        if elem is not None:
            return ("elem", elem)
        if isinstance(value, ast.Name):
            return self.aliases.get(value.id)
        attr = self._self_attr(value)
        if attr is not None and self.sc is not None \
                and attr in self.sc.sync_containers:
            return ("struct", attr)
        if isinstance(value, ast.Subscript):
            inner = value.value
            if isinstance(inner, ast.Name):
                alias = self.aliases.get(inner.id)
                if alias is not None and alias[0] == "struct":
                    return ("elem", alias[1])
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        alias = self._value_alias(node.value)
        if alias is not None:
            # A binding, not an access; still visit subscript indices.
            if isinstance(node.value, ast.Subscript):
                self.visit(node.value.slice)
        else:
            self.visit(node.value)
        for target in node.targets:
            self._store(target, alias)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        alias = self._value_alias(node.value)
        if alias is None:
            self.visit(node.value)
        self._store(node.target, alias)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        self._store(node.target, None)

    def _store(self, target: ast.expr, alias: tuple | None) -> None:
        if isinstance(target, ast.Name):
            if alias is not None:
                self.aliases[target.id] = alias
            else:
                self.aliases.pop(target.id, None)
            return
        if isinstance(target, ast.Tuple) or isinstance(target, ast.List):
            for elt in target.elts:
                self._store(elt, None)
            return
        attr = self._self_attr(target)
        if self._tracked_data(attr):
            self._access(attr, "write", target)
            return
        if isinstance(target, ast.Attribute):
            # self.X.Y = ... mutates the object held in self.X.
            inner = self._self_attr(target.value)
            if self._tracked_data(inner):
                self._access(inner, "write", target)
            else:
                self.visit(target.value)
            return
        if isinstance(target, ast.Subscript):
            inner = self._self_attr(target.value)
            if self._tracked_data(inner):
                self._access(inner, "write", target)
            elif inner is not None and self.sc is not None \
                    and inner in self.sc.sync_containers:
                self._access(inner, "write", target)
            else:
                elem = self._elem_of(target)
                if elem is not None:
                    self._access(elem, "write", target)
                else:
                    self.visit(target.value)
            self.visit(target.slice)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._store(target, None)

    # -- loops: element binding ------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        handled = self._bind_loop(node.target, node.iter)
        if not handled:
            self.visit(node.iter)
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)

    def _bind_loop(self, target: ast.expr, iter_expr: ast.expr) -> bool:
        sources: list[ast.expr] = []
        targets: list[ast.expr] = []
        if isinstance(iter_expr, ast.Call):
            head = _dotted(iter_expr.func)
            if head in ("zip", "enumerate") and isinstance(target, ast.Tuple):
                elts = list(target.elts)
                if head == "enumerate":
                    elts = elts[1:]
                    self._store(target.elts[0], None)
                sources = list(iter_expr.args)
                targets = elts
            else:
                return False
        else:
            sources = [iter_expr]
            targets = [target]
        matched = False
        for src, tgt in zip(sources, targets):
            attr = self._self_attr(src)
            if self.sc is not None and attr in self.sc.locks \
                    and attr in self.sc.families:
                if isinstance(tgt, ast.Name):
                    self.aliases[tgt.id] = ("lock", self.sc.locks[attr])
                matched = True
            elif self.sc is not None and attr is not None \
                    and attr in self.sc.sync_containers:
                if isinstance(tgt, ast.Name):
                    self.aliases[tgt.id] = ("elem", attr)
                matched = True
            elif self._tracked_data(attr):
                self._access(attr, "read", src)
                self._store(tgt, None)
                matched = True
            elif isinstance(src, ast.Name) and \
                    self.aliases.get(src.id, ("", ""))[0] == "struct":
                if isinstance(tgt, ast.Name):
                    self.aliases[tgt.id] = ("elem", self.aliases[src.id][1])
                matched = True
            else:
                self.visit(src)
                self._store(tgt, None)
        return matched or bool(sources)

    # -- plain reads ------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            attr = self._self_attr(node)
            if self._tracked_data(attr):
                self._access(attr, "read", node)
                return
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load):
            elem = self._elem_of(node)
            if elem is not None:
                # Reading an element object's item (deque[0] etc.).
                self._access(elem, "read", node)
                self.visit(node.slice)
                return
            attr = self._self_attr(node.value)
            if self.sc is not None and attr is not None \
                    and attr in self.sc.sync_containers:
                # Bare element load outside a binding: charged as a read
                # (bindings are intercepted in visit_Assign/_bind_loop).
                self.visit(node.slice)
                return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            alias = self.aliases.get(node.id)
            if alias is not None and alias[0] == "elem":
                self._access(alias[1], "read", node)

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self.calls[(node.lineno, node.col_offset)] = frozenset(self.held)
        written = _dotted(node.func)
        canonical = self.p.index.resolve(written, self.info.name) \
            if written else None
        if canonical in _BLOCKING_SIMPLE and self.held:
            self._blocking(node, _BLOCKING_SIMPLE[canonical])

        if isinstance(node.func, ast.Attribute):
            recv, meth = node.func.value, node.func.attr
            lock = self._lock_of(recv)
            if lock is not None:
                if meth == "acquire":
                    self.p.record_acquire(_Acquire(
                        lock=lock, held_before=tuple(self.held),
                        fn=self.fn.qualname, line=node.lineno), self.info)
                elif meth in ("wait", "wait_for"):
                    # A condition's wait releases its own lock but keeps
                    # every other held lock across the block.
                    self._blocking(node, f"{lock}.{meth}", exempt=lock)
                self._visit_args(node)
                return
            elem = self._elem_of(recv)
            if elem is not None:
                kind = "write" if meth in _MUTATING_METHODS else "read"
                self._access(elem, kind, node)
                self._visit_args(node)
                return
            attr = self._self_attr(recv)
            if self._tracked_data(attr):
                kind = "write" if meth in _MUTATING_METHODS else "read"
                self._access(attr, kind, node)
                self._visit_args(node)
                return
            if attr is not None and self.sc is not None:
                if attr in self.sc.queues and meth in ("get", "put"):
                    self._blocking(node, f"{attr}.{meth}")
                    self._visit_args(node)
                    return
                if attr in self.sc.safe:
                    if meth == "wait":
                        self._blocking(node, f"{attr}.wait")
                    self._visit_args(node)
                    return
                if attr in self.sc.sync_containers:
                    if meth in _MUTATING_METHODS:
                        self._access(attr, "write", node)
                    self._visit_args(node)
                    return
                if attr in self.sc.locks:
                    self._visit_args(node)
                    return
            # Unknown receiver: generic blocking heuristics.
            if meth == "join" and self.held:
                resolved = canonical or ""
                if not resolved.startswith(_JOIN_EXEMPT_PREFIXES):
                    self._blocking(node, f"{written or meth}()")
            elif meth in ("wait", "wait_for") and self.held:
                self._blocking(node, f"{written or meth}()")
            self.visit(node.func.value)
            self._visit_args(node)
            return
        self.generic_visit(node)

    def _visit_args(self, node: ast.Call) -> None:
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    # -- scope: nested defs are their own FunctionInfos --------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------

class _ConcurrencyPass:
    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        self.shared = _discover_shared(index)
        self.roots = find_thread_roots(index, self.shared)
        self.accesses: dict[tuple[str, str], set[_Access]] = {}
        self.acquires: list[tuple[_Acquire, ModuleInfo]] = []
        self.blockers: dict[tuple[str, int], tuple[_Blocking, ModuleInfo]] = {}
        self.findings: list[Violation] = []
        self._emitted: set[tuple[str, int, str]] = set()
        self._reach: dict[str, set[str]] = {}
        self._chains: dict[str, str] = {}

    # -- event sinks ----------------------------------------------------
    def record_access(self, access: _Access) -> None:
        self.accesses.setdefault((access.cls, access.attr), set()).add(access)

    def record_acquire(self, acq: _Acquire, info: ModuleInfo) -> None:
        self.acquires.append((acq, info))

    def record_blocking(self, block: _Blocking, info: ModuleInfo) -> None:
        self.blockers.setdefault((block.fn, block.line), (block, info))

    # -- helpers ---------------------------------------------------------
    def _severity(self, info: ModuleInfo) -> str:
        return "error" if info.name.startswith(_STRICT_PREFIXES) else "warning"

    def _emit(self, info: ModuleInfo, line: int, col: int, code: str,
              extra: str) -> None:
        key = (info.relpath, line, code)
        if key in self._emitted:
            return
        self._emitted.add(key)
        emit(self.findings, info, line, col, code, extra,
             severity=self._severity(info))

    def _module_of(self, fn_qual: str) -> ModuleInfo | None:
        fn = self.index.lookup_function(fn_qual)
        return self.index.modules.get(fn.module) if fn else None

    def _roots_reaching(self, fn_qual: str) -> list[str]:
        if not self._reach:
            for root in self.roots:
                self._reach[root.qualname] = self.graph.reachable(
                    [root.qualname]) | {root.qualname}
        return [r.qualname for r in self.roots
                if fn_qual in self._reach.get(r.qualname, ())]

    def _chain(self, fn_qual: str) -> str:
        cached = self._chains.get(fn_qual)
        if cached is not None:
            return cached
        best: list[str] | None = None
        for root in self._roots_reaching(fn_qual):
            chain = self.graph.call_chain(root, fn_qual)
            if chain is not None and (best is None or len(chain) < len(best)):
                best = chain
        text = " -> ".join(best) if best else fn_qual
        self._chains[fn_qual] = text
        return text

    # -- run -------------------------------------------------------------
    def run(self) -> list[Violation]:
        self._walk_contexts()
        self._report_guardedness()
        self._report_blocking()
        self._report_lock_order()
        return self.findings

    def _walk_contexts(self) -> None:
        worklist: deque[tuple[str, frozenset]] = deque(
            (root.qualname, frozenset()) for root in self.roots)
        seen: set[tuple[str, frozenset]] = set()
        while worklist and len(seen) < _MAX_CONTEXTS:
            qual, ctx = worklist.popleft()
            if (qual, ctx) in seen:
                continue
            seen.add((qual, ctx))
            fn = self.index.lookup_function(qual)
            if fn is None:
                continue
            info = self.index.modules.get(fn.module)
            if info is None:
                continue
            sc = self.shared.get(f"{fn.module}.{fn.class_name}") \
                if fn.class_name else None
            walker = _LockWalker(self, fn, info, sc, ctx)
            if isinstance(fn.node, ast.Lambda):
                walker.visit(fn.node.body)
            else:
                for stmt in fn.node.body:
                    walker.visit(stmt)
            for site in self.graph.callees(qual):
                if site.resolved is None:
                    continue
                callee_ctx = walker.calls.get((site.line, site.col),
                                              frozenset())
                if (site.resolved, callee_ctx) not in seen:
                    worklist.append((site.resolved, callee_ctx))

    # -- RP501 / RP502 ----------------------------------------------------
    def _report_guardedness(self) -> None:
        for (cls, attr), accs in sorted(self.accesses.items()):
            writes = [a for a in accs if a.kind == "write"]
            if not writes:
                continue  # immutable after publication
            guarded = [a for a in accs if a.lockset]
            if guarded:
                self._report_rp501(cls, attr, accs, guarded)
            else:
                self._report_rp502(cls, attr, writes)

    def _report_rp501(self, cls: str, attr: str, accs: set[_Access],
                      guarded: list[_Access]) -> None:
        common = frozenset.intersection(*(a.lockset for a in guarded))
        if not common:
            # Disjoint guards: presume the most frequent lock.
            counts: dict[str, int] = {}
            for a in guarded:
                for lock in a.lockset:
                    counts[lock] = counts.get(lock, 0) + 1
            presumed = max(sorted(counts), key=lambda k: counts[k])
            common = frozenset({presumed})
        offenders = [a for a in accs if not (a.lockset & common)]
        if not offenders:
            return
        guard_text = "/".join(sorted(common))
        n_ok = len(accs) - len(offenders)
        for a in sorted(offenders, key=lambda a: (a.fn, a.line)):
            info = self._module_of(a.fn)
            if info is None:
                continue
            held = "/".join(sorted(a.lockset)) or "no lock"
            self._emit(
                info, a.line, a.col, "RP501",
                f"self.{attr} of {cls} guarded by {guard_text} on {n_ok} "
                f"access(es) but this {a.kind} holds {held}; "
                f"via {self._chain(a.fn)}")

    def _report_rp502(self, cls: str, attr: str,
                      writes: list[_Access]) -> None:
        for w in sorted(writes, key=lambda a: (a.fn, a.line)):
            reaching = self._roots_reaching(w.fn)
            if len(reaching) < 2:
                continue  # single-writer proof holds
            info = self._module_of(w.fn)
            if info is None:
                continue
            root_text = ", ".join(reaching[:3])
            self._emit(
                info, w.line, w.col, "RP502",
                f"unguarded write to self.{attr} of {cls}; reachable from "
                f"{len(reaching)} thread roots ({root_text}); "
                f"via {self._chain(w.fn)}")

    # -- RP503 ------------------------------------------------------------
    def _report_blocking(self) -> None:
        for (fn_qual, line), (block, info) in sorted(self.blockers.items()):
            held = "/".join(block.held)
            self._emit(
                info, block.line, block.col, "RP503",
                f"{block.desc} while holding {held}; "
                f"via {self._chain(fn_qual)}")

    # -- RP504 + lock-order graph ----------------------------------------
    def _lock_edges(self) -> dict[tuple[str, str], list[tuple[str, int, ModuleInfo]]]:
        edges: dict[tuple[str, str], list[tuple[str, int, ModuleInfo]]] = {}
        for acq, info in self.acquires:
            for held in acq.held_before:
                if held != acq.lock:
                    edges.setdefault((held, acq.lock), []).append(
                        (acq.fn, acq.line, info))
        return edges

    def _report_lock_order(self) -> None:
        edges = self._lock_edges()
        adj: dict[str, set[str]] = {}
        for (a, b) in edges:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
        for scc in _sccs(adj):
            if len(scc) < 2:
                continue
            cycle = sorted(scc)
            in_cycle = sorted(
                (a, b) for (a, b) in edges if a in scc and b in scc)
            witness_fn, witness_line, info = edges[in_cycle[0]][0]
            conflicts = "; ".join(
                f"{b} acquired while holding {a} via {self._chain(fn)}"
                for (a, b) in in_cycle[:2]
                for (fn, _line, _info) in edges[(a, b)][:1])
            self._emit(
                info, witness_line, 0, "RP504",
                f"cycle {' -> '.join(cycle + [cycle[0]])}; {conflicts}")

    def report(self) -> dict:
        """Lock-order graph + roots, for ``--format json`` artifacts."""
        edges = self._lock_edges()
        adj: dict[str, set[str]] = {}
        for (a, b) in edges:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
        cycles = [sorted(scc) for scc in _sccs(adj) if len(scc) >= 2]
        all_locks = set(adj)
        for sc in self.shared.values():
            all_locks.update(sc.locks.values())
        return {
            "roots": [{"qualname": r.qualname, "reason": r.reason}
                      for r in self.roots],
            "locks": sorted(all_locks),
            "edges": [
                {
                    "from": a,
                    "to": b,
                    "sites": [f"{info.relpath}:{line}"
                              for _fn, line, info in sites[:3]],
                }
                for (a, b), sites in sorted(edges.items())
            ],
            "cycles": sorted(cycles),
        }


def _sccs(adj: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan strongly-connected components, iterative."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[set[str]] = []
    counter = [0]

    for start in sorted(adj):
        if start in index_of:
            continue
        work: list[tuple[str, iter]] = [(start, iter(sorted(adj[start])))]
        index_of[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index_of:
                    index_of[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                scc: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                result.append(scc)
    return result


def run_concurrency(index: ProjectIndex,
                    graph: CallGraph) -> tuple[list[Violation], dict]:
    """Run the RP5xx pass; returns (findings, lock-order report)."""
    pass_ = _ConcurrencyPass(index, graph)
    findings = pass_.run()
    return findings, pass_.report()


def check_concurrency(index: ProjectIndex, graph: CallGraph) -> list[Violation]:
    """Run the RP5xx concurrency pass over the project."""
    return run_concurrency(index, graph)[0]
