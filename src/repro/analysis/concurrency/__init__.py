"""Concurrency-safety analysis: static lockset proofs + dynamic checker.

Two halves, one contract:

* :mod:`repro.analysis.concurrency.static` — interprocedural
  lockset/guardedness proofs (RP501–RP504) over the project call graph,
  rooted at every discovered thread entry point.
* :mod:`repro.analysis.concurrency.runtime` — an Eraser-style dynamic
  lockset checker: instrumented ``Lock``/``RLock``/``Condition`` wrappers
  installed through the :mod:`repro.tsan` seam (``REPRO_TSAN=1``),
  recording per-thread acquisition order and per-object access locksets,
  with ``assert_race_free()`` / ``assert_no_lock_inversion()`` for tests.

The static pass proves guardedness over *names* (one lockset per class
attribute, shard families collapsed); the runtime checker observes
*instances* (per-object locksets, per-thread lock stacks) and therefore
catches what the name-level abstraction cannot — see DESIGN.md §4d.
"""

from .static import (
    ThreadRoot,
    check_concurrency,
    find_thread_roots,
    run_concurrency,
)

__all__ = [
    "ThreadRoot",
    "check_concurrency",
    "find_thread_roots",
    "run_concurrency",
]
