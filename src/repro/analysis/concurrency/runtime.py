"""Dynamic lockset race checker (the ``REPRO_TSAN=1`` runtime).

The static pass (:mod:`repro.analysis.concurrency.static`) reasons over
lock *names*; this module observes lock *instances* at run time, in the
Eraser lockset tradition:

* :class:`TsanLock` / :class:`TsanRLock` / :class:`TsanCondition` are
  drop-in wrappers over the real primitives that record every
  acquisition/release into per-thread lock stacks and a bounded ring
  buffer of events.
* Each ``tsan.note_access(obj, attr, kind)`` call refines the *candidate
  lockset* of ``(id(obj), attr)``: the first thread owns it exclusively;
  the moment a second thread touches it, the candidate set is
  initialised to the locks held right then, and every later access
  intersects it.  A write whose candidate set goes empty is a race.
* Every acquisition taken while other locks are held adds an edge to the
  runtime lock-order graph; a cycle (by object identity, so per-shard
  conditions stay distinct — the precision the static family collapse
  gives up) is a potential deadlock.

:func:`install` rebinds the :mod:`repro.tsan` seam so production code
constructs instrumented primitives without knowing about any of this;
:func:`uninstall` restores the plain aliases.  Tests call
:func:`assert_race_free` / :func:`assert_no_lock_inversion` at the end
of a scenario.

The checker keeps **strong references** to every tracked lock and
object: ``id()`` is only unique among live objects, and letting a dead
deque's id be recycled by a fresh one would merge two unrelated Eraser
states into one (false positives at worst, masked races at best).
:func:`reset` drops everything.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from typing import Any, Callable

__all__ = [
    "TsanCondition",
    "TsanLock",
    "TsanRLock",
    "assert_no_lock_inversion",
    "assert_race_free",
    "events",
    "install",
    "install_from_env",
    "installed",
    "inversions",
    "lock_order_edges",
    "races",
    "reset",
    "uninstall",
]

_DEFAULT_CAPACITY = 8192


def _call_site() -> str:
    """``file:line`` of the nearest frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:
        return "?"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class _Registry:
    """All checker state; ``_mu`` is a leaf lock (never held while a
    production lock is being acquired), so the checker cannot deadlock
    the code under test."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        self._mu = threading.Lock()
        self._tls = threading.local()
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.lock_names: dict[int, str] = {}
        self._lock_refs: dict[int, object] = {}
        self._obj_refs: dict[int, object] = {}
        #: (held-id, acquired-id) -> set of "file:line" witness sites.
        self.edges: dict[tuple[int, int], set] = {}
        #: (id(obj), attr) -> Eraser state.
        self.states: dict[tuple[int, str], dict] = {}
        self.races: list[dict] = []

    # -- per-thread lock stack ------------------------------------------
    def _held(self) -> list:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    # -- lock lifecycle --------------------------------------------------
    def register_lock(self, lock: object, kind: str) -> None:
        site = _call_site()
        with self._mu:
            self.lock_names[id(lock)] = f"{kind}@{site}"
            self._lock_refs[id(lock)] = lock

    def note_acquire(self, lock: object) -> None:
        held = self._held()
        site = _call_site()
        lock_id = id(lock)
        with self._mu:
            for prev in dict.fromkeys(held):
                if prev != lock_id:
                    self.edges.setdefault((prev, lock_id), set())
                    if len(self.edges[(prev, lock_id)]) < 5:
                        self.edges[(prev, lock_id)].add(site)
            self.events.append(
                ("acquire", self.lock_names.get(lock_id, "?"),
                 threading.get_ident(), site))
        held.append(lock_id)

    def note_release(self, lock: object) -> None:
        held = self._held()
        lock_id = id(lock)
        for i in range(len(held) - 1, -1, -1):
            if held[i] == lock_id:
                del held[i]
                break
        with self._mu:
            self.events.append(
                ("release", self.lock_names.get(lock_id, "?"),
                 threading.get_ident(), _call_site()))

    # -- Eraser lockset refinement --------------------------------------
    def note_access(self, obj: Any, attr: str, kind: str) -> None:
        tid = threading.get_ident()
        lockset = set(self._held())
        site = _call_site()
        key = (id(obj), attr)
        is_write = kind == "write"
        with self._mu:
            self._obj_refs[id(obj)] = obj
            self.events.append(
                (kind, f"{type(obj).__name__}.{attr}", tid, site))
            st = self.states.get(key)
            if st is None:
                self.states[key] = {
                    "owner": tid, "shared": False, "written": is_write,
                    "lockset": None, "type": type(obj).__name__,
                    "sites": [site], "reported": False,
                }
                return
            if len(st["sites"]) < 5 and site not in st["sites"]:
                st["sites"].append(site)
            if not st["shared"]:
                if st["owner"] == tid:
                    st["written"] = st["written"] or is_write
                    return  # still exclusive to the first thread
                st["shared"] = True
                # Eraser's shared-read refinement: init-then-publish is
                # legal, so only writes *after* sharing begins (including
                # this transitioning access) count towards a race — the
                # exclusive phase's written bit is deliberately dropped.
                st["written"] = is_write
                st["lockset"] = set(lockset)
            else:
                st["written"] = st["written"] or is_write
                st["lockset"] &= lockset
            if st["written"] and not st["lockset"] and not st["reported"]:
                st["reported"] = True
                self.races.append({
                    "object": f"{st['type']}.{attr}",
                    "kind": kind,
                    "site": site,
                    "thread": tid,
                    "sites": list(st["sites"]),
                })

    # -- queries ---------------------------------------------------------
    def edge_list(self) -> list[dict]:
        with self._mu:
            return [
                {
                    "from": self.lock_names.get(a, "?"),
                    "to": self.lock_names.get(b, "?"),
                    "sites": sorted(sites),
                }
                for (a, b), sites in sorted(self.edges.items())
            ]

    def find_inversions(self) -> list[list[str]]:
        with self._mu:
            adj: dict[int, set] = {}
            for (a, b) in self.edges:
                adj.setdefault(a, set()).add(b)
                adj.setdefault(b, set())
            names = dict(self.lock_names)
        from .static import _sccs
        keyed = {str(k): {str(v) for v in vs} for k, vs in adj.items()}
        return [
            sorted(names.get(int(m), "?") for m in scc)
            for scc in _sccs(keyed)
            if len(scc) >= 2
        ]

    def clear(self, capacity: int | None = None) -> None:
        with self._mu:
            if capacity is not None:
                self.capacity = capacity
                self.events = deque(maxlen=capacity)
            else:
                self.events.clear()
            self.lock_names.clear()
            self._lock_refs.clear()
            self._obj_refs.clear()
            self.edges.clear()
            self.states.clear()
            self.races.clear()


_REGISTRY = _Registry()


# ---------------------------------------------------------------------------
# instrumented primitives
# ---------------------------------------------------------------------------

class TsanLock:
    """``threading.Lock`` wrapper feeding the checker.

    A wrapper rather than a subclass because ``_thread.LockType`` cannot
    be subclassed.
    """

    _kind = "Lock"

    def __init__(self) -> None:
        self._inner = threading.Lock()
        _REGISTRY.register_lock(self, self._kind)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            _REGISTRY.note_acquire(self)
        return ok

    def release(self) -> None:
        _REGISTRY.note_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TsanLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class TsanRLock(TsanLock):
    """Reentrant variant; the held stack sees one entry per acquire."""

    _kind = "RLock"

    def __init__(self) -> None:
        self._inner = threading.RLock()
        _REGISTRY.register_lock(self, self._kind)

    def locked(self) -> bool:  # RLock has no .locked() before 3.12
        if self._inner.acquire(blocking=False):
            self._inner.release()
            return False
        return True


class TsanCondition:
    """``threading.Condition`` wrapper.

    Wraps rather than subclasses: the stock implementation probes
    ``_is_owned`` via ``acquire(False)`` which would pollute the event
    stream with phantom acquisitions.  ``wait``/``wait_for`` mirror the
    real semantics in the checker — the condition's own lock is released
    for the duration of the wait, every other held lock is kept.
    """

    def __init__(self, lock: TsanLock | None = None) -> None:
        self._lock = lock if lock is not None else TsanRLock()
        self._inner = threading.Condition(self._lock._inner)

    def acquire(self, *args: object, **kwargs: object) -> bool:
        return self._lock.acquire(*args, **kwargs)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "TsanCondition":
        self._lock.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self._lock.release()

    def wait(self, timeout: float | None = None) -> bool:
        _REGISTRY.note_release(self._lock)
        try:
            return self._inner.wait(timeout)
        finally:
            _REGISTRY.note_acquire(self._lock)

    def wait_for(self, predicate: Callable[[], Any],
                 timeout: float | None = None) -> Any:
        # Reimplemented over our wait() so the checker sees the lock as
        # held during predicate evaluation and released during each wait.
        endtime: float | None = None
        result = predicate()
        while not result:
            if timeout is not None:
                if endtime is None:
                    endtime = time.monotonic() + timeout
                waittime = endtime - time.monotonic()
                if waittime <= 0:
                    break
                self.wait(waittime)
            else:
                self.wait()
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


# ---------------------------------------------------------------------------
# install / query API
# ---------------------------------------------------------------------------

_INSTALLED = False
_SAVED: dict[str, object] = {}


def install(capacity: int | None = None) -> None:
    """Rebind the :mod:`repro.tsan` seam to the instrumented primitives.

    Idempotent.  Locks constructed *before* installation stay plain —
    callers (the pytest fixture) install before building the objects
    under test.
    """
    global _INSTALLED
    from repro import tsan

    if capacity is not None:
        _REGISTRY.clear(capacity)
    if _INSTALLED:
        return
    _SAVED.update(
        make_lock=tsan.make_lock,
        make_rlock=tsan.make_rlock,
        make_condition=tsan.make_condition,
        note_access=tsan.note_access,
    )
    tsan.make_lock = TsanLock
    tsan.make_rlock = TsanRLock
    tsan.make_condition = TsanCondition
    tsan.note_access = _REGISTRY.note_access
    _INSTALLED = True


def uninstall() -> None:
    """Restore the plain :mod:`repro.tsan` aliases."""
    global _INSTALLED
    from repro import tsan

    if not _INSTALLED:
        return
    tsan.make_lock = _SAVED["make_lock"]
    tsan.make_rlock = _SAVED["make_rlock"]
    tsan.make_condition = _SAVED["make_condition"]
    tsan.note_access = _SAVED["note_access"]
    _SAVED.clear()
    _INSTALLED = False


def installed() -> bool:
    return _INSTALLED


def install_from_env(environ: dict | None = None) -> bool:
    """Install when ``REPRO_TSAN=1`` (the pytest fixture's entry point)."""
    import os

    env = environ if environ is not None else os.environ
    if str(env.get("REPRO_TSAN", "")).strip() in ("1", "true", "yes"):
        install()
        return True
    return False


def reset(capacity: int | None = None) -> None:
    """Drop all recorded state (between tests)."""
    _REGISTRY.clear(capacity)


def events() -> list:
    """Snapshot of the event ring buffer (oldest first)."""
    with _REGISTRY._mu:
        return list(_REGISTRY.events)


def races() -> list[dict]:
    """Accesses whose candidate lockset went empty with a write involved."""
    with _REGISTRY._mu:
        return list(_REGISTRY.races)


def lock_order_edges() -> list[dict]:
    """The observed runtime lock-order graph."""
    return _REGISTRY.edge_list()


def inversions() -> list[list[str]]:
    """Cycles in the runtime lock-order graph (object-identity precise)."""
    return _REGISTRY.find_inversions()


def assert_race_free() -> None:
    """Fail the test if any tracked access raced."""
    found = races()
    if found:
        lines = [
            f"  {r['object']} {r['kind']} at {r['site']} "
            f"(history: {', '.join(r['sites'])})"
            for r in found
        ]
        raise AssertionError(
            "dynamic lockset checker found {} race candidate(s):\n{}".format(
                len(found), "\n".join(lines)))


def assert_no_lock_inversion() -> None:
    """Fail the test if the observed lock-order graph has a cycle."""
    cycles = inversions()
    if cycles:
        lines = ["  " + " <-> ".join(cycle) for cycle in cycles]
        raise AssertionError(
            "dynamic checker found {} lock-order cycle(s):\n{}".format(
                len(cycles), "\n".join(lines)))
