"""Registry of every static-analysis finding code.

One table for all passes, so ``# repro-lint: disable=RPxxx`` comments can
be validated uniformly (an unknown code in a disable comment is an error —
stale annotations cannot rot silently) and the stale-suppression audit
(RP008) can reason about suppressions across passes.

Code ranges:

* **RP0xx** — single-file AST lint rules (:mod:`repro.analysis.lint`).
* **RP2xx** — spawn-safety / determinism proofs over the project call
  graph (:mod:`repro.analysis.flow.spawnsafety`).
* **RP3xx** — dimensional analysis of unit-annotated signatures
  (:mod:`repro.analysis.flow.units`).
* **RP4xx** — numpy hot-path performance lints
  (:mod:`repro.analysis.flow.perf`).
* **RP5xx** — concurrency-safety (lockset/guardedness) proofs over
  thread-shared classes (:mod:`repro.analysis.concurrency.static`).
* **RP6xx** — tape dataflow proofs over a recorded fused
  forward+backward of the real model
  (:mod:`repro.analysis.dataflow.checks`).

Severity: ``"error"`` findings fail ``--strict``; ``"warning"`` findings
are reported but never gate.  RP4xx findings are warnings off the hot path
and errors on it (the pass upgrades them), so the table stores their
*default* (off-hot-path) severity; RP5xx findings follow the same model
with the threaded serving/runner modules playing the role of the hot set.
"""

from __future__ import annotations

__all__ = ["ALL_CODES", "CODE_SEVERITY", "lint_codes", "flow_codes"]

#: Code -> one-line description, across every pass.
ALL_CODES: dict[str, str] = {
    # -- RP0xx: single-file lint rules ---------------------------------
    "RP001": "bare RNG call; create generators via repro.random.make_rng/split_rng",
    "RP002": "float equality comparison; use a tolerance (np.isclose/math.isclose)",
    "RP003": "mutable default argument; default to None and build inside the function",
    "RP004": "except swallows the error; narrow the type and log or re-raise",
    "RP005": "literal float32/float64 dtype outside repro/nn; let the tensor engine decide precision",
    "RP006": "direct Tensor.data/.grad mutation outside repro/nn; go through ops or an optimizer",
    "RP007": "wall-clock call in simulator code; event logic must use virtual time",
    "RP008": "stale suppression: this disable comment no longer suppresses any finding; remove it",
    # -- RP2xx: spawn-safety / determinism -----------------------------
    "RP201": "spawn-reachable code reads module-level state that the project mutates; "
             "pass the value through the task payload instead",
    "RP202": "spawn-reachable code mutates module-level state; worker-side writes are "
             "lost on exit and break run determinism",
    "RP203": "spawn-reachable randomness without an explicit seed; derive every stream "
             "from the task seed via make_rng",
    "RP204": "wall-clock read in spawn-reachable code; nondeterministic value must not "
             "influence task output",
    "RP205": "unpicklable worker or payload (lambda/nested function); use a module-level "
             "function and plain-data payloads",
    # -- RP3xx: dimensional analysis -----------------------------------
    "RP301": "unit mismatch in addition/subtraction; operands carry different units",
    "RP302": "unit mismatch in comparison; operands carry different units",
    "RP303": "argument unit mismatch; value's unit differs from the parameter annotation",
    "RP304": "return unit mismatch; returned value's unit differs from the annotation",
    # -- RP4xx: numpy hot-path perf lints ------------------------------
    "RP401": "growing concatenation (np.concatenate/append/...) inside a loop; "
             "collect then concatenate once, or preallocate",
    "RP402": "array allocation (np.zeros/ones/empty/full) inside a loop; hoist the "
             "buffer out and reuse it",
    "RP403": "Python-level loop over an ndarray; vectorize with numpy operations",
    "RP404": "explicit float64 promotion on a hot path; preserve the input dtype",
    # -- RP5xx: concurrency safety (lockset/guardedness) ----------------
    "RP501": "inconsistent lockset: attribute is guarded by a lock on some paths "
             "but accessed without it on others; hold the same lock everywhere",
    "RP502": "unguarded write to thread-shared state reachable from multiple "
             "thread roots; guard it with a lock or prove single-writer",
    "RP503": "blocking call (wait/join/sleep/IO/queue) while holding a lock; "
             "release the lock before blocking",
    "RP504": "lock-order cycle: locks are acquired in conflicting orders on "
             "different paths; establish and follow a global lock order",
    # -- RP6xx: tape dataflow (recorded fused step) ----------------------
    "RP601": "in-place write to a buffer whose alias class is still live; a "
             "backward closure retained it and will compute gradients from "
             "the overwritten values",
    "RP602": "dead store on the tape: the value is never read by the loss or "
             "any gradient path; the op is wasted work every step",
    "RP603": "buffer escaped its tape scope: an interior array outlived tape "
             "teardown (closure/global/cache holds it), leaking across steps",
    "RP604": "peak-arena-bytes regression: the planned tape arena outgrew the "
             "committed per-family budget in BENCH_training.json",
}

#: Default severity per code ("error" unless listed here).
CODE_SEVERITY: dict[str, str] = {
    "RP204": "warning",
    "RP401": "warning",
    "RP402": "warning",
    "RP403": "warning",
    "RP404": "warning",
    "RP501": "warning",
    "RP502": "warning",
    "RP503": "warning",
    "RP504": "warning",
    "RP602": "warning",
}


def lint_codes() -> dict[str, str]:
    """The single-file lint subset (RP001–RP007; RP008 is the audit's)."""
    return {
        code: text for code, text in ALL_CODES.items()
        if code.startswith("RP0") and code != "RP008"
    }


def flow_codes() -> dict[str, str]:
    """The whole-program subset (RP2xx/RP3xx/RP4xx/RP5xx/RP6xx)."""
    return {
        code: text for code, text in ALL_CODES.items()
        if not code.startswith("RP0")
    }
