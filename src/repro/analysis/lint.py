"""Repo-specific AST linter.

Generic linters cannot see this library's conventions — seeded RNG only,
float64 tape discipline, virtual-time simulation, autodiff-owned tensor
state.  The rules below encode them as static checks over ``src/``:

========  =============================================================
Code      What it catches
========  =============================================================
RP001     Bare ``np.random.*`` / ``random.*`` calls outside
          :mod:`repro.random` — every stream must come from
          ``make_rng``/``split_rng`` so runs stay reproducible.
RP002     Float equality (``==`` / ``!=`` against a float literal) —
          compare with a tolerance instead.
RP003     Mutable default arguments (``def f(x=[])``) — shared state
          across calls.
RP004     ``except Exception``/``BaseException``/bare ``except`` whose
          handler neither re-raises nor logs — silently swallowed
          failures.
RP005     Literal ``float32``/``float64`` dtype selection outside
          ``repro/nn`` — precision policy belongs to the tensor engine.
RP006     Direct mutation of ``Tensor.data`` / ``Tensor.grad`` outside
          ``repro/nn`` — bypasses the autodiff tape.
RP007     Wall-clock calls (``time.time`` & friends) inside
          ``repro/simulator`` — event logic must use virtual time.
========  =============================================================

The interprocedural passes (RP2xx spawn safety, RP3xx units, RP4xx perf)
live in :mod:`repro.analysis.flow`; they share this module's
:class:`Violation` record and the suppression mechanism below.

Escape hatch: a trailing ``# repro-lint: disable=RP001[,RP002]`` comment
disables those codes on that line; the same comment on a line of its own
disables them for the whole file.  Suppression *usage* is tracked: the
driver's stale-suppression audit (RP008) flags disable comments that no
longer suppress anything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import AnalysisError
from .codes import ALL_CODES, lint_codes

__all__ = [
    "RULES",
    "Suppressions",
    "Violation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_violations",
]

#: Single-file rule code -> one-line description (the RP0xx subset).
RULES: dict[str, str] = lint_codes()

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9, ]+)")

#: Method names that count as "the handler reported the failure".
_LOGGING_ATTRS = {
    "debug", "info", "warning", "error", "exception", "critical",
    "warn", "log", "_log", "put", "write",
}
_LOGGING_NAMES = {"print", "log", "_log"}

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}


@dataclass(frozen=True)
class Violation:
    """One finding from any analysis pass.

    ``severity`` is ``"error"`` (fails ``--strict``) or ``"warning"``
    (reported, never gates).  All RP0xx lint findings are errors.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        prefix = "" if self.severity == "error" else f"{self.severity}: "
        return f"{self.path}:{self.line}:{self.col}: {prefix}{self.code} {self.message}"


@dataclass
class Suppressions:
    """Per-file ``# repro-lint: disable=...`` bookkeeping, usage-tracked.

    A trailing comment applies to its line; a comment that is the only
    content of its line applies to the whole file.  Every pass (lint and
    the flow passes) consults one shared instance per file through
    :meth:`is_suppressed`, which records *which* disables actually fired —
    the driver's stale-suppression audit reports the rest as RP008.
    """

    relpath: str
    #: target line -> codes disabled on that line (trailing comments).
    line_disables: dict[int, set[str]] = field(default_factory=dict)
    #: code -> comment line of its file-wide disable declaration.
    file_disables: dict[str, int] = field(default_factory=dict)
    #: (line | None, code) entries that suppressed at least one finding.
    used: set[tuple[int | None, str]] = field(default_factory=set)

    @classmethod
    def collect(cls, source: str, relpath: str = "<string>") -> "Suppressions":
        """Parse disable comments from ``source`` via the token stream.

        Raises:
            AnalysisError: On a disable comment naming an unknown code —
                stale annotations must not rot silently.
        """
        supp = cls(relpath=relpath)
        lines = source.splitlines()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _DISABLE_RE.search(tok.string)
                if not match:
                    continue
                codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
                unknown = codes - ALL_CODES.keys()
                if unknown:
                    raise AnalysisError(
                        f"{relpath}:{tok.start[0]}: unknown lint code(s) "
                        f"in disable comment: {sorted(unknown)}"
                    )
                row = tok.start[0]
                before = lines[row - 1][: tok.start[1]] if row <= len(lines) else ""
                if before.strip():
                    supp.line_disables.setdefault(row, set()).update(codes)
                else:
                    for code in codes:
                        supp.file_disables.setdefault(code, row)
        except tokenize.TokenError:
            pass  # unterminated strings etc.; ast.parse will report properly
        return supp

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when ``code`` is disabled at ``line``; records the usage."""
        if code in self.file_disables:
            self.used.add((None, code))
            return True
        if code in self.line_disables.get(line, ()):
            self.used.add((line, code))
            return True
        return False

    def stale_entries(self) -> list[tuple[int, str]]:
        """(comment line, code) for every disable that never fired."""
        stale = [
            (line, code)
            for line, codes in self.line_disables.items()
            for code in sorted(codes)
            if (line, code) not in self.used
        ]
        stale.extend(
            (line, code)
            for code, line in self.file_disables.items()
            if (None, code) not in self.used
        )
        return sorted(stale)


@dataclass
class _FileContext:
    """Where a module sits in the package, and what it may therefore do."""

    relpath: str
    in_nn: bool = False
    dtype_exempt: bool = False
    in_simulator: bool = False
    is_random_module: bool = False
    imports_stdlib_random: bool = False
    suppressions: Suppressions | None = None


def _dotted_name(node: ast.AST) -> str | None:
    """Flatten an Attribute/Name chain into ``a.b.c`` (None if dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Checker(ast.NodeVisitor):
    """Single-pass visitor applying every rule."""

    def __init__(self, context: _FileContext, enabled: set[str]) -> None:
        self.ctx = context
        self.enabled = enabled
        self.violations: list[Violation] = []

    # -- plumbing ------------------------------------------------------
    def _report(self, node: ast.AST, code: str) -> None:
        if code not in self.enabled:
            return
        line = getattr(node, "lineno", 0)
        if self.ctx.suppressions is not None and self.ctx.suppressions.is_suppressed(
            line, code
        ):
            return
        self.violations.append(
            Violation(
                path=self.ctx.relpath,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=RULES[code],
            )
        )

    # -- imports (context for RP001) -----------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.ctx.imports_stdlib_random = True
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self.ctx.imports_stdlib_random = True
        self.generic_visit(node)

    # -- RP001 / RP007: forbidden calls --------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if not self.ctx.is_random_module:
                if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
                    self._report(node, "RP001")
                elif (
                    len(parts) == 2
                    and parts[0] == "random"
                    and self.ctx.imports_stdlib_random
                ):
                    self._report(node, "RP001")
            if self.ctx.in_simulator and len(parts) >= 2:
                if (parts[-2], parts[-1]) in _WALL_CLOCK:
                    self._report(node, "RP007")
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            self._check_dtype_literal(arg)
        self.generic_visit(node)

    # -- RP002: float equality -----------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            ):
                self._report(node, "RP002")
        self.generic_visit(node)

    # -- RP003: mutable defaults ---------------------------------------
    def _check_defaults(self, args: ast.arguments) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                    ast.DictComp, ast.SetComp)):
                self._report(default, "RP003")
            elif isinstance(default, ast.Call):
                name = _dotted_name(default.func)
                if name in ("list", "dict", "set", "bytearray",
                            "collections.defaultdict", "collections.deque"):
                    self._report(default, "RP003")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    # -- RP004: swallowed exceptions -----------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._is_broad(node.type) and not self._handler_reports(node):
            self._report(node, "RP004")
        self.generic_visit(node)

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True  # bare except
        names: list[ast.expr] = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
        )
        return any(
            isinstance(n, ast.Name) and n.id in ("Exception", "BaseException")
            for n in names
        )

    @staticmethod
    def _handler_reports(node: ast.ExceptHandler) -> bool:
        for stmt in ast.walk(ast.Module(body=node.body, type_ignores=[])):
            if isinstance(stmt, ast.Raise):
                return True
            if isinstance(stmt, ast.Call):
                func = stmt.func
                if isinstance(func, ast.Attribute) and func.attr in _LOGGING_ATTRS:
                    return True
                if isinstance(func, ast.Name) and func.id in _LOGGING_NAMES:
                    return True
        return False

    # -- RP005: dtype literals -----------------------------------------
    def _check_dtype_literal(self, node: ast.expr) -> None:
        if self.ctx.dtype_exempt or "RP005" not in self.enabled:
            return
        if isinstance(node, ast.Constant) and node.value in ("float32", "float64"):
            self._report(node, "RP005")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.ctx.dtype_exempt and node.attr in ("float32", "float64"):
            root = _dotted_name(node.value)
            if root in ("np", "numpy"):
                self._report(node, "RP005")
        self.generic_visit(node)

    # -- RP006: tape-state mutation ------------------------------------
    def _check_store_target(self, target: ast.expr) -> None:
        if self.ctx.in_nn:
            return
        if isinstance(target, ast.Attribute) and target.attr in ("data", "grad"):
            self._report(target, "RP006")
        elif isinstance(target, ast.Subscript):
            value = target.value
            if isinstance(value, ast.Attribute) and value.attr in ("data", "grad"):
                self._report(target, "RP006")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)


def _context_for(relpath: str) -> _FileContext:
    posix = relpath.replace("\\", "/")
    in_nn = "repro/nn/" in posix
    return _FileContext(
        relpath=relpath,
        in_nn=in_nn,
        # The analysis tooling *implements* the dtype policy, so naming
        # dtypes there is its job, not a violation.
        dtype_exempt=in_nn or "repro/analysis/" in posix,
        in_simulator="repro/simulator/" in posix,
        is_random_module=posix.endswith("repro/random.py"),
    )


def lint_source(
    source: str,
    relpath: str = "<string>",
    rules: Iterable[str] | None = None,
    suppressions: Suppressions | None = None,
) -> list[Violation]:
    """Lint one module's source text.

    Args:
        source: Python source code.
        relpath: Path used for reporting and for the location-sensitive
            rules (RP001/RP005/RP006/RP007 key off where the file lives).
        rules: Subset of rule codes to apply; all of :data:`RULES` when
            omitted.
        suppressions: Pre-collected disable comments to consult (and mark
            usage on).  Collected from ``source`` when omitted — pass a
            shared instance to accumulate usage across passes for the
            stale-suppression audit.

    Raises:
        AnalysisError: On syntax errors or unknown rule codes.
    """
    enabled = set(RULES) if rules is None else set(rules)
    unknown = enabled - RULES.keys()
    if unknown:
        raise AnalysisError(f"unknown lint rule(s): {sorted(unknown)}")
    context = _context_for(relpath)
    context.suppressions = (
        suppressions if suppressions is not None
        else Suppressions.collect(source, relpath)
    )
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        raise AnalysisError(f"{relpath}: cannot lint, syntax error: {exc}") from exc
    checker = _Checker(context, enabled)
    checker.visit(tree)
    return sorted(checker.violations, key=lambda v: (v.line, v.col, v.code))


def lint_file(path: str | Path, root: str | Path | None = None,
              rules: Iterable[str] | None = None,
              suppressions: Suppressions | None = None) -> list[Violation]:
    """Lint one file; ``root`` anchors the reported relative path."""
    path = Path(path)
    relpath = str(path.relative_to(root)) if root is not None else str(path)
    return lint_source(
        path.read_text(encoding="utf-8"), relpath, rules, suppressions=suppressions
    )


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[str] | None = None,
) -> list[Violation]:
    """Lint every ``.py`` file under each of ``paths`` (files or trees)."""
    violations: list[Violation] = []
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        root = entry if entry.is_dir() else entry.parent
        for file in files:
            violations.extend(lint_file(file, root=root.parent, rules=rules))
    return violations


def format_violations(violations: Sequence[Violation]) -> str:
    """Human-readable report, one finding per line."""
    if not violations:
        return "no lint violations"
    lines = [v.format() for v in violations]
    lines.append(f"{len(violations)} violation(s)")
    return "\n".join(lines)
