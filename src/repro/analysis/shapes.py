"""Abstract shape/dtype interpretation of the RouteNet forward graph.

RouteNet's computation graph is assembled at runtime from each input's
path-link incidence, so a shape bug (a transposed kernel, an
``include_load`` mismatch, a readout that does not match the state width)
only surfaces when a real sample reaches it — possibly an hour into a
training run on a large topology.  This module proves shape/broadcast
compatibility *statically*: it executes ``model.forward`` with
:class:`ShapeTensor` operands that carry only ``(shape, dtype)`` and
implement every registered op's shape semantics, so the whole forward
graph "runs" in milliseconds with no array arithmetic at all.

Usage::

    from repro.analysis import TopologySignature, check_model

    sig = TopologySignature.from_topology(topology)   # real incidence
    report = check_model(model, sig)
    if not report.ok:
        print(report.error)        # names the op and the operand shapes

Index-valued inputs (``link_indices``, ``mask``) stay concrete — they are
input data, not network activations — which lets the checker also prove
gather/segment index bounds.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..errors import AnalysisError
from ..nn import layers as nn_layers
from ..nn import ops as nn_ops
from ..nn.tensor import Tensor

__all__ = [
    "ShapeCheckError",
    "ShapeTensor",
    "ShapeTrace",
    "ShapeReport",
    "TopologySignature",
    "abstract_graph",
    "check_model",
    "paper_signatures",
    "PAPER_SIGNATURE_NAMES",
]

#: The evaluation signatures of the source paper: the two training
#: topologies (NSFNET, 50-node synthetic) and the unseen Geant2.
PAPER_SIGNATURE_NAMES = ("nsfnet", "geant2", "synthetic50")


class ShapeCheckError(AnalysisError):
    """A shape/broadcast/bounds violation found during abstract execution.

    Attributes:
        op: Name of the op whose shape rule failed.
        operands: The operand shapes handed to the op.
    """

    def __init__(self, op: str, detail: str, operands: Sequence[tuple[int, ...]]):
        self.op = op
        self.operands = tuple(tuple(s) for s in operands)
        shapes = " , ".join(str(s) for s in self.operands)
        super().__init__(f"{op}: {detail} (operand shapes: {shapes})")


@dataclass
class ShapeTrace:
    """Chronological record of every abstract op that executed."""

    entries: list[tuple[str, tuple[tuple[int, ...], ...], tuple[int, ...]]] = field(
        default_factory=list
    )

    def record(
        self,
        op: str,
        inputs: Sequence[tuple[int, ...]],
        output: tuple[int, ...],
    ) -> None:
        self.entries.append((op, tuple(tuple(s) for s in inputs), tuple(output)))

    def __len__(self) -> int:
        return len(self.entries)

    def tail(self, n: int = 5) -> str:
        lines = [
            f"  {op}{list(ins)} -> {out}" for op, ins, out in self.entries[-n:]
        ]
        return "\n".join(lines)


_ACTIVE_TRACE: ShapeTrace | None = None


def _record(op: str, inputs: Sequence[tuple[int, ...]], output: tuple[int, ...]) -> None:
    if _ACTIVE_TRACE is not None:
        _ACTIVE_TRACE.record(op, inputs, output)


def _shape_dtype(value: object) -> tuple[tuple[int, ...], np.dtype]:
    """Shape and dtype of any operand kind the graph can mix in."""
    if isinstance(value, ShapeTensor):
        return value.shape, value.dtype
    if isinstance(value, Tensor):
        return value.data.shape, value.data.dtype
    if isinstance(value, np.ndarray):
        return value.shape, value.dtype
    if isinstance(value, (int, float, bool, np.number)):
        return (), np.result_type(type(value))
    raise ShapeCheckError(
        "coerce", f"cannot abstract operand of type {type(value).__name__}", []
    )


def _broadcast(op: str, *operands: object) -> "ShapeTensor":
    shapes, dtypes = zip(*(_shape_dtype(v) for v in operands))
    try:
        out_shape = np.broadcast_shapes(*shapes)
    except ValueError:
        raise ShapeCheckError(op, "operands do not broadcast", shapes) from None
    out = ShapeTensor(out_shape, np.result_type(*dtypes))
    _record(op, shapes, out.shape)
    return out


def _matmul_shape(op: str, a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    if len(a) == 0 or len(b) == 0:
        raise ShapeCheckError(op, "matmul operands must be at least 1-D", (a, b))
    a2 = (1,) + a if len(a) == 1 else a
    b2 = b + (1,) if len(b) == 1 else b
    if len(a2) > 2 or len(b2) > 2:
        # Batched matmul is not used by any registered layer; keep the rule
        # strict so an accidental extra axis is an error, not a silent
        # broadcast.
        raise ShapeCheckError(op, "only 1-D/2-D matmul is supported", (a, b))
    if a2[-1] != b2[0]:
        raise ShapeCheckError(
            op, f"inner dimensions differ ({a2[-1]} vs {b2[0]})", (a, b)
        )
    out = (a2[0], b2[1])
    if len(a) == 1:
        out = out[1:]
    if len(b) == 1:
        out = out[:-1]
    return out


class ShapeTensor:
    """A tensor stripped to ``(shape, dtype)`` with op shape semantics.

    Supports exactly the operator surface of :class:`repro.nn.Tensor`, so
    real model code runs on it unmodified under :func:`abstract_graph`.
    """

    __slots__ = ("shape", "dtype")

    def __init__(self, shape: Sequence[int], dtype: np.dtype | type = np.float64):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)

    # -- introspection mirroring Tensor --------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of a 0-d abstract tensor")
        return self.shape[0]

    def __repr__(self) -> str:
        return f"ShapeTensor(shape={self.shape}, dtype={self.dtype})"

    # -- arithmetic (broadcasting) --------------------------------------
    def __add__(self, other: object) -> "ShapeTensor":
        return _broadcast("add", self, other)

    __radd__ = __add__

    def __sub__(self, other: object) -> "ShapeTensor":
        return _broadcast("sub", self, other)

    def __rsub__(self, other: object) -> "ShapeTensor":
        return _broadcast("sub", other, self)

    def __mul__(self, other: object) -> "ShapeTensor":
        return _broadcast("mul", self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "ShapeTensor":
        return _broadcast("div", self, other)

    def __rtruediv__(self, other: object) -> "ShapeTensor":
        return _broadcast("div", other, self)

    def __neg__(self) -> "ShapeTensor":
        return _broadcast("neg", self)

    def __pow__(self, exponent: float) -> "ShapeTensor":
        return _broadcast("pow", self, exponent)

    def __matmul__(self, other: object) -> "ShapeTensor":
        a, a_dt = _shape_dtype(self)
        b, b_dt = _shape_dtype(other)
        out = ShapeTensor(_matmul_shape("matmul", a, b), np.result_type(a_dt, b_dt))
        _record("matmul", (a, b), out.shape)
        return out

    def __rmatmul__(self, other: object) -> "ShapeTensor":
        a, a_dt = _shape_dtype(other)
        b, b_dt = _shape_dtype(self)
        out = ShapeTensor(_matmul_shape("matmul", a, b), np.result_type(a_dt, b_dt))
        _record("matmul", (a, b), out.shape)
        return out

    # -- reductions / shaping -------------------------------------------
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "ShapeTensor":
        if axis is None:
            out_shape: tuple[int, ...] = (
                tuple(1 for _ in self.shape) if keepdims else ()
            )
        else:
            if not -self.ndim <= axis < self.ndim:
                raise ShapeCheckError(
                    "sum", f"axis {axis} out of range for {self.ndim}-D", (self.shape,)
                )
            axis %= self.ndim
            out_shape = tuple(
                1 if i == axis else s for i, s in enumerate(self.shape) if keepdims or i != axis
            )
        out = ShapeTensor(out_shape, self.dtype)
        _record("sum", (self.shape,), out.shape)
        return out

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "ShapeTensor":
        return self.sum(axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "ShapeTensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        negative = [s for s in shape if s == -1]
        if len(negative) > 1:
            raise ShapeCheckError("reshape", "more than one -1 dimension", (self.shape,))
        known = int(np.prod([s for s in shape if s != -1], dtype=np.int64)) or 1
        if negative:
            if known == 0 or self.size % known:
                raise ShapeCheckError(
                    "reshape", f"cannot infer -1 for size {self.size}", (self.shape,)
                )
            shape = tuple(self.size // known if s == -1 else s for s in shape)
        if int(np.prod(shape, dtype=np.int64) if shape else 1) != self.size:
            raise ShapeCheckError(
                "reshape",
                f"cannot reshape size {self.size} into {tuple(shape)}",
                (self.shape,),
            )
        out = ShapeTensor(shape, self.dtype)
        _record("reshape", (self.shape,), out.shape)
        return out

    @property
    def T(self) -> "ShapeTensor":
        out = ShapeTensor(tuple(reversed(self.shape)), self.dtype)
        _record("transpose", (self.shape,), out.shape)
        return out

    def __getitem__(self, key: object) -> "ShapeTensor":
        # Index a zero-stride dummy view so numpy's own indexing semantics
        # compute the result shape without allocating the full array.
        dummy = np.broadcast_to(np.empty((), dtype=np.int8), self.shape)
        try:
            out_shape = dummy[key].shape
        except (IndexError, ValueError) as exc:
            raise ShapeCheckError("getitem", str(exc), (self.shape,)) from None
        out = ShapeTensor(out_shape, self.dtype)
        _record("getitem", (self.shape,), out.shape)
        return out

    # -- Tensor-protocol stubs ------------------------------------------
    def numpy(self) -> np.ndarray:  # pragma: no cover - misuse guard
        raise ShapeCheckError(
            "numpy", "abstract tensors carry no values; check shapes only", (self.shape,)
        )

    def backward(self, grad: object = None) -> None:  # pragma: no cover
        raise ShapeCheckError(
            "backward", "abstract graphs cannot be differentiated", (self.shape,)
        )


# ----------------------------------------------------------------------
# Abstract versions of every registered functional op
# ----------------------------------------------------------------------
def _abstract_tensor(value: object, requires_grad: bool = False,
                     dtype: np.dtype | type | None = None) -> ShapeTensor:
    """Abstract mirror of :func:`repro.nn.tensor`."""
    if isinstance(value, ShapeTensor):
        return value
    shape, inferred = _shape_dtype(value)
    if dtype is not None:
        inferred = np.dtype(dtype)
    elif inferred.kind != "f":
        inferred = np.dtype(np.float64)
    return ShapeTensor(shape, inferred)


def _unary(name: str):
    def op(x: object, *args: object, **kwargs: object) -> ShapeTensor:
        x = _abstract_tensor(x)
        out = ShapeTensor(x.shape, x.dtype)
        _record(name, (x.shape,), out.shape)
        return out

    op.__name__ = name
    return op


def _abstract_where(condition: object, a: object, b: object) -> ShapeTensor:
    cond_shape, _ = _shape_dtype(condition)
    a = _abstract_tensor(a)
    b = _abstract_tensor(b)
    try:
        out_shape = np.broadcast_shapes(cond_shape, a.shape, b.shape)
    except ValueError:
        raise ShapeCheckError(
            "where", "condition/branches do not broadcast",
            (cond_shape, a.shape, b.shape),
        ) from None
    out = ShapeTensor(out_shape, np.result_type(a.dtype, b.dtype))
    _record("where", (cond_shape, a.shape, b.shape), out.shape)
    return out


def _abstract_concat(tensors: Sequence[object], axis: int = -1) -> ShapeTensor:
    parts = [_abstract_tensor(t) for t in tensors]
    if not parts:
        raise ShapeCheckError("concat", "need at least one tensor", [])
    ndim = parts[0].ndim
    if any(p.ndim != ndim for p in parts):
        raise ShapeCheckError(
            "concat", "rank mismatch", [p.shape for p in parts]
        )
    ax = axis % ndim
    base = list(parts[0].shape)
    total = 0
    for p in parts:
        for i, (s0, s1) in enumerate(zip(base, p.shape)):
            if i != ax and s0 != s1:
                raise ShapeCheckError(
                    "concat",
                    f"non-concat dimension {i} differs",
                    [q.shape for q in parts],
                )
        total += p.shape[ax]
    base[ax] = total
    out = ShapeTensor(base, np.result_type(*(p.dtype for p in parts)))
    _record("concat", [p.shape for p in parts], out.shape)
    return out


def _abstract_stack(tensors: Sequence[object], axis: int = 0) -> ShapeTensor:
    parts = [_abstract_tensor(t) for t in tensors]
    if not parts:
        raise ShapeCheckError("stack", "need at least one tensor", [])
    first = parts[0].shape
    if any(p.shape != first for p in parts):
        raise ShapeCheckError("stack", "all shapes must match", [p.shape for p in parts])
    ax = axis % (len(first) + 1)
    out_shape = first[:ax] + (len(parts),) + first[ax:]
    out = ShapeTensor(out_shape, np.result_type(*(p.dtype for p in parts)))
    _record("stack", [p.shape for p in parts], out.shape)
    return out


def _abstract_gather(
    x: object, indices: np.ndarray, plan: object | None = None
) -> ShapeTensor:
    x = _abstract_tensor(x)
    idx = np.asarray(indices, dtype=np.intp)
    if x.ndim == 0:
        raise ShapeCheckError("gather", "cannot gather from a scalar", (x.shape,))
    if idx.size and (idx.min() < 0 or idx.max() >= x.shape[0]):
        raise ShapeCheckError(
            "gather",
            f"index range [{idx.min()}, {idx.max()}] outside first axis of "
            f"length {x.shape[0]}",
            (x.shape, idx.shape),
        )
    out = ShapeTensor(idx.shape + x.shape[1:], x.dtype)
    _record("gather", (x.shape, idx.shape), out.shape)
    return out


def _abstract_segment_sum(
    x: object, segment_ids: np.ndarray, num_segments: int,
    plan: object | None = None,
) -> ShapeTensor:
    x = _abstract_tensor(x)
    ids = np.asarray(segment_ids, dtype=np.intp)
    if x.ndim == 0 or ids.shape[0] != x.shape[0]:
        raise ShapeCheckError(
            "segment_sum",
            f"segment_ids has {ids.shape[0]} entries for "
            f"{x.shape[0] if x.ndim else 0} rows",
            (x.shape, ids.shape),
        )
    if ids.size and ids.max() >= num_segments:
        raise ShapeCheckError(
            "segment_sum",
            f"segment id {int(ids.max())} >= num_segments {num_segments}",
            (x.shape, ids.shape),
        )
    out = ShapeTensor((int(num_segments),) + x.shape[1:], x.dtype)
    _record("segment_sum", (x.shape, ids.shape), out.shape)
    return out


def _abstract_segment_mean(
    x: object, segment_ids: np.ndarray, num_segments: int
) -> ShapeTensor:
    return _abstract_segment_sum(x, segment_ids, num_segments)


def _abstract_dropout(x: object, rate: float, rng: object,
                      training: bool = True) -> ShapeTensor:
    x = _abstract_tensor(x)
    _record("dropout", (x.shape,), x.shape)
    return x


def _abstract_huber(pred: object, target: object, delta: float = 1.0) -> ShapeTensor:
    return _broadcast("huber", _abstract_tensor(pred), target)


def _abstract_clip(x: object, lo: float, hi: float) -> ShapeTensor:
    return _unary("clip")(x)


def _abstract_cell_precompute(self, x: object) -> ShapeTensor:
    """Shape semantics of ``x @ W + b`` for either recurrent cell."""
    return _abstract_tensor(x) @ self.w + self.bias


def _abstract_gru_step(self, gates_x: object, h: object) -> ShapeTensor:
    hs = self.hidden_size
    gates = _abstract_tensor(gates_x) + _abstract_tensor(h) @ self.u
    z = gates[:, :hs]
    n = gates[:, 2 * hs :]
    return (1.0 - z) * n + z * _abstract_tensor(h)


def _abstract_rnn_step(self, gates_x: object, h: object) -> ShapeTensor:
    return _abstract_tensor(gates_x) + _abstract_tensor(h) @ self.u


def _abstract_cell_call(self, x: object, h: object) -> ShapeTensor:
    return self.step_precomputed(self.precompute_input(x), h)


#: (class attribute) -> abstract twin for the fused recurrent cells.  The
#: fused tape nodes run raw numpy on ``Tensor.data`` for speed, which the
#: ShapeTensor operand can't emulate, so the cells are swapped alongside the
#: op layer; the twins re-express each step through the operator surface and
#: therefore validate the same kernel/state dimensions.
def _abstract_cell_patches() -> dict[tuple[type, str], object]:
    from ..nn.rnn import GRUCell, RNNCell

    return {
        (GRUCell, "__call__"): _abstract_cell_call,
        (GRUCell, "precompute_input"): _abstract_cell_precompute,
        (GRUCell, "step_precomputed"): _abstract_gru_step,
        (RNNCell, "__call__"): _abstract_cell_call,
        (RNNCell, "precompute_input"): _abstract_cell_precompute,
        (RNNCell, "step_precomputed"): _abstract_rnn_step,
    }


#: name -> abstract implementation for every entry of ``nn.ops.OP_REGISTRY``.
ABSTRACT_OPS: dict[str, object] = {
    **{name: _unary(name) for name in (
        "exp", "log", "sigmoid", "tanh", "relu", "leaky_relu",
        "softplus", "abs_", "sqrt",
    )},
    "clip": _abstract_clip,
    "where": _abstract_where,
    "concat": _abstract_concat,
    "stack": _abstract_stack,
    "gather": _abstract_gather,
    "segment_sum": _abstract_segment_sum,
    "segment_mean": _abstract_segment_mean,
    "dropout": _abstract_dropout,
    "huber": _abstract_huber,
}


@contextmanager
def abstract_graph(trace: ShapeTrace | None = None) -> Iterator[ShapeTrace]:
    """Swap the op layer for its abstract twin inside the ``with`` block.

    Patches ``repro.nn.ops``, the ``repro.nn.tensor`` entry point and the
    activation table so *unmodified* model code executes on
    :class:`ShapeTensor` operands.  Not reentrant and not thread-safe (the
    patch is process-global); checks are expected to run in tooling/CI
    contexts, not concurrently with training.

    Yields:
        The :class:`ShapeTrace` recording every abstract op executed.
    """
    global _ACTIVE_TRACE
    missing = [name for name in nn_ops.OP_REGISTRY if name not in ABSTRACT_OPS]
    if missing:
        raise AnalysisError(
            f"ops registered without an abstract shape rule: {missing}; "
            "add them to repro.analysis.shapes.ABSTRACT_OPS"
        )
    import repro.nn as nn_pkg

    trace = trace if trace is not None else ShapeTrace()
    saved_ops = {name: getattr(nn_ops, name) for name in ABSTRACT_OPS}
    saved_tensor = nn_pkg.tensor
    saved_activations = dict(nn_layers.ACTIVATIONS)
    cell_patches = _abstract_cell_patches()
    saved_cells = {
        (cls, name): cls.__dict__[name] for (cls, name) in cell_patches
    }
    prev_trace = _ACTIVE_TRACE
    _ACTIVE_TRACE = trace
    try:
        for name, fn in ABSTRACT_OPS.items():
            setattr(nn_ops, name, fn)
        nn_pkg.tensor = _abstract_tensor
        for (cls, name), fn in cell_patches.items():
            setattr(cls, name, fn)
        for act in saved_activations:
            if act != "linear":
                nn_layers.ACTIVATIONS[act] = _unary(act)
        yield trace
    finally:
        _ACTIVE_TRACE = prev_trace
        for name, fn in saved_ops.items():
            setattr(nn_ops, name, fn)
        nn_pkg.tensor = saved_tensor
        for (cls, name), fn in saved_cells.items():
            setattr(cls, name, fn)
        nn_layers.ACTIVATIONS.update(saved_activations)


# ----------------------------------------------------------------------
# Topology signatures and the model checker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySignature:
    """The incidence structure one topology/routing pair presents to RouteNet.

    Everything the forward graph's *structure* depends on — never any
    traffic values or link weights.
    """

    name: str
    num_nodes: int
    num_links: int
    num_paths: int
    link_indices: np.ndarray  # (P, max_len), -1 padded
    mask: np.ndarray  # (P, max_len) bool
    link_feature_dim: int = 1
    path_feature_dim: int = 1

    @property
    def max_path_length(self) -> int:
        return int(self.link_indices.shape[1])

    @classmethod
    def from_topology(
        cls,
        topology: "object",
        routing: "object | None" = None,
        link_feature_dim: int = 1,
        path_feature_dim: int = 1,
    ) -> "TopologySignature":
        """Signature of ``topology`` under ``routing`` (shortest-path default)
        with every ordered source/destination pair routed."""
        from ..routing import RoutingScheme

        if routing is None:
            routing = RoutingScheme.shortest_path(topology)
        pairs = [
            (s, d)
            for s in range(topology.num_nodes)
            for d in range(topology.num_nodes)
            if s != d and (s, d) in routing
        ]
        if not pairs:
            raise AnalysisError(f"topology {topology.name!r} routes no pairs")
        link_paths = [routing.link_path(s, d) for s, d in pairs]
        max_len = max(len(p) for p in link_paths)
        link_indices = np.full((len(pairs), max_len), -1, dtype=np.intp)
        for i, path in enumerate(link_paths):
            link_indices[i, : len(path)] = path
        return cls(
            name=str(topology.name),
            num_nodes=int(topology.num_nodes),
            num_links=int(topology.num_links),
            num_paths=len(pairs),
            link_indices=link_indices,
            mask=link_indices >= 0,
            link_feature_dim=link_feature_dim,
            path_feature_dim=path_feature_dim,
        )

    def model_input(self) -> "object":
        """A :class:`~repro.core.ModelInput` whose feature blocks are
        zero-filled placeholders (their *values* never matter abstractly)."""
        from ..core.features import ModelInput

        return ModelInput(
            pairs=tuple((0, 1) for _ in range(self.num_paths)),
            link_features=np.zeros((self.num_links, self.link_feature_dim)),
            path_features=np.zeros((self.num_paths, self.path_feature_dim)),
            link_indices=self.link_indices,
            mask=self.mask,
        )


def paper_signatures(
    link_feature_dim: int = 1, path_feature_dim: int = 1
) -> dict[str, TopologySignature]:
    """The three signatures of the paper's evaluation: NSFNET (14 nodes),
    Geant2 (24 nodes, unseen) and the 50-node synthetic topology."""
    from ..topology import geant2, nsfnet, synthetic_topology

    topologies = {
        "nsfnet": nsfnet(),
        "geant2": geant2(),
        "synthetic50": synthetic_topology(50, seed=0),
    }
    return {
        name: TopologySignature.from_topology(
            topo,
            link_feature_dim=link_feature_dim,
            path_feature_dim=path_feature_dim,
        )
        for name, topo in topologies.items()
    }


@dataclass(frozen=True)
class ShapeReport:
    """Outcome of one :func:`check_model` run."""

    ok: bool
    signature: str
    ops_checked: int
    output_shape: tuple[int, ...] | None = None
    output_dtype: str | None = None
    error: str | None = None
    failed_op: str | None = None
    failed_operands: tuple[tuple[int, ...], ...] = ()
    trace_tail: str = ""

    def format(self) -> str:
        if self.ok:
            return (
                f"[shape-check] {self.signature}: OK — {self.ops_checked} ops, "
                f"output {self.output_shape} {self.output_dtype}"
            )
        lines = [f"[shape-check] {self.signature}: FAILED — {self.error}"]
        if self.trace_tail:
            lines.append("last ops before failure:")
            lines.append(self.trace_tail)
        return "\n".join(lines)


def check_model(model: "object", signature: TopologySignature) -> ShapeReport:
    """Prove ``model.forward`` is shape-consistent for ``signature``.

    Runs the real forward method under :func:`abstract_graph`; no floating
    point arithmetic happens, so even the 50-node all-pairs signature checks
    in milliseconds.

    Returns:
        A :class:`ShapeReport`; on failure it names the offending op, its
        operand shapes and the last few ops executed before it.
    """
    from ..errors import ModelError

    inputs = signature.model_input()
    trace = ShapeTrace()
    try:
        with abstract_graph(trace):
            out = model.forward(inputs, training=False)
    except ShapeCheckError as exc:
        return ShapeReport(
            ok=False,
            signature=signature.name,
            ops_checked=len(trace),
            error=str(exc),
            failed_op=exc.op,
            failed_operands=exc.operands,
            trace_tail=trace.tail(),
        )
    except ModelError as exc:
        # forward()'s own feature-dimension guards fire before any op runs.
        return ShapeReport(
            ok=False,
            signature=signature.name,
            ops_checked=len(trace),
            error=str(exc),
            failed_op="forward-precondition",
            trace_tail=trace.tail(),
        )
    expected = (signature.num_paths, model.hparams.readout_targets)
    if out.shape != expected:
        return ShapeReport(
            ok=False,
            signature=signature.name,
            ops_checked=len(trace),
            error=(
                f"readout produced {out.shape}, expected {expected} "
                f"(paths x targets)"
            ),
            failed_op="readout",
            failed_operands=(out.shape,),
            trace_tail=trace.tail(),
        )
    return ShapeReport(
        ok=True,
        signature=signature.name,
        ops_checked=len(trace),
        output_shape=tuple(out.shape),
        output_dtype=str(out.dtype),
    )
