"""Tape sanitizer: pinpoint the first op that produces NaN/Inf.

A diverging training run usually surfaces as ``loss is not finite`` long
after the first bad value was produced (an overflowing ``exp``, a division
by a zero capacity, a log of a non-positive target).  Inside a
``with sanitize_tape():`` block every tape node is instrumented:

* **forward** — the op's output array is checked as it is recorded;
* **backward** — the incoming gradient and the gradients accumulated into
  each parent are checked as the tape unwinds.

The first non-finite value raises :class:`NonFiniteError` naming the op,
the stage, and the offending array's shape/count — instead of a finite
loss check failing dozens of ops later.

Enabled from the trainer via ``Trainer(..., sanitize=True)`` or the CLI
via ``repro train --sanitize``.  The instrumentation costs one
``isfinite`` scan per op, so it is off by default.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

import numpy as np

from ..errors import AnalysisError
from ..nn.tensor import Tensor

__all__ = ["NonFiniteError", "sanitize_tape"]


class NonFiniteError(AnalysisError):
    """A NaN or Inf appeared on the tape.

    Attributes:
        op: Name of the op that produced the bad array.
        stage: ``"forward"``, ``"backward-input"`` or ``"backward-parent"``.
    """

    def __init__(self, op: str, stage: str, array: np.ndarray) -> None:
        self.op = op
        self.stage = stage
        bad = int((~np.isfinite(array)).sum())
        nan = int(np.isnan(array).sum())
        super().__init__(
            f"non-finite values first produced by op {op!r} during {stage}: "
            f"{bad}/{array.size} bad entries ({nan} NaN) in a {array.shape} "
            f"array"
        )


def _op_name(backward: Callable[..., None] | None) -> str:
    """Derive the op name from its backward closure's qualname.

    Every op builds its node via ``Tensor._make(data, parents, backward)``
    with a ``backward`` defined inside the op function, so the qualname
    looks like ``"exp.<locals>.backward"`` or
    ``"Tensor.__add__.<locals>.backward"``.
    """
    if backward is None:
        return "<leaf>"
    qualname = getattr(backward, "__qualname__", "")
    owner = qualname.split(".<locals>")[0]
    return owner.split(".")[-1].strip("_") or "<unknown>"


def _check(array: np.ndarray, op: str, stage: str) -> None:
    if not np.all(np.isfinite(array)):
        raise NonFiniteError(op, stage, np.asarray(array))


@contextmanager
def sanitize_tape() -> Iterator[None]:
    """Instrument all tape construction inside the block.

    Patches :meth:`Tensor._make` (the single funnel every op goes through)
    so each node's output is checked on creation and its backward closure
    is wrapped with gradient checks.  Nested use is harmless; the patch is
    process-global, so do not run concurrent un-sanitized training in the
    same interpreter and expect it to be exempt.

    Raises:
        NonFiniteError: As soon as any instrumented array goes non-finite.
    """
    original = Tensor.__dict__["_make"].__func__

    def checked_make(
        data: np.ndarray,
        parents: Iterable[Tensor],
        backward: Callable[[np.ndarray], None],
        retains: "tuple[np.ndarray, ...] | None" = None,
    ) -> Tensor:
        parents = tuple(parents)
        op = _op_name(backward)
        _check(data, op, "forward")

        def checked_backward(grad: np.ndarray) -> None:
            _check(grad, op, "backward-input")
            backward(grad)
            for parent in parents:
                if parent.requires_grad and parent.grad is not None:
                    _check(parent.grad, op, "backward-parent")

        checked_backward.__qualname__ = getattr(
            backward, "__qualname__", checked_backward.__qualname__
        )
        return original(data, parents, checked_backward, retains)

    Tensor._make = staticmethod(checked_make)
    try:
        yield
    finally:
        Tensor._make = staticmethod(original)
