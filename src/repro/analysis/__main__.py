"""``python -m repro.analysis`` — run the static correctness suite.

Default run, in order:

1. **Lint** (RP0xx): single-file AST rules over ``src/``.
2. **Flow passes** (RP2xx/RP3xx/RP4xx/RP5xx): the interprocedural
   analyses — spawn-safety & determinism proofs over the runner call
   graph, dimensional analysis of unit-annotated signatures, numpy
   hot-path perf lints, and concurrency lockset/guardedness proofs over
   the threaded serving/pool layers (the derived lock-order graph lands
   in the ``json`` payload as ``lock_order``).  Skip with ``--no-flow``.
3. **Tape dataflow** (RP6xx): records one real fused forward+backward per
   paper topology family and proves the tape free of in-place writes to
   live alias classes (RP601), dead stores (RP602), scope-escaping
   buffers (RP603) and peak-arena regressions against the committed
   ``BENCH_training.json`` budgets (RP604).  The verified per-family
   :class:`~repro.analysis.dataflow.arena.ArenaPlan` proofs land in the
   ``json`` payload as ``dataflow`` (uploaded as a CI artifact).  Skip
   with ``--no-dataflow``.
4. **Stale-suppression audit** (RP008): a ``# repro-lint: disable=RPxxx``
   comment that suppressed nothing across *all* passes is itself an error
   (runs only on full-tree, full-rule runs, where "unused" is meaningful).
5. **Shape check**: the default RouteNet architecture against the paper's
   three topology signatures (NSFNET, Geant2, 50-node synthetic).
6. ``--gradcheck`` adds the finite-difference gradient audit (opt-in
   here; CI runs it in the pytest matrix as well).

Severities: **error** findings fail ``--strict``; **warning** findings
(RP204, off-hot-path RP4xx, RP5xx outside serving/runner, RP602) are
reported but never gate.  Text output
hides warnings behind ``--show-warnings``; ``json``/``github`` formats
always include them.

Output formats (``--format``):

* ``text`` — human-readable (default);
* ``json`` — one machine-readable object on stdout;
* ``github`` — GitHub Actions workflow annotations
  (``::error file=...,line=...::...``) plus a plain summary.

Exit codes:

* ``0`` — clean, or findings in non-strict mode;
* ``1`` — ``--strict`` and at least one error-severity finding or failed
  check, or ``--max-seconds`` exceeded;
* ``2`` — configuration error (unknown rule, unreadable path,
  unparsable source).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from ..core import HyperParams, RouteNet
from ..errors import AnalysisError
from .codes import ALL_CODES
from .gradcheck import format_gradcheck, gradcheck_all
from .lint import RULES, Violation, format_violations, lint_paths, lint_source
from .shapes import check_model, paper_signatures

__all__ = ["main"]


def _default_src_root() -> Path:
    # <repo>/src/repro/analysis/__main__.py -> <repo>/src
    return Path(__file__).resolve().parents[2]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo static checks: lint, flow analyses, shape check, "
                    "gradient audit.",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on any error-severity finding or failed check (CI gate)",
    )
    parser.add_argument(
        "--paths", nargs="*",
        help="files/directories to lint (default: the installed src tree); "
             "flow passes and the stale audit only run on the default tree",
    )
    parser.add_argument(
        "--rules", help="comma-separated rule subset, e.g. RP001,RP004",
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the AST linter",
    )
    parser.add_argument(
        "--no-flow", action="store_true",
        help="skip the interprocedural passes (RP2xx/RP3xx/RP4xx)",
    )
    parser.add_argument(
        "--no-dataflow", action="store_true",
        help="skip the tape dataflow pass (RP6xx; records a real fused "
             "forward+backward per topology family)",
    )
    parser.add_argument(
        "--no-shapes", action="store_true",
        help="skip the RouteNet shape check",
    )
    parser.add_argument(
        "--gradcheck", action="store_true",
        help="also run the finite-difference gradient audit of every op",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        dest="fmt", help="output format (default: text)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="deprecated alias for --format json",
    )
    parser.add_argument(
        "--show-warnings", action="store_true",
        help="print warning-severity findings in text output "
             "(json/github always include them)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="directory for the per-file AST/facts cache (content-hash "
             "keyed; safe to persist across runs and branches)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="fail (exit 1) if the analysis itself takes longer than this",
    )
    return parser


def _github_line(v: Violation) -> str:
    level = "error" if v.severity == "error" else "warning"
    return (f"::{level} file={v.path},line={v.line},col={v.col}"
            f"::{v.code} {v.message}")


def _run_flow(src_root: Path, cache_dir: Path | None,
              findings: list[Violation]) -> tuple[dict, dict]:
    """Index the tree, run the flow passes.

    Returns the module map (whose ``Suppressions`` feed the stale audit)
    and the concurrency pass's lock-order report.
    """
    from .concurrency import run_concurrency
    from .flow import CallGraph, index_project
    from .flow.perf import check_perf
    from .flow.spawnsafety import check_spawn_safety
    from .flow.units import check_units

    index = index_project(src_root, cache_dir=cache_dir)
    graph = CallGraph(index)
    findings.extend(check_spawn_safety(index, graph))
    findings.extend(check_units(index))
    findings.extend(check_perf(index, graph))
    concurrency_findings, lock_order = run_concurrency(index, graph)
    findings.extend(concurrency_findings)
    return index.modules, lock_order


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    fmt = "json" if args.as_json else args.fmt
    started = time.perf_counter()
    errors = 0
    warnings = 0
    payload: dict[str, object] = {}
    findings: list[Violation] = []
    src_root = _default_src_root()

    rules = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules else None
    )
    unknown = set(rules or []) - RULES.keys()
    if unknown:
        print(f"error: unknown rule(s) {sorted(unknown)}", file=sys.stderr)
        return 2

    # Flow passes run over the default tree and produce the module map whose
    # Suppressions objects are shared with the linter below, so the stale
    # audit sees usage across every pass.
    modules = None
    flow_ran = False
    if not args.no_flow and not args.paths:
        try:
            modules, lock_order = _run_flow(src_root, args.cache_dir, findings)
            payload["lock_order"] = lock_order
            flow_ran = True
        except AnalysisError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    lint_ran = False
    if not args.no_lint:
        try:
            if modules is not None:
                for info in modules.values():
                    findings.extend(lint_source(
                        info.source, info.relpath, rules=rules,
                        suppressions=info.suppressions,
                    ))
            else:
                roots = ([Path(p) for p in args.paths] if args.paths
                         else [src_root])
                findings.extend(lint_paths(roots, rules=rules))
            lint_ran = True
        except AnalysisError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: cannot read input: {exc}", file=sys.stderr)
            return 2

    # Tape dataflow (RP6xx): runs the *real* model, so it is skipped for
    # explicit-path runs (which analyze arbitrary trees, not this repo).
    if not args.no_dataflow and not args.paths:
        from .dataflow import run_dataflow

        try:
            dataflow_findings, dataflow_payload = run_dataflow(
                repo_root=src_root.parent
            )
        except AnalysisError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings.extend(dataflow_findings)
        payload["dataflow"] = dataflow_payload

    # Stale-suppression audit: only meaningful when every pass that could
    # have used a suppression actually ran, over the whole tree.
    if flow_ran and lint_ran and rules is None:
        for info in modules.values():
            for line, code in info.suppressions.stale_entries():
                findings.append(Violation(
                    path=info.relpath, line=line, col=0, code="RP008",
                    message=f"{ALL_CODES['RP008']} (disable={code})",
                ))

    findings.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    errors += sum(1 for v in findings if v.severity == "error")
    warnings += sum(1 for v in findings if v.severity != "error")
    payload["findings"] = [v.__dict__ for v in findings]
    # Back-compat alias for the pre-flow JSON schema.
    payload["lint"] = [v.__dict__ for v in findings if v.code.startswith("RP0")]

    if fmt == "text":
        shown = [v for v in findings
                 if v.severity == "error" or args.show_warnings]
        print(f"[analysis] {errors} error(s), {warnings} warning(s)")
        if shown:
            print(format_violations(shown))
        hidden = len(findings) - len(shown)
        if hidden:
            print(f"({hidden} warning(s) hidden; use --show-warnings)")
    elif fmt == "github":
        for v in findings:
            print(_github_line(v))

    if not args.no_shapes:
        model = RouteNet(HyperParams())
        reports = [
            check_model(model, sig) for sig in paper_signatures().values()
        ]
        failures = [r for r in reports if not r.ok]
        errors += len(failures)
        payload["shapes"] = [r.__dict__ for r in reports]
        if fmt == "text":
            for report in reports:
                print(report.format())
        elif fmt == "github":
            for report in failures:
                print(f"::error::shape check failed: {report.format()}")

    if args.gradcheck:
        try:
            reports = gradcheck_all()
        except AnalysisError as exc:
            print(f"[gradcheck] configuration error: {exc}", file=sys.stderr)
            return 2
        failed = [r for r in reports.values() if not r.ok]
        errors += len(failed)
        payload["gradcheck"] = {
            name: report.__dict__ for name, report in reports.items()
        }
        if fmt == "text":
            print(format_gradcheck(reports))

    elapsed = time.perf_counter() - started
    payload["elapsed_seconds"] = round(elapsed, 3)
    payload["counts"] = {"errors": errors, "warnings": warnings}

    if fmt == "json":
        print(json.dumps(payload, indent=2, default=str))

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"error: analysis took {elapsed:.2f}s "
              f"(budget {args.max_seconds:.2f}s)", file=sys.stderr)
        return 1

    if errors:
        status = 1 if args.strict else 0
        if fmt == "text":
            print(f"{errors} error(s) found"
                  + ("" if args.strict else " (non-strict: exit 0)"))
        return status
    if fmt == "text":
        print(f"all checks passed ({elapsed:.2f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
