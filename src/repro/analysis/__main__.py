"""``python -m repro.analysis`` — run the static correctness suite.

Default run: lint ``src/`` with every rule, then shape-check the default
RouteNet architecture against the paper's three topology signatures
(NSFNET, Geant2, 50-node synthetic).  ``--gradcheck`` adds the
finite-difference gradient audit (seconds, so opt-in here; CI runs it in
the pytest matrix as well).

``--strict`` makes any finding a non-zero exit, which is how CI gates
merges; without it the tool only reports.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from ..core import HyperParams, RouteNet
from ..errors import AnalysisError
from .gradcheck import format_gradcheck, gradcheck_all
from .lint import RULES, format_violations, lint_paths
from .shapes import check_model, paper_signatures

__all__ = ["main"]


def _default_src_root() -> Path:
    # <repo>/src/repro/analysis/__main__.py -> <repo>/src
    return Path(__file__).resolve().parents[2]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo static checks: lint, shape-check, gradient audit.",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any violation or failed check (CI gate)",
    )
    parser.add_argument(
        "--paths", nargs="*",
        help="files/directories to lint (default: the installed src tree)",
    )
    parser.add_argument(
        "--rules", help="comma-separated rule subset, e.g. RP001,RP004",
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the AST linter",
    )
    parser.add_argument(
        "--no-shapes", action="store_true",
        help="skip the RouteNet shape check",
    )
    parser.add_argument(
        "--gradcheck", action="store_true",
        help="also run the finite-difference gradient audit of every op",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable output",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    problems = 0
    payload: dict[str, object] = {}

    if not args.no_lint:
        roots = [Path(p) for p in args.paths] if args.paths else [_default_src_root()]
        rules = (
            [r.strip() for r in args.rules.split(",") if r.strip()]
            if args.rules else None
        )
        unknown = set(rules or []) - RULES.keys()
        if unknown:
            print(f"error: unknown rule(s) {sorted(unknown)}", file=sys.stderr)
            return 2
        started = time.perf_counter()
        violations = lint_paths(roots, rules=rules)
        elapsed = time.perf_counter() - started
        problems += len(violations)
        payload["lint"] = [v.__dict__ for v in violations]
        if not args.as_json:
            print(f"[lint] {len(violations)} violation(s) "
                  f"({elapsed * 1000:.0f} ms)")
            if violations:
                print(format_violations(violations))

    if not args.no_shapes:
        model = RouteNet(HyperParams())
        started = time.perf_counter()
        reports = [
            check_model(model, sig) for sig in paper_signatures().values()
        ]
        elapsed = time.perf_counter() - started
        failures = [r for r in reports if not r.ok]
        problems += len(failures)
        payload["shapes"] = [r.__dict__ for r in reports]
        if not args.as_json:
            for report in reports:
                print(report.format())
            print(f"[shape-check] {len(reports)} signature(s) in "
                  f"{elapsed * 1000:.0f} ms")

    if args.gradcheck:
        try:
            reports = gradcheck_all()
        except AnalysisError as exc:
            print(f"[gradcheck] configuration error: {exc}", file=sys.stderr)
            return 2
        failed = [r for r in reports.values() if not r.ok]
        problems += len(failed)
        payload["gradcheck"] = {
            name: report.__dict__ for name, report in reports.items()
        }
        if not args.as_json:
            print(format_gradcheck(reports))

    if args.as_json:
        print(json.dumps(payload, indent=2, default=str))

    if problems:
        status = 1 if args.strict else 0
        if not args.as_json:
            print(f"{problems} problem(s) found"
                  + ("" if args.strict else " (non-strict: exit 0)"))
        return status
    if not args.as_json:
        print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
