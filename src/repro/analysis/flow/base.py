"""Shared plumbing for the interprocedural passes."""

from __future__ import annotations

from ..codes import ALL_CODES, CODE_SEVERITY
from ..lint import Violation
from .callgraph import ModuleInfo

__all__ = ["emit"]


def emit(
    findings: list[Violation],
    info: ModuleInfo,
    line: int,
    col: int,
    code: str,
    extra: str = "",
    severity: str | None = None,
) -> None:
    """Append a finding unless a ``# repro-lint: disable`` comment covers it.

    Consulting :attr:`ModuleInfo.suppressions` here (rather than filtering
    afterwards) marks the suppression as *used*, which is what the RP008
    stale-suppression audit keys on.
    """
    if info.suppressions is not None and info.suppressions.is_suppressed(line, code):
        return
    message = ALL_CODES[code] + (f" [{extra}]" if extra else "")
    findings.append(Violation(
        path=info.relpath,
        line=line,
        col=col,
        code=code,
        message=message,
        severity=severity or CODE_SEVERITY.get(code, "error"),
    ))
