"""Project-wide import/call-graph construction.

The single-file linter (:mod:`repro.analysis.lint`) sees one module at a
time; every flow pass needs the *project*: which function calls which,
across modules, through methods, decorators, lambdas, aliases and
``functools.partial``.  This module builds that graph once per run:

* :func:`index_project` parses every ``*.py`` under a root into
  :class:`ModuleInfo` records (import tables, functions, classes,
  module-level globals, suppression comments), with an optional on-disk
  cache keyed on each file's content hash;
* :class:`CallGraph` resolves call sites to canonical function names
  (``repro.simulator.network.NetworkSimulator.run``) and offers
  reachability and call-chain queries on top.

Resolution is deliberately conservative-by-overapproximation where Python
is dynamic: a reference to a function that is never syntactically called
(handed to ``ParallelRunner``, wrapped in ``functools.partial``, stored in
a registry dict) still produces a ``ref`` edge, so reachability never
misses a higher-order flow.  ``getattr(obj, "name")`` with a literal
string resolves like a normal attribute; with a dynamic string it is
recorded as an unresolved :class:`DynamicCall` instead of silently
dropped.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from ...errors import AnalysisError
from ..lint import Suppressions

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "DynamicCall",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "index_project",
]

#: Bump when the extracted facts change shape; invalidates the disk cache.
_CACHE_VERSION = 3

_WALL_CLOCK_TARGETS = {
    "time.time", "time.monotonic", "time.perf_counter", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popleft", "appendleft",
    "clear", "update", "add", "discard", "setdefault", "sort", "reverse",
    "popitem",
}


@dataclass
class CallSite:
    """One syntactic call inside a function body."""

    written: str | None      #: dotted name as written (``self.run``), None if dynamic
    resolved: str | None     #: canonical target qualname, None if unresolved
    line: int
    col: int
    kind: str = "call"       #: ``"call"`` (invoked) or ``"ref"`` (reference escapes)


@dataclass
class DynamicCall:
    """A ``getattr(obj, <dynamic>)`` (or similar) call we cannot resolve."""

    line: int
    description: str


@dataclass
class FunctionInfo:
    """Everything the flow passes need to know about one function."""

    qualname: str                       #: canonical ``module.Class.method`` name
    module: str
    relpath: str
    lineno: int
    node: ast.AST                       #: FunctionDef / AsyncFunctionDef / Lambda
    class_name: str | None = None
    is_lambda: bool = False
    decorators: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    dynamic_calls: list[DynamicCall] = field(default_factory=list)
    #: (module, name, line) module-level names this function reads.
    global_reads: list[tuple[str, str, int]] = field(default_factory=list)
    #: (module, name, line) module-level names this function writes/mutates.
    global_writes: list[tuple[str, str, int]] = field(default_factory=list)
    #: lines with wall-clock reads (time.time & friends, alias-aware).
    wall_clock: list[int] = field(default_factory=list)
    #: lines with seed-less RNG construction (make_rng(), default_rng(), ...).
    unseeded_rng: list[int] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class: bases (as written), methods, annotated fields."""

    name: str
    module: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  #: name -> qualname
    #: field name -> annotation source text (dataclass/class-var annotations).
    fields: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Parsed facts of one module."""

    name: str                 #: dotted module name (``repro.simulator.network``)
    relpath: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level name -> dotted target for ``f = g`` / ``f = partial(g)``.
    aliases: dict[str, str] = field(default_factory=dict)
    #: module-level names bound to structurally mutable values.
    mutable_globals: set[str] = field(default_factory=set)
    #: module-level names (any) defined by assignment.
    global_names: set[str] = field(default_factory=set)
    suppressions: Suppressions | None = None


def _module_name(path: Path, root: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name in (
            "list", "dict", "set", "bytearray", "deque", "collections.deque",
            "defaultdict", "collections.defaultdict", "collections.OrderedDict",
        )
    return False


class _ModuleExtractor:
    """Collects per-module symbol tables and per-function raw facts."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info

    # -- entry ---------------------------------------------------------
    def run(self) -> None:
        for stmt in self.info.tree.body:
            self._top_level(stmt)

    def _top_level(self, stmt: ast.stmt) -> None:
        info = self.info
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                info.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(stmt, ast.ImportFrom):
            base = self._resolve_from(stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._register_function(stmt, class_name=None)
        elif isinstance(stmt, ast.ClassDef):
            self._register_class(stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                info.global_names.add(target.id)
                if value is None:
                    continue
                if isinstance(value, ast.Lambda):
                    self._register_lambda(value, target.id, class_name=None)
                elif _is_mutable_literal(value):
                    info.mutable_globals.add(target.id)
                else:
                    dotted = _dotted(value) or self._partial_target(value)
                    if dotted:
                        info.aliases[target.id] = dotted
        elif isinstance(stmt, (ast.If, ast.Try)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._top_level(sub)

    def _resolve_from(self, stmt: ast.ImportFrom) -> str:
        if stmt.level == 0:
            return stmt.module or ""
        # Relative import: drop `level` trailing components of the package.
        parts = self.info.name.split(".")
        if not self.info.relpath.endswith("__init__.py"):
            parts = parts[:-1]
        parts = parts[: len(parts) - (stmt.level - 1)] if stmt.level > 1 else parts
        base = ".".join(parts)
        if stmt.module:
            base = f"{base}.{stmt.module}" if base else stmt.module
        return base

    @staticmethod
    def _partial_target(node: ast.expr) -> str | None:
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in ("functools.partial", "partial") and node.args:
                return _dotted(node.args[0])
        return None

    # -- functions / classes -------------------------------------------
    def _register_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None, parent: str | None = None,
    ) -> FunctionInfo:
        local = f"{parent}.<locals>.{node.name}" if parent else (
            f"{class_name}.{node.name}" if class_name else node.name
        )
        fn = FunctionInfo(
            qualname=f"{self.info.name}.{local}",
            module=self.info.name,
            relpath=self.info.relpath,
            lineno=node.lineno,
            node=node,
            class_name=class_name,
            decorators=[d for d in (_dotted(dec) for dec in node.decorator_list) if d],
        )
        self.info.functions[local] = fn
        self._extract_body(fn, local)
        return fn

    def _register_lambda(
        self, node: ast.Lambda, name: str, class_name: str | None,
        parent: str | None = None,
    ) -> FunctionInfo:
        local = f"{parent}.<locals>.{name}" if parent else (
            f"{class_name}.{name}" if class_name else name
        )
        fn = FunctionInfo(
            qualname=f"{self.info.name}.{local}",
            module=self.info.name,
            relpath=self.info.relpath,
            lineno=node.lineno,
            node=node,
            class_name=class_name,
            is_lambda=True,
        )
        self.info.functions[local] = fn
        self._extract_body(fn, local)
        return fn

    def _register_class(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(name=node.name, module=self.info.name)
        cls.bases = [b for b in (_dotted(base) for base in node.bases) if b]
        self.info.classes[node.name] = cls
        self.info.global_names.add(node.name)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._register_function(stmt, class_name=node.name)
                cls.methods[stmt.name] = fn.qualname
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cls.fields[stmt.target.id] = ast.unparse(stmt.annotation)
                if stmt.value is not None and isinstance(stmt.value, ast.Lambda):
                    self._register_lambda(stmt.value, stmt.target.id, node.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Lambda):
                        self._register_lambda(stmt.value, target.id, node.name)

    # -- function-body fact extraction ---------------------------------
    def _extract_body(self, fn: FunctionInfo, local_qual: str) -> None:
        node = fn.node
        params = {a.arg for a in [
            *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs,
            *([node.args.vararg] if node.args.vararg else []),
            *([node.args.kwarg] if node.args.kwarg else []),
        ]}
        body = node.body if isinstance(node.body, list) else [node.body]
        walker = _BodyWalker(self, fn, local_qual, params)
        for stmt in body:
            walker.visit(stmt)


class _BodyWalker(ast.NodeVisitor):
    """Walks one function body without descending into nested functions.

    Nested ``def``s and lambdas are registered as their own
    :class:`FunctionInfo` (qualname ``outer.<locals>.name``) and linked to
    the enclosing function with a ``ref`` edge — if the outer function runs,
    the inner one *may* run, which is the right over-approximation for
    reachability-based proofs.
    """

    def __init__(self, extractor: _ModuleExtractor, fn: FunctionInfo,
                 local_qual: str, params: set[str]) -> None:
        self.ex = extractor
        self.fn = fn
        self.local_qual = local_qual
        self.locals: set[str] = set(params)
        self.local_aliases: dict[str, str] = {}   # name -> dotted target
        self.local_types: dict[str, str] = {}     # name -> class dotted name
        self._lambda_counter = 0

    @property
    def info(self) -> ModuleInfo:
        return self.ex.info

    # -- nested scopes --------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested_function(node)

    def _nested_function(self, node) -> None:
        nested = self.ex._register_function(node, self.fn.class_name,
                                            parent=self.local_qual)
        self.locals.add(node.name)
        self.local_aliases[node.name] = nested.qualname
        self.fn.calls.append(CallSite(
            written=node.name, resolved=nested.qualname,
            line=node.lineno, col=node.col_offset, kind="ref",
        ))

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._lambda_counter += 1
        name = f"<lambda:{node.lineno}:{self._lambda_counter}>"
        nested = self.ex._register_lambda(node, name, self.fn.class_name,
                                          parent=self.local_qual)
        self.fn.calls.append(CallSite(
            written=name, resolved=nested.qualname,
            line=node.lineno, col=node.col_offset, kind="ref",
        ))

    # -- assignments: locals, aliases, constructor types ----------------
    def _handle_store(self, target: ast.expr, value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            self.locals.add(target.id)
            if value is not None:
                dotted = _dotted(value) or _ModuleExtractor._partial_target(value)
                if dotted:
                    self.local_aliases[target.id] = dotted
                elif isinstance(value, ast.Call):
                    ctor = _dotted(value.func)
                    if ctor:
                        self.local_types[target.id] = ctor
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_store(elt, None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._record_global_mutation(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._handle_store(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self._handle_store(node.target, node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            if node.target.id not in self.locals:
                resolved = self._module_global(node.target.id)
                if resolved:
                    self.fn.global_writes.append((*resolved, node.lineno))
            self.locals.add(node.target.id)
        else:
            self._record_global_mutation(node.target)

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.fn.global_writes.append((self.info.name, name, node.lineno))

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._handle_store(node.target, None)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self._handle_store(item.optional_vars, item.context_expr)
        for stmt in node.body:
            self.visit(stmt)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.locals.add(node.name)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._handle_store(node.target, None)
        self.visit(node.iter)
        for cond in node.ifs:
            self.visit(cond)

    # -- reads ----------------------------------------------------------
    def _module_global(self, name: str) -> tuple[str, str] | None:
        """Resolve a bare name to a (module, global) pair if it is one."""
        if name in self.locals:
            return None
        info = self.info
        if name in info.global_names or name in info.mutable_globals:
            return (info.name, name)
        if name in info.imports:
            # Imported object: attribute of another module.
            target = info.imports[name]
            if "." in target:
                mod, _, attr = target.rpartition(".")
                return (mod, attr)
        return None

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            resolved = self._module_global(node.id)
            if resolved:
                self.fn.global_reads.append((*resolved, node.lineno))

    def _record_global_mutation(self, target: ast.expr) -> None:
        # ``X[...] = v`` / ``X.attr = v`` / ``del X[...]`` with X a global.
        root = target
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name):
            resolved = self._module_global(root.id)
            if resolved:
                self.fn.global_writes.append((*resolved, target.lineno))

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._record_global_mutation(target)
        self.generic_visit(node)

    # -- local imports ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.locals.add(local)
            self.local_aliases[local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self.ex._resolve_from(node)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.locals.add(local)
            self.local_aliases[local] = f"{base}.{alias.name}" if base else alias.name

    # -- comprehensions: bind targets before visiting the element --------
    def _comp(self, node) -> None:
        for gen in node.generators:
            self.visit_comprehension(gen)
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.comprehension):
                self.visit(child)

    visit_ListComp = _comp
    visit_SetComp = _comp
    visit_DictComp = _comp
    visit_GeneratorExp = _comp

    # -- calls -----------------------------------------------------------
    def _normalize(self, written: str) -> str:
        """Fold walker-local knowledge (aliases, constructor types) in."""
        head, _, rest = written.partition(".")
        if head in self.local_aliases:
            head = self.local_aliases[head]
        elif head in self.local_types and rest:
            head = self.local_types[head]
        elif head in self.locals:
            return written
        return f"{head}.{rest}" if rest else head

    def visit_Call(self, node: ast.Call) -> None:
        written = _dotted(node.func)
        if written is None and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Call):
            # Chained constructor: ``ClassName(...).method()``.
            inner = _dotted(node.func.value.func)
            if inner is not None:
                written = f"{inner}.{node.func.attr}"
        if written is not None:
            written = self._normalize(written)
        line, col = node.lineno, node.col_offset

        if written == "getattr" or written == "builtins.getattr":
            self._handle_getattr(node)
        elif written is not None:
            self.fn.calls.append(CallSite(
                written=written, resolved=None, line=line, col=col, kind="call",
            ))
            # Mutating method on a module-level container: X.append(...)
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATING_METHODS:
                root = node.func.value
                base = _dotted(root)
                if base and "." not in base:
                    resolved = self._module_global(base)
                    if resolved:
                        self.fn.global_writes.append((*resolved, line))
            self._check_special_calls(node, written)
        else:
            self.fn.dynamic_calls.append(DynamicCall(
                line=line, description="call through a computed expression",
            ))

        # Function references escaping as arguments.
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            dotted = _dotted(arg)
            if dotted is not None:
                self.fn.calls.append(CallSite(
                    written=dotted, resolved=None, line=arg.lineno,
                    col=arg.col_offset, kind="ref",
                ))
            self.visit(arg)
        self.visit(node.func)

    def _handle_getattr(self, node: ast.Call) -> None:
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            base = _dotted(node.args[0])
            if base is not None:
                # Literal-string getattr resolves like a normal attribute.
                self.fn.calls.append(CallSite(
                    written=self._normalize(f"{base}.{node.args[1].value}"),
                    resolved=None,
                    line=node.lineno, col=node.col_offset, kind="ref",
                ))
                return
        self.fn.dynamic_calls.append(DynamicCall(
            line=node.lineno,
            description="getattr with a dynamic attribute name",
        ))

    def _check_special_calls(self, node: ast.Call, written: str) -> None:
        """RNG-construction and wall-clock facts (import-alias aware)."""
        target = self._expand(written)
        if target in _WALL_CLOCK_TARGETS or (
            # `from time import time` style, or `datetime.now(...)` on an
            # imported class.
            target.split(".")[-2:] in ([w.split(".")[-2:] for w in _WALL_CLOCK_TARGETS])
        ):
            self.fn.wall_clock.append(node.lineno)
        tail = target.rsplit(".", 1)[-1]
        if tail in ("make_rng", "default_rng"):
            seedless = not node.args and not node.keywords
            none_seed = (
                len(node.args) == 1 and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if seedless or none_seed:
                self.fn.unseeded_rng.append(node.lineno)
        parts = target.split(".")
        if len(parts) >= 3 and parts[0] in ("numpy", "np") and parts[1] == "random" \
                and parts[2] != "default_rng" and parts[2] != "Generator":
            self.fn.unseeded_rng.append(node.lineno)

    def _expand(self, written: str) -> str:
        head, _, rest = written.partition(".")
        target = self.local_aliases.get(head) or self.info.imports.get(head) \
            or self.info.aliases.get(head) or head
        return f"{target}.{rest}" if rest else target


@dataclass
class ProjectIndex:
    """All parsed modules of one source tree, keyed by dotted name."""

    root: Path
    modules: dict[str, ModuleInfo] = field(default_factory=dict)

    # -- symbol resolution ---------------------------------------------
    def resolve(self, dotted: str, module: str | None = None) -> str:
        """Canonicalize a dotted name: chase imports, aliases, re-exports.

        Args:
            dotted: Name as written (``ParallelRunner``, ``pool.Runner``).
            module: Module whose namespace the name appears in.
        """
        seen: set[str] = set()
        current = dotted
        if module is not None:
            current = self._expand_in(dotted, module)
        while current not in seen:
            seen.add(current)
            nxt = self._chase(current)
            if nxt is None:
                return current
            current = nxt
        return current

    def _expand_in(self, dotted: str, module: str) -> str:
        info = self.modules.get(module)
        if info is None:
            return dotted
        head, _, rest = dotted.partition(".")
        target = info.imports.get(head) or info.aliases.get(head)
        if target is None:
            if head in info.functions or head in info.classes:
                target = f"{module}.{head}"
            else:
                return dotted
        elif "." not in target and (target in info.functions
                                    or target in info.classes):
            # Alias to another module-local name: keep the module context.
            target = f"{module}.{target}"
        return f"{target}.{rest}" if rest else target

    def _chase(self, dotted: str) -> str | None:
        """One re-export / alias step, or None at a fixpoint."""
        # Longest indexed-module prefix.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            info = self.modules.get(mod)
            if info is None:
                continue
            head = parts[cut]
            rest = ".".join(parts[cut + 1:])
            target = info.imports.get(head) or info.aliases.get(head)
            if target is not None:
                if "." not in target and (target in info.functions
                                          or target in info.classes):
                    target = f"{mod}.{target}"
                return f"{target}.{rest}" if rest else target
            return None
        return None

    def lookup_function(self, qualname: str) -> FunctionInfo | None:
        """Find a FunctionInfo by canonical qualname."""
        parts = qualname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            info = self.modules.get(mod)
            if info is None:
                continue
            local = ".".join(parts[cut:])
            if local in info.functions:
                return info.functions[local]
            # Method through inheritance: Class.method with method on a base.
            if len(parts) - cut == 2:
                cls_name, meth = parts[cut], parts[cut + 1]
                resolved = self._method_via_bases(info, cls_name, meth)
                if resolved is not None:
                    return resolved
            return None
        return None

    def _method_via_bases(self, info: ModuleInfo, cls_name: str,
                          meth: str) -> FunctionInfo | None:
        seen: set[str] = set()
        queue = deque([(info, cls_name)])
        while queue:
            mod_info, name = queue.popleft()
            key = f"{mod_info.name}.{name}"
            if key in seen:
                continue
            seen.add(key)
            cls = mod_info.classes.get(name)
            if cls is None:
                continue
            if meth in cls.methods:
                return self.lookup_function(cls.methods[meth])
            for base in cls.bases:
                canonical = self.resolve(base, mod_info.name)
                base_parts = canonical.rsplit(".", 1)
                if len(base_parts) == 2 and base_parts[0] in self.modules:
                    queue.append((self.modules[base_parts[0]], base_parts[1]))
        return None

    def all_functions(self) -> dict[str, FunctionInfo]:
        return {
            fn.qualname: fn
            for info in self.modules.values()
            for fn in info.functions.values()
        }

    def class_of(self, dotted: str) -> ClassInfo | None:
        mod, _, name = dotted.rpartition(".")
        info = self.modules.get(mod)
        if info is not None:
            return info.classes.get(name)
        return None

    #: Names (module, global) mutated anywhere in the project.
    def mutated_globals(self) -> set[tuple[str, str]]:
        mutated: set[tuple[str, str]] = set()
        for info in self.modules.values():
            for fn in info.functions.values():
                for mod, name, _line in fn.global_writes:
                    mutated.add((mod, name))
        return mutated


def _load_cached(cache_dir: Path, digest: str) -> ModuleInfo | None:
    entry = cache_dir / f"{digest}.pkl"
    if not entry.exists():
        return None
    try:
        with entry.open("rb") as fh:
            version, info = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, TypeError, ValueError):
        return None
    return info if version == _CACHE_VERSION else None


def _store_cached(cache_dir: Path, digest: str, info: ModuleInfo) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    entry = cache_dir / f"{digest}.pkl"
    try:
        with entry.open("wb") as fh:
            pickle.dump((_CACHE_VERSION, info), fh)
    except OSError:
        pass  # cache is best-effort; analysis proceeds uncached


def index_project(root: str | Path, cache_dir: str | Path | None = None) -> ProjectIndex:
    """Parse every ``*.py`` under ``root`` into a :class:`ProjectIndex`.

    Args:
        root: Source root (the directory *containing* the top packages,
            e.g. ``<repo>/src``) or a single package directory.
        cache_dir: Optional directory for the per-file AST/facts cache,
            keyed on each file's content hash — unchanged files skip
            parsing and fact extraction entirely.

    Raises:
        AnalysisError: On unparsable source files.
    """
    root = Path(root).resolve()
    cache = Path(cache_dir) if cache_dir is not None else None
    index = ProjectIndex(root=root)
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        digest = hashlib.sha256(
            f"{_CACHE_VERSION}:{path.relative_to(root)}:".encode() + source.encode()
        ).hexdigest()
        info = _load_cached(cache, digest) if cache is not None else None
        if info is None:
            name = _module_name(path, root)
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                raise AnalysisError(f"{path}: cannot parse: {exc}") from exc
            info = ModuleInfo(
                name=name,
                relpath=str(path.relative_to(root.parent)),
                source=source,
                tree=tree,
            )
            _ModuleExtractor(info).run()
            if cache is not None:
                _store_cached(cache, digest, info)
        # Suppression usage is per-run state; never reuse it from the cache.
        info.suppressions = Suppressions.collect(info.source, info.relpath)
        index.modules[info.name] = info
    return index


class CallGraph:
    """Resolved call edges over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: caller qualname -> list of resolved CallSites (calls + refs).
        self.edges: dict[str, list[CallSite]] = {}
        self._build()

    # -- construction --------------------------------------------------
    def _build(self) -> None:
        for info in self.index.modules.values():
            for fn in info.functions.values():
                resolved_sites: list[CallSite] = []
                for site in fn.calls:
                    target = site.resolved or self._resolve_site(info, fn, site)
                    if target is not None:
                        resolved_sites.append(CallSite(
                            written=site.written, resolved=target,
                            line=site.line, col=site.col, kind=site.kind,
                        ))
                self.edges[fn.qualname] = resolved_sites
                # A decorator wraps (and typically calls) the function; the
                # decorated function also reaches the decorator body.
                for dec in fn.decorators:
                    target = self.index.resolve(dec, info.name)
                    if self.index.lookup_function(target) is not None:
                        self.edges[fn.qualname].append(CallSite(
                            written=dec, resolved=target, line=fn.lineno,
                            col=0, kind="ref",
                        ))

    def _resolve_site(self, info: ModuleInfo, fn: FunctionInfo,
                      site: CallSite) -> str | None:
        written = site.written
        if written is None:
            return None
        head, _, rest = written.partition(".")

        # self.method() — own class, then bases.
        if head == "self" and fn.class_name is not None and rest:
            meth = rest.split(".")[0]
            target = self.index._method_via_bases(info, fn.class_name, meth)
            if target is not None:
                return target.qualname
            return None

        # Locals tracked by the body walker.
        walk_target = None
        # (local aliases were folded into CallSite.resolved during extraction
        # only for nested defs; plain local aliases resolve here)
        canonical = self.index.resolve(written, info.name)
        target_fn = self.index.lookup_function(canonical)
        if target_fn is not None:
            return target_fn.qualname

        # Constructor call: edge to Class.__init__ when defined.
        cls = self.index.class_of(canonical)
        if cls is not None:
            init = cls.methods.get("__init__")
            if init is not None:
                return init
            return None

        # obj.method() where obj's class is inferable from a constructor
        # assignment in the same function body.
        if rest:
            # walk local_types is lost post-extraction; approximate via
            # single-method match: resolve `Class.method` patterns only.
            parts = canonical.split(".")
            if len(parts) >= 2:
                maybe_cls = ".".join(parts[:-1])
                cls = self.index.class_of(maybe_cls)
                if cls is not None and parts[-1] in cls.methods:
                    return cls.methods[parts[-1]]
        return walk_target

    # -- queries --------------------------------------------------------
    def callees(self, qualname: str) -> list[CallSite]:
        return self.edges.get(qualname, [])

    def reachable(self, roots: "list[str] | set[str]") -> set[str]:
        """Every function transitively reachable from ``roots`` (inclusive)."""
        seen: set[str] = set()
        queue = deque(r for r in roots if r in self.edges)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for site in self.edges.get(current, ()):
                if site.resolved and site.resolved not in seen \
                        and site.resolved in self.edges:
                    seen.add(site.resolved)
                    queue.append(site.resolved)
        return seen

    def call_chain(self, src: str, dst: str) -> list[str] | None:
        """Shortest call path ``src -> ... -> dst``; None when unreachable."""
        if src == dst:
            return [src]
        prev: dict[str, str] = {}
        queue = deque([src])
        seen = {src}
        while queue:
            current = queue.popleft()
            for site in self.edges.get(current, ()):
                nxt = site.resolved
                if nxt is None or nxt in seen:
                    continue
                prev[nxt] = current
                if nxt == dst:
                    chain = [dst]
                    while chain[-1] != src:
                        chain.append(prev[chain[-1]])
                    return list(reversed(chain))
                seen.add(nxt)
                queue.append(nxt)
        return None
