"""Numpy hot-path performance lints (RP4xx).

The serving fast path and the tensor engine dominate inference latency;
the paper's evaluation sweeps hundreds of topologies through them.  Four
allocation/vectorization mistakes account for most numpy slowdowns:

* RP401 — growing concatenation inside a loop (``np.concatenate`` /
  ``np.append`` / ``np.vstack`` ...): O(n²) copying; collect then
  concatenate once, or preallocate.
* RP402 — fixed-size allocation (``np.zeros`` / ``ones`` / ``empty`` /
  ``full``) inside a loop: hoist the buffer and reuse it.
* RP403 — Python-level ``for`` over an ndarray: vectorize.
* RP404 — explicit float64 promotion (``.astype(np.float64)``,
  ``dtype=float``): doubles memory traffic for no modeling benefit.

Severity is context-dependent: **errors** in functions reachable from the
serving/NN entry points (the hot set, computed from the call graph),
**warnings** elsewhere — a setup script may concatenate in a loop without
gating CI.
"""

from __future__ import annotations

import ast

from ..lint import Violation
from .base import emit
from .callgraph import CallGraph, FunctionInfo, ModuleInfo, ProjectIndex, _dotted

__all__ = ["check_perf", "hot_functions"]

_CONCAT_TAILS = {"concatenate", "append", "vstack", "hstack", "column_stack",
                 "stack", "block"}
_ALLOC_TAILS = {"zeros", "ones", "empty", "full"}
_NUMPY_HEADS = {"np", "numpy"}

#: Module prefixes whose functions seed the hot set.
_HOT_PREFIXES = ("repro.serving", "repro.nn")
#: Method names that are hot entry points wherever they are defined.
_HOT_METHOD_NAMES = {"forward", "backward"}
#: Specific qualnames that seed the hot set: the training step entry points.
#: Everything a train step reaches (loss, input building, the forward plan)
#: runs once per optimization step, which the throughput benchmark gates.
_HOT_QUALNAMES = {
    "repro.training.trainer.Trainer.train_step",
    "repro.training.trainer.Trainer.train_step_batch",
    # The prefetch worker packs one batch per optimization step in a
    # background process — the same per-step cadence as the train steps,
    # so its packing path is held to the same allocation discipline.
    "repro.dataset.stream._prefetch_pack_worker",
}
#: Modules where float64 is the engine's *chosen* precision, not an
#: accident — the same boundary RP005 draws for literal dtypes.
_DTYPE_EXEMPT_PREFIXES = ("repro.nn",)


def hot_functions(index: ProjectIndex, graph: CallGraph) -> set[str]:
    """Every function reachable from serving/NN code, forward/backward, or
    the training step entry points."""
    roots = [
        fn.qualname
        for info in index.modules.values()
        for fn in info.functions.values()
        if info.name.startswith(_HOT_PREFIXES)
        or fn.qualname in _HOT_QUALNAMES
        or (fn.class_name is not None
            and fn.qualname.rsplit(".", 1)[-1] in _HOT_METHOD_NAMES)
    ]
    return graph.reachable(roots)


def _numpy_tail(written: str | None, tails: set[str]) -> bool:
    if written is None:
        return False
    head, _, rest = written.partition(".")
    return head in _NUMPY_HEADS and rest in tails


def _is_float64(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return node.value in ("float64", "float")
    if isinstance(node, ast.Name):
        return node.id == "float"
    dotted = _dotted(node)
    return dotted in ("np.float64", "numpy.float64", "np.double", "numpy.double")


class _PerfWalker(ast.NodeVisitor):
    """Walks one function body tracking loop depth and ndarray locals."""

    def __init__(self, pass_: "_PerfPass", fn: FunctionInfo,
                 info: ModuleInfo, hot: bool) -> None:
        self.p = pass_
        self.fn = fn
        self.info = info
        self.hot = hot
        self.loop_depth = 0
        self.ndarrays: set[str] = set()
        node = fn.node
        if not isinstance(node, ast.Lambda):
            for a in [*node.args.posonlyargs, *node.args.args,
                      *node.args.kwonlyargs]:
                if a.annotation is not None and self._is_array_annotation(a.annotation):
                    self.ndarrays.add(a.arg)

    @classmethod
    def _is_array_annotation(cls, annotation: ast.expr) -> bool:
        # Only the *outer* type decides: ``Sequence[np.ndarray]`` is a
        # Python container whose iteration is legitimate, not an ndarray
        # (walking the whole annotation used to flag ``zip(params, grads)``
        # loops over lists of per-parameter arrays).  Unions and Optional
        # are array-like if any member is; subscripted containers are not.
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return (cls._is_array_annotation(annotation.left)
                    or cls._is_array_annotation(annotation.right))
        if isinstance(annotation, ast.Subscript):
            head = _dotted(annotation.value) or ""
            tail = head.rsplit(".", 1)[-1]
            if tail in ("Optional", "Union", "Annotated"):
                inner = annotation.slice
                members = inner.elts if isinstance(inner, ast.Tuple) else [inner]
                if tail == "Annotated":
                    members = members[:1]
                return any(cls._is_array_annotation(m) for m in members)
            return cls._is_array_annotation(annotation.value)
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return False
            return cls._is_array_annotation(parsed)
        name = None
        if isinstance(annotation, ast.Name):
            name = annotation.id
        elif isinstance(annotation, ast.Attribute):
            name = annotation.attr
        return name == "ndarray" or (name or "").endswith("Array")

    def _severity(self) -> str:
        return "error" if self.hot else "warning"

    def _report(self, node: ast.AST, code: str, extra: str) -> None:
        if self.hot:
            extra = f"{extra}; hot path via {self.fn.qualname}"
        emit(self.p.findings, self.info, node.lineno, node.col_offset,
             code, extra, severity=self._severity())

    # -- scope ----------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions are walked as their own FunctionInfo

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- loops -----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.visit(node.iter)
        self.loop_depth += 1
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)
        self.loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self.loop_depth += 1
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)
        self.loop_depth -= 1

    def _check_iter(self, loop: ast.For, iter_expr: ast.expr) -> None:
        candidates: list[ast.expr] = [iter_expr]
        if isinstance(iter_expr, ast.Call):
            written = _dotted(iter_expr.func)
            if written in ("enumerate", "zip", "reversed"):
                candidates = list(iter_expr.args)
            else:
                candidates = []
        for expr in candidates:
            if isinstance(expr, ast.Name) and expr.id in self.ndarrays:
                self._report(loop, "RP403", f"iterates over {expr.id!r}")

    # -- allocation tracking ---------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        is_array = isinstance(node.value, ast.Call) and (
            _numpy_tail(_dotted(node.value.func),
                        _ALLOC_TAILS | _CONCAT_TAILS
                        | {"asarray", "array", "arange", "linspace"})
        )
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_array:
                    self.ndarrays.add(target.id)
                else:
                    self.ndarrays.discard(target.id)

    def visit_Call(self, node: ast.Call) -> None:
        written = _dotted(node.func)
        if self.loop_depth > 0:
            if _numpy_tail(written, _CONCAT_TAILS):
                self._report(node, "RP401", written or "")
            elif _numpy_tail(written, _ALLOC_TAILS):
                self._report(node, "RP402", written or "")
        if not self.info.name.startswith(_DTYPE_EXEMPT_PREFIXES):
            if isinstance(node.func, ast.Attribute) and node.func.attr == "astype" \
                    and node.args and _is_float64(node.args[0]):
                self._report(node, "RP404", "astype to float64")
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_float64(kw.value) \
                        and _numpy_tail(written, _ALLOC_TAILS
                                        | {"asarray", "array", "arange",
                                           "linspace", "full_like", "zeros_like",
                                           "ones_like", "empty_like"}):
                    self._report(node, "RP404", f"dtype=float64 in {written}")
        self.generic_visit(node)


class _PerfPass:
    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        self.findings: list[Violation] = []

    def run(self) -> list[Violation]:
        hot = hot_functions(self.index, self.graph)
        for info in self.index.modules.values():
            for fn in info.functions.values():
                walker = _PerfWalker(self, fn, info, fn.qualname in hot)
                body = fn.node.body
                if isinstance(body, list):
                    for stmt in body:
                        walker.visit(stmt)
        return self.findings


def check_perf(index: ProjectIndex, graph: CallGraph) -> list[Violation]:
    """Run the RP4xx numpy perf pass over the project."""
    return _PerfPass(index, graph).run()
