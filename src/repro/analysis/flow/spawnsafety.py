"""Spawn-safety & determinism proofs (RP2xx).

The parallel runner (:mod:`repro.runner.pool`) executes worker functions
in separate processes; PR 2 established the contract that generation must
be bitwise identical regardless of worker count.  That only holds if every
task payload — and everything transitively reachable from the worker —

* reads no module-level state that the project mutates (RP201),
* mutates no module-level state (RP202; worker-side writes are silently
  dropped on process exit and differ between inline and parallel modes),
* derives every random stream from the task seed (RP203),
* does not let wall-clock time influence results (RP204, warning — timing
  *metrics* are fine, decisions are not),
* is picklable: module-level worker functions and plain-data payloads
  (RP205).

This pass proves the property over the call graph: it locates every
``ParallelRunner(worker, ...)`` and ``PersistentPool(worker=...,
initializer=...)`` construction, resolves each shipped callable to its
function, computes the transitive closure of callees, and reports each
violating effect with the **full call chain** from the spawn root to the
offending function, so a failure like::

    RP203 ... [spawn root repro.dataset.generate._generation_worker ->
               repro.dataset.generate.generate_sample -> bad_helper]

is actionable without re-deriving the reachability by hand.
"""

from __future__ import annotations

import ast

from ..lint import Violation
from .base import emit
from .callgraph import CallGraph, FunctionInfo, ModuleInfo, ProjectIndex, _dotted
from .purity import EffectSummary, effect_summaries

__all__ = ["SpawnRoot", "check_spawn_safety", "find_spawn_roots"]

_RUNNER_CLASS = "repro.runner.pool.ParallelRunner"
_POOL_CLASS = "repro.runner.persistent.PersistentPool"
_TASK_CLASS = "repro.runner.types.Task"


class SpawnRoot:
    """One worker function handed to the parallel runner."""

    def __init__(self, worker_qualname: str, site_module: ModuleInfo,
                 line: int, col: int) -> None:
        self.worker_qualname = worker_qualname
        self.site_module = site_module
        self.line = line
        self.col = col


def _resolve_constructor(index: ProjectIndex, module: ModuleInfo,
                         written: str) -> str:
    """Canonical class name for a constructor call, chasing ``__init__``."""
    canonical = index.resolve(written, module.name)
    if canonical.endswith(".__init__"):
        canonical = canonical.rsplit(".", 1)[0]
    return canonical


def find_spawn_roots(
    index: ProjectIndex,
    findings: list[Violation] | None = None,
) -> list[SpawnRoot]:
    """Locate every ``ParallelRunner(worker, ...)`` site and resolve the worker.

    Lambda or nested-function workers are unpicklable under the spawn start
    method — those are reported as RP205 (when ``findings`` is given)
    rather than returned as roots.
    """
    roots: list[SpawnRoot] = []
    for info in index.modules.values():
        for fn in info.functions.values():
            if isinstance(fn.node, ast.Lambda):
                continue
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                written = _dotted(call.func)
                if written is None:
                    continue
                target = _resolve_constructor(index, info, written)
                if target == _RUNNER_CLASS:
                    _collect_worker(index, info, fn, call, roots, findings)
                elif target == _POOL_CLASS:
                    # The persistent pool ships two callables across the
                    # process boundary: the per-task worker and the one-shot
                    # initializer.  Both are spawn roots.
                    _collect_worker(index, info, fn, call, roots, findings)
                    _collect_worker(index, info, fn, call, roots, findings,
                                    keyword="initializer", positional=None)
                elif target == _TASK_CLASS and findings is not None:
                    _check_task_payload(info, call, findings)
    return roots


def _collect_worker(
    index: ProjectIndex,
    info: ModuleInfo,
    fn: FunctionInfo,
    call: ast.Call,
    roots: list[SpawnRoot],
    findings: list[Violation] | None,
    keyword: str = "worker",
    positional: int | None = 0,
) -> None:
    worker_expr: ast.expr | None = None
    if positional is not None and len(call.args) > positional:
        worker_expr = call.args[positional]
    for kw in call.keywords:
        if kw.arg == keyword:
            worker_expr = kw.value
    if worker_expr is None:
        return
    if isinstance(worker_expr, ast.Lambda):
        if findings is not None:
            emit(findings, info, worker_expr.lineno, worker_expr.col_offset,
                 "RP205", "lambda worker cannot cross a process boundary")
        return
    written = _dotted(worker_expr)
    if written is None:
        if findings is not None:
            emit(findings, info, worker_expr.lineno, worker_expr.col_offset,
                 "RP205", "worker is not a plain module-level function reference")
        return
    canonical = index.resolve(written, info.name)
    target = index.lookup_function(canonical)
    if target is None:
        # A nested function handed up as a value resolves through the
        # enclosing scope: look for `<caller>.<locals>.<name>`.
        nested = index.lookup_function(
            f"{fn.qualname}.<locals>.{written}")
        if nested is not None and findings is not None:
            emit(findings, info, worker_expr.lineno, worker_expr.col_offset,
                 "RP205",
                 f"nested function {written!r} is unpicklable; "
                 "move it to module level")
        return
    if "<locals>" in target.qualname or target.is_lambda:
        if findings is not None:
            emit(findings, info, worker_expr.lineno, worker_expr.col_offset,
                 "RP205",
                 f"{written!r} is not a module-level function and cannot "
                 "be pickled for the worker process")
        return
    roots.append(SpawnRoot(target.qualname, info, call.lineno, call.col_offset))


def _check_task_payload(info: ModuleInfo, call: ast.Call,
                        findings: list[Violation]) -> None:
    payload_expr: ast.expr | None = None
    for kw in call.keywords:
        if kw.arg == "payload":
            payload_expr = kw.value
    if payload_expr is None and call.args:
        payload_expr = call.args[1] if len(call.args) > 1 else None
    if payload_expr is None:
        return
    for node in ast.walk(payload_expr):
        if isinstance(node, ast.Lambda):
            emit(findings, info, node.lineno, node.col_offset, "RP205",
                 "task payload captures a lambda; payloads must be plain data")


def _chain_text(graph: CallGraph, root: str, target: str) -> str:
    chain = graph.call_chain(root, target)
    if chain is None:
        chain = [root, "...", target]
    return " -> ".join(chain)


def check_spawn_safety(
    index: ProjectIndex,
    graph: CallGraph,
    summaries: dict[str, EffectSummary] | None = None,
) -> list[Violation]:
    """Run the full RP2xx pass over the project."""
    findings: list[Violation] = []
    summaries = summaries if summaries is not None else effect_summaries(index)
    roots = find_spawn_roots(index, findings)

    # Deduplicate: the same worker may be spawned from several sites.
    reported: set[tuple[str, str, int]] = set()
    for root in roots:
        for qualname in sorted(graph.reachable([root.worker_qualname])):
            summary = summaries.get(qualname)
            fn = index.lookup_function(qualname)
            if summary is None or fn is None or summary.is_spawn_clean():
                continue
            info = index.modules[fn.module]
            chain = _chain_text(graph, root.worker_qualname, qualname)
            for mod, name, line in summary.reads_mutated:
                key = (qualname, "RP201", line)
                if key not in reported:
                    reported.add(key)
                    emit(findings, info, line, 0, "RP201",
                         f"reads {mod}.{name}; spawn root {chain}")
            for mod, name, line in summary.writes:
                key = (qualname, "RP202", line)
                if key not in reported:
                    reported.add(key)
                    emit(findings, info, line, 0, "RP202",
                         f"mutates {mod}.{name}; spawn root {chain}")
            for line in summary.unseeded_rng:
                key = (qualname, "RP203", line)
                if key not in reported:
                    reported.add(key)
                    emit(findings, info, line, 0, "RP203",
                         f"spawn root {chain}")
            for line in summary.wall_clock:
                key = (qualname, "RP204", line)
                if key not in reported:
                    reported.add(key)
                    emit(findings, info, line, 0, "RP204",
                         f"spawn root {chain}")
    return findings
