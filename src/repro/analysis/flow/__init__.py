"""Interprocedural flow analyses: call graph + spawn/units/perf passes."""

from .callgraph import (
    CallGraph,
    CallSite,
    ClassInfo,
    DynamicCall,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    index_project,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "DynamicCall",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "index_project",
]
