"""Dimensional analysis of unit-annotated signatures (RP3xx).

The repo mixes seconds, bits, packets and their rates: link capacities
are bits/s, traffic matrices bits/s, arrival processes packets/s, queue
delays seconds, packet sizes bits.  A classic reproduction bug is feeding
a bits/s rate where packets/s is expected (the paper's simulator draws
per-packet events), which no test catches when both are ``float``.

:mod:`repro.units` defines transparent type aliases (``Seconds``,
``BitsPerSecond``, ...).  This pass reads them off function signatures and
dataclass fields, propagates units through assignments, arithmetic and
calls inside each function body, and reports:

* RP301 — addition/subtraction of different units (``delay + capacity``);
* RP302 — comparison of different units;
* RP303 — argument unit differs from the parameter annotation;
* RP304 — returned unit differs from the return annotation.

The unit algebra is exact over the dimension set {s, bit, pkt}:
``BitsPerSecond / BitsPerPacket == PacketsPerSecond`` checks out
structurally.  The analysis is deliberately forgiving at the boundaries of
what it can see: numeric literals are polymorphic, unknown calls yield
unknown units, and a division with a *literal* numerator (``1.0 / (mu -
lam)``) yields unknown — closed-form queueing formulas juggle implicit
per-packet dimensions that would otherwise false-positive.
"""

from __future__ import annotations

import ast
from collections import defaultdict

from ..lint import Violation
from .base import emit
from .callgraph import FunctionInfo, ModuleInfo, ProjectIndex, _dotted

__all__ = ["UNIT_ALIASES", "check_units", "unit_of_annotation"]

#: Canonical unit: sorted (dimension, exponent) pairs; () is dimensionless.
Unit = tuple


def _u(**dims: int) -> Unit:
    return tuple(sorted((d, e) for d, e in dims.items() if e))


#: repro.units alias name -> unit. Scalar and Array aliases share units.
UNIT_ALIASES: dict[str, Unit] = {
    "Seconds": _u(s=1),
    "SecondsArray": _u(s=1),
    "Bits": _u(bit=1),
    "BitsArray": _u(bit=1),
    "Packets": _u(pkt=1),
    "BitsPerSecond": _u(bit=1, s=-1),
    "BitsPerSecondArray": _u(bit=1, s=-1),
    "PacketsPerSecond": _u(pkt=1, s=-1),
    "PacketsPerSecondArray": _u(pkt=1, s=-1),
    "BitsPerPacket": _u(bit=1, pkt=-1),
    "Dimensionless": _u(),
    "DimensionlessArray": _u(),
}

#: Sentinel for numeric literals: compatible with every unit.
_ANY = object()
# Unknown is plain None.

_PASSTHROUGH_TAILS = {
    # numpy reductions / shape ops that preserve the operand's unit.
    "sum", "mean", "median", "abs", "amin", "amax", "min", "max", "sort",
    "cumsum", "ravel", "flatten", "copy", "asarray", "array", "squeeze",
    "reshape", "transpose", "diff", "percentile", "quantile", "full_like",
}

_POLYMORPHIC_TAILS = {
    # Calls whose result carries no unit information.
    "zeros", "ones", "empty", "zeros_like", "ones_like", "empty_like",
    "arange", "linspace", "len", "exp", "log", "log2", "sqrt", "isnan",
    "isinf", "isclose", "allclose",
}


def unit_name_of(annotation: ast.expr) -> str | None:
    """Extract the (single) unit alias name out of an annotation AST."""
    for node in ast.walk(annotation):
        name: str | None = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in UNIT_ALIASES:
            return name
    return None


def unit_of_annotation(annotation: ast.expr | None, info: ModuleInfo,
                       index: ProjectIndex) -> Unit | None:
    """Resolve an annotation to a unit, or None when it has none.

    Handles ``Seconds``, ``Seconds | None``, ``Optional[Seconds]`` and
    ``units.Seconds`` forms.  The alias must resolve to :mod:`repro.units`
    (or be an otherwise-unbound name matching an alias, which keeps
    synthetic test projects lightweight).
    """
    if annotation is None:
        return None
    name = unit_name_of(annotation)
    if name is None:
        return None
    # One expansion step only: the full fixpoint chase would follow the
    # alias definition itself (``Seconds = float``) and dissolve the unit.
    expanded = index._expand_in(name, info.name)
    if expanded == name:
        return UNIT_ALIASES[name]  # unbound bare name (string annotations)
    mod, _, tail = expanded.rpartition(".")
    if tail == name and (mod == "units" or mod.endswith(".units")):
        return UNIT_ALIASES[name]
    return None


def _mul(a, b):
    if a is _ANY:
        return b
    if b is _ANY:
        return a
    if a is None or b is None:
        return None
    exps: dict[str, int] = defaultdict(int)
    for d, e in a:
        exps[d] += e
    for d, e in b:
        exps[d] += e
    return _u(**exps)


def _inv(a):
    if a is _ANY or a is None:
        return a
    return tuple(sorted((d, -e) for d, e in a))


def _merge(a, b):
    """Join for branches / same-unit combinators: agree or forget."""
    if a is _ANY:
        return b
    if b is _ANY:
        return a
    if a is None or b is None or a != b:
        return None if a != b else a
    return a


def _fmt(u) -> str:
    if u is _ANY:
        return "literal"
    if u is None:
        return "unknown"
    if not u:
        return "dimensionless"
    num = [f"{d}^{e}" if e != 1 else d for d, e in u if e > 0]
    den = [f"{d}^{-e}" if e != -1 else d for d, e in u if e < 0]
    text = "*".join(num) or "1"
    if den:
        text += "/" + "/".join(den)
    return text


class _Signature:
    """Param/return units of one function."""

    def __init__(self, fn: FunctionInfo, info: ModuleInfo,
                 index: ProjectIndex) -> None:
        node = fn.node
        self.params: list[tuple[str, Unit | None]] = []
        self.param_units: dict[str, Unit | None] = {}
        self.returns: Unit | None = None
        if isinstance(node, ast.Lambda):
            for a in [*node.args.posonlyargs, *node.args.args]:
                self.params.append((a.arg, None))
            return
        args = node.args
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            unit = unit_of_annotation(a.annotation, info, index)
            self.params.append((a.arg, unit))
            self.param_units[a.arg] = unit
        self.returns = unit_of_annotation(node.returns, info, index)
        if fn.class_name is not None and self.params \
                and self.params[0][0] in ("self", "cls"):
            self.params = self.params[1:]


class _UnitChecker(ast.NodeVisitor):
    """Single-pass abstract interpretation of one function body."""

    def __init__(self, pass_: "_UnitsPass", fn: FunctionInfo,
                 info: ModuleInfo) -> None:
        self.p = pass_
        self.fn = fn
        self.info = info
        self.env: dict[str, object] = {}
        sig = pass_.signature(fn)
        for name, unit in sig.param_units.items() if sig.param_units else ():
            if unit is not None:
                self.env[name] = unit
        self.return_unit = sig.returns

    # -- expression evaluation ------------------------------------------
    def eval(self, node: ast.expr):
        if isinstance(node, ast.Constant):
            return _ANY if isinstance(node.value, (int, float)) else None
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return self.p.global_unit(node.id, self.info)
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None:
                g = self.p.global_unit(dotted, self.info)
                if g is not None:
                    return g
            return self.p.field_unit(node.attr)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            self._compare(node)
            return _u()  # booleans are dimensionless
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            return self.eval(node.value)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return _merge(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.BoolOp):
            result = _ANY
            for value in node.values:
                result = _merge(result, self.eval(value))
            return result
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for elt in node.elts:
                self.eval(elt)
            return None
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        # Comprehensions, lambdas, f-strings, dicts: no unit information,
        # but nested expressions may still contain checkable operations.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return None

    def _binop(self, node: ast.BinOp):
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(node.op, ast.Mult):
            return _mul(left, right)
        if isinstance(node.op, ast.Div):
            if isinstance(node.left, ast.Constant):
                # Literal numerator: closed-form formulas (1/(mu-lam)) are
                # unit-polymorphic in this algebra; do not guess.
                return None
            return _mul(left, _inv(right))
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if isinstance(left, tuple) and isinstance(right, tuple) \
                    and left != right:
                emit(self.p.findings, self.info, node.lineno, node.col_offset,
                     "RP301", f"{_fmt(left)} vs {_fmt(right)}")
            return _merge(left, right)
        if isinstance(node.op, (ast.FloorDiv, ast.Mod)):
            return _mul(left, _inv(right)) if isinstance(node.op, ast.FloorDiv) else left
        if isinstance(node.op, ast.Pow):
            if isinstance(node.right, ast.Constant) \
                    and isinstance(node.right.value, int) \
                    and isinstance(left, tuple):
                exps = {d: e * node.right.value for d, e in left}
                return _u(**exps)
            return None
        return None

    def _compare(self, node: ast.Compare) -> None:
        left_val = self.eval(node.left)
        for comparator in node.comparators:
            right_val = self.eval(comparator)
            if isinstance(left_val, tuple) and isinstance(right_val, tuple) \
                    and left_val != right_val:
                emit(self.p.findings, self.info, node.lineno, node.col_offset,
                     "RP302", f"{_fmt(left_val)} vs {_fmt(right_val)}")
            left_val = right_val

    def _call(self, node: ast.Call):
        written = _dotted(node.func)
        arg_units = [self.eval(a) for a in node.args
                     if not isinstance(a, ast.Starred)]
        kw_units = {kw.arg: self.eval(kw.value) for kw in node.keywords
                    if kw.arg is not None}
        if written is None:
            self.eval(node.func)
            return None
        tail = written.rsplit(".", 1)[-1]
        target = self.p.resolve_function(written, self.fn, self.info)
        if target is not None:
            sig = self.p.signature(target)
            self._check_args(node, sig, arg_units, kw_units, written)
            return sig.returns
        # Dataclass constructor without an explicit __init__: keyword
        # arguments check against the field annotations.
        canonical = self.p.index.resolve(written, self.info.name)
        cls = self.p.index.class_of(canonical)
        if cls is not None:
            for kw, unit in kw_units.items():
                punit = self.p.class_field_unit(cls, kw)
                self._check_one(node, kw, punit, unit, written)
            return None
        if tail in ("float", "int", "round") and arg_units:
            return arg_units[0]
        if tail in _PASSTHROUGH_TAILS:
            return arg_units[0] if arg_units else None
        if tail in ("maximum", "minimum", "clip", "where", "fmax", "fmin"):
            vals = arg_units if tail != "where" else arg_units[1:]
            result = _ANY
            for v in vals:
                result = _merge(result, v)
            return result
        if tail in _POLYMORPHIC_TAILS:
            return _ANY if tail in ("zeros", "ones", "len") else None
        return None

    def _check_args(self, node: ast.Call, sig: _Signature,
                    arg_units, kw_units, written: str) -> None:
        for i, unit in enumerate(arg_units):
            if i >= len(sig.params):
                break
            pname, punit = sig.params[i]
            self._check_one(node, pname, punit, unit, written)
        for kw, unit in kw_units.items():
            punit = sig.param_units.get(kw)
            if punit is not None:
                self._check_one(node, kw, punit, unit, written)

    def _check_one(self, node: ast.Call, pname: str, punit, unit,
                   written: str) -> None:
        if punit is None or not isinstance(unit, tuple):
            return
        if unit != punit:
            emit(self.p.findings, self.info, node.lineno, node.col_offset,
                 "RP303",
                 f"{written}({pname}=...) expects {_fmt(punit)}, got {_fmt(unit)}")

    # -- statements ------------------------------------------------------
    def _bind(self, target: ast.expr, value) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = self.eval(node.value)
        for target in node.targets:
            self._bind(target, value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        annotated = unit_of_annotation(node.annotation, self.info, self.p.index)
        value = self.eval(node.value) if node.value is not None else None
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = annotated if annotated is not None else value

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        value = self.eval(node.value)
        if isinstance(node.target, ast.Name):
            current = self.env.get(node.target.id)
            if isinstance(node.op, (ast.Add, ast.Sub)) \
                    and isinstance(current, tuple) and isinstance(value, tuple) \
                    and current != value:
                emit(self.p.findings, self.info, node.lineno, node.col_offset,
                     "RP301", f"{_fmt(current)} vs {_fmt(value)}")
            if isinstance(node.op, ast.Mult):
                self.env[node.target.id] = _mul(current, value)
            elif isinstance(node.op, ast.Div):
                self.env[node.target.id] = _mul(current, _inv(value))

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is None:
            return
        value = self.eval(node.value)
        if self.return_unit is not None and isinstance(value, tuple) \
                and value != self.return_unit:
            emit(self.p.findings, self.info, node.lineno, node.col_offset,
                 "RP304",
                 f"annotated {_fmt(self.return_unit)}, returns {_fmt(value)}")

    def visit_For(self, node: ast.For) -> None:
        self._bind(node.target, self.eval(node.iter))
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Expr(self, node: ast.Expr) -> None:
        self.eval(node.value)

    def visit_If(self, node: ast.If) -> None:
        self.eval(node.test)
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self.eval(node.test)
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)

    def visit_Assert(self, node: ast.Assert) -> None:
        self.eval(node.test)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.eval(item.context_expr)
            if item.optional_vars is not None:
                self._bind(item.optional_vars, None)
        for stmt in node.body:
            self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:
        if node.exc is not None:
            self.eval(node.exc)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions are checked as their own FunctionInfo

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def run(self) -> None:
        body = self.fn.node.body
        if not isinstance(body, list):
            return  # lambda: no statements to check
        for stmt in body:
            self.visit(stmt)


class _UnitsPass:
    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.findings: list[Violation] = []
        self._signatures: dict[str, _Signature] = {}
        self._fields = self._collect_fields()
        self._globals = self._collect_globals()

    # -- registries ------------------------------------------------------
    def _collect_fields(self) -> dict[str, Unit | None]:
        """Field name -> unit, kept only when unambiguous project-wide."""
        seen: dict[str, set] = defaultdict(set)
        for info in self.index.modules.values():
            for cls in info.classes.values():
                for fname, text in cls.fields.items():
                    try:
                        annotation = ast.parse(text, mode="eval").body
                    except SyntaxError:
                        continue
                    unit = unit_of_annotation(annotation, info, self.index)
                    if unit is not None:
                        seen[fname].add(unit)
        return {name: units.pop() for name, units in seen.items()
                if len(units) == 1}

    def _collect_globals(self) -> dict[str, Unit]:
        """Canonical ``module.NAME`` -> unit for annotated module globals."""
        table: dict[str, Unit] = {}
        for info in self.index.modules.values():
            for stmt in info.tree.body:
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    unit = unit_of_annotation(stmt.annotation, info, self.index)
                    if unit is not None:
                        table[f"{info.name}.{stmt.target.id}"] = unit
        return table

    def field_unit(self, name: str):
        return self._fields.get(name)

    def class_field_unit(self, cls, name: str):
        text = cls.fields.get(name)
        if text is None:
            return None
        try:
            annotation = ast.parse(text, mode="eval").body
        except SyntaxError:
            return None
        return unit_of_annotation(annotation, self.index.modules[cls.module],
                                  self.index)

    def global_unit(self, written: str, info: ModuleInfo):
        canonical = self.index.resolve(written, info.name)
        return self._globals.get(canonical)

    # -- function resolution --------------------------------------------
    def signature(self, fn: FunctionInfo) -> _Signature:
        sig = self._signatures.get(fn.qualname)
        if sig is None:
            sig = _Signature(fn, self.index.modules[fn.module], self.index)
            self._signatures[fn.qualname] = sig
        return sig

    def resolve_function(self, written: str, caller: FunctionInfo,
                         info: ModuleInfo) -> FunctionInfo | None:
        head, _, rest = written.partition(".")
        if head == "self" and caller.class_name is not None and rest \
                and "." not in rest:
            return self.index._method_via_bases(info, caller.class_name, rest)
        canonical = self.index.resolve(written, info.name)
        fn = self.index.lookup_function(canonical)
        if fn is not None and not fn.is_lambda:
            return fn
        cls = self.index.class_of(canonical)
        if cls is not None:
            init = cls.methods.get("__init__")
            if init is not None:
                return self.index.lookup_function(init)
        return None

    # -- driver ----------------------------------------------------------
    def run(self) -> list[Violation]:
        for info in self.index.modules.values():
            for fn in info.functions.values():
                if fn.is_lambda:
                    continue
                _UnitChecker(self, fn, info).run()
        return self.findings


def check_units(index: ProjectIndex) -> list[Violation]:
    """Run the RP3xx dimensional-analysis pass over the project."""
    return _UnitsPass(index).run()
