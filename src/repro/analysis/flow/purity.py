"""Per-function effect summaries over the project index.

The call-graph extractor records *raw* facts per function (global reads
and writes, wall-clock calls, seed-less RNG construction); this module
turns them into judgements:

* which module-level names the project mutates *anywhere* (a read-only
  registry dict populated once at import time is fine to read from a
  worker; a counter someone increments is not);
* an :class:`EffectSummary` per function that the spawn-safety pass can
  consult directly.

Pure read-only module constants never appear in a summary — the passes
deliberately over-approximate call *edges* but under-approximate effect
*reports*, so every reported effect is backed by a concrete mutation site
somewhere in the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .callgraph import ProjectIndex

__all__ = ["EffectSummary", "effect_summaries"]

#: Module-level names whose mutation is an accepted implementation detail
#: (interpreter-wide switches with documented save/restore discipline).
#: ``Tensor`` is here because :func:`repro.analysis.sanitize.sanitize_tape`
#: swaps ``Tensor._make`` for the duration of a ``with`` block and restores
#: it in ``finally`` — the same no_grad-style contract as ``_GRAD_ENABLED``;
#: without the exemption every spawn-reachable *read* of the class (all of
#: ``repro.nn``) would be flagged as depending on mutated global state.
#: ``repro.tsan`` is the concurrency-checker instrumentation seam:
#: ``runtime.install()``/``uninstall()`` rebind its constructor aliases
#: with the same save/restore discipline, and production code reads them
#: on every lock construction — without the exemption every
#: spawn-reachable ``tsan.make_lock()`` call would be flagged.
_EXEMPT_GLOBALS = {
    ("repro.nn.tensor", "_GRAD_ENABLED"),
    ("repro.nn.tensor", "Tensor"),
    ("repro", "tsan"),
    ("repro.tsan", "make_lock"),
    ("repro.tsan", "make_rlock"),
    ("repro.tsan", "make_condition"),
    ("repro.tsan", "note_access"),
}


@dataclass
class EffectSummary:
    """Observable effects of one function, from its own body only.

    Transitive effects come from combining summaries over call-graph
    reachability — see :mod:`repro.analysis.flow.spawnsafety`.
    """

    qualname: str
    #: (module, name, line) reads of globals the project mutates somewhere.
    reads_mutated: list[tuple[str, str, int]] = field(default_factory=list)
    #: (module, name, line) writes/mutations of module-level state.
    writes: list[tuple[str, str, int]] = field(default_factory=list)
    #: Lines with wall-clock reads.
    wall_clock: list[int] = field(default_factory=list)
    #: Lines constructing RNGs without an explicit seed.
    unseeded_rng: list[int] = field(default_factory=list)

    def is_spawn_clean(self) -> bool:
        return not (self.reads_mutated or self.writes
                    or self.wall_clock or self.unseeded_rng)


def effect_summaries(index: ProjectIndex) -> dict[str, EffectSummary]:
    """Compute an :class:`EffectSummary` for every function in the index."""
    mutated = index.mutated_globals() - _EXEMPT_GLOBALS
    summaries: dict[str, EffectSummary] = {}
    for info in index.modules.values():
        for fn in info.functions.values():
            summary = EffectSummary(qualname=fn.qualname)
            for mod, name, line in fn.global_reads:
                if (mod, name) in mutated:
                    summary.reads_mutated.append((mod, name, line))
            for mod, name, line in fn.global_writes:
                if (mod, name) not in _EXEMPT_GLOBALS:
                    summary.writes.append((mod, name, line))
            summary.wall_clock = list(fn.wall_clock)
            summary.unseeded_rng = list(fn.unseeded_rng)
            summaries[fn.qualname] = summary
    return summaries
