"""Static correctness tooling: linter, shape checker, gradient audit.

Three subsystems, one entry point (``python -m repro.analysis``):

* :mod:`repro.analysis.lint` — repo-specific AST rules (RP001–RP007)
  enforcing the library's conventions: seeded RNG only, no float
  equality, no swallowed exceptions, dtype and tape-state hygiene,
  virtual-time simulation.
* :mod:`repro.analysis.shapes` — abstract interpretation of the RouteNet
  forward graph with ``(shape, dtype)``-only tensors; proves broadcast
  compatibility for a topology signature in milliseconds and reports the
  exact op and operand shapes on mismatch.
* :mod:`repro.analysis.gradcheck` / :mod:`repro.analysis.sanitize` —
  finite-difference verification of every registered op's backward pass,
  and a tape sanitizer that pinpoints the first op producing NaN/Inf
  (``Trainer(..., sanitize=True)`` / ``repro train --sanitize``).
* :mod:`repro.analysis.dataflow` — symbolic tape recorder over one real
  fused forward+backward: SSA def–use graph, alias classes, liveness,
  the RP6xx proofs (in-place writes, dead stores, tape escapes, arena
  budgets) and the verified arena planner the serving fast path executes
  from.
"""

from .gradcheck import (
    GRADCHECK_SPECS,
    GradSpec,
    OpGradReport,
    finite_difference_check,
    format_gradcheck,
    gradcheck_all,
    gradcheck_op,
)
from .lint import (
    RULES,
    Violation,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
)
from .sanitize import NonFiniteError, sanitize_tape
from .shapes import (
    PAPER_SIGNATURE_NAMES,
    ShapeCheckError,
    ShapeReport,
    ShapeTensor,
    ShapeTrace,
    TopologySignature,
    abstract_graph,
    check_model,
    paper_signatures,
)

__all__ = [
    # lint
    "RULES",
    "Violation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_violations",
    # shapes
    "PAPER_SIGNATURE_NAMES",
    "ShapeCheckError",
    "ShapeReport",
    "ShapeTensor",
    "ShapeTrace",
    "TopologySignature",
    "abstract_graph",
    "check_model",
    "paper_signatures",
    # gradcheck / sanitize
    "GRADCHECK_SPECS",
    "GradSpec",
    "OpGradReport",
    "finite_difference_check",
    "format_gradcheck",
    "gradcheck_all",
    "gradcheck_op",
    "NonFiniteError",
    "sanitize_tape",
]
