"""Finite-difference verification of the autodiff tape.

Every op registered in :data:`repro.nn.ops.OP_REGISTRY` (plus the
:class:`~repro.nn.Tensor` operator overloads) has a *spec* below: sample
inputs chosen inside the op's smooth domain (away from kinks like
``relu(0)`` or the Huber delta, away from ``log``'s pole) and a note of
which arguments are differentiable.  :func:`gradcheck_all` compares the
tape's backward pass against central finite differences at float64 and
fails if any op drifts past ``1e-6`` relative error — the first line of
defense against a silently wrong backward closure.

The check reduces each op's output through a fixed random projection so a
single scalar backward exercises every output element with distinct
weights (a plain ``sum()`` would miss errors that cancel across elements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import AnalysisError
from ..nn import ops
from ..nn.tensor import Tensor
from ..random import make_rng

__all__ = [
    "GradSpec",
    "OpGradReport",
    "GRADCHECK_SPECS",
    "finite_difference_check",
    "gradcheck_op",
    "gradcheck_all",
    "format_gradcheck",
]

DEFAULT_EPS = 1e-6
DEFAULT_TOL = 1e-6


@dataclass(frozen=True)
class GradSpec:
    """How to drive one op through the finite-difference harness.

    Attributes:
        fn: Callable mapping differentiable Tensors -> output Tensor.  Any
            non-differentiable arguments (indices, rates, rngs) are closed
            over.
        inputs: Factory returning the differentiable input arrays; values
            must sit inside the op's smooth region.
        label: Distinguishes multiple specs of one op (e.g. broadcast vs
            aligned shapes).
    """

    fn: Callable[..., Tensor]
    inputs: Callable[[], list[np.ndarray]]
    label: str = ""


@dataclass(frozen=True)
class OpGradReport:
    """Worst-case finite-difference agreement for one op."""

    name: str
    max_rel_error: float
    specs_checked: int
    ok: bool

    def format(self) -> str:
        status = "ok" if self.ok else "FAILED"
        return (
            f"  {self.name:<14s} {status:>6s}  max rel err "
            f"{self.max_rel_error:.3e}  ({self.specs_checked} spec(s))"
        )


def _projection(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Fixed full-rank weighting of the output elements."""
    return rng.uniform(0.5, 1.5, size=shape)


def finite_difference_check(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = DEFAULT_EPS,
    seed: int = 7,
) -> float:
    """Max relative error between tape gradients and central differences.

    Args:
        fn: Maps ``len(inputs)`` Tensors to an output Tensor.
        inputs: Float64 arrays; every one is treated as differentiable.
        eps: Central-difference step.
        seed: Seeds the output projection (fixed across evaluations).

    Returns:
        ``max |g_tape - g_fd| / max(1, |g_tape|, |g_fd|)`` over all input
        elements.
    """
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
    weights_rng = make_rng(seed)

    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*tensors)
    if not out.requires_grad:
        raise AnalysisError(
            f"no gradient can flow: output of {fn!r} is detached from its inputs"
        )
    weights = _projection(out.data.shape, weights_rng)

    def scalar(*values: np.ndarray) -> float:
        with_tensors = [Tensor(np.asarray(v, dtype=np.float64)) for v in values]
        result = fn(*with_tensors)
        return float((result.data * weights).sum())

    (out * Tensor(weights)).sum().backward()

    worst = 0.0
    for i, (arr, tensor) in enumerate(zip(arrays, tensors)):
        grad = tensor.grad
        if grad is None:
            raise AnalysisError(
                f"no gradient reached differentiable input {i} of {fn!r}"
            )
        flat = arr.copy()
        numeric = np.zeros_like(flat)
        it = np.nditer(flat, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            bumped = [a.copy() for a in arrays]
            bumped[i][idx] += eps
            hi = scalar(*bumped)
            bumped[i][idx] -= 2 * eps
            lo = scalar(*bumped)
            numeric[idx] = (hi - lo) / (2 * eps)
            it.iternext()
        denom = np.maximum(1.0, np.maximum(np.abs(grad), np.abs(numeric)))
        worst = max(worst, float((np.abs(grad - numeric) / denom).max()))
    return worst


# ----------------------------------------------------------------------
# Specs.  Input values deliberately avoid non-smooth points: |x| >= 0.1
# for relu/abs/leaky_relu, strictly positive for log/sqrt, clip/huber
# operands away from their breakpoints.
# ----------------------------------------------------------------------
def _smooth(*shape: int, low: float = 0.2, high: float = 1.8, seed: int = 3,
            signs: bool = False) -> np.ndarray:
    rng = make_rng((97, seed, *shape))
    values = rng.uniform(low, high, size=shape)
    if signs:
        values *= np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    return values


_SEG_IDS = np.array([0, 2, 2, 1, -1, 0], dtype=np.intp)
_GATHER_IDX = np.array([2, 0, 1, 1], dtype=np.intp)


def _op_specs() -> dict[str, list[GradSpec]]:
    return {
        "exp": [GradSpec(ops.exp, lambda: [_smooth(3, 4, signs=True)])],
        "log": [GradSpec(ops.log, lambda: [_smooth(3, 4)])],
        "sqrt": [GradSpec(ops.sqrt, lambda: [_smooth(3, 4)])],
        "sigmoid": [GradSpec(ops.sigmoid, lambda: [_smooth(3, 4, signs=True)])],
        "tanh": [GradSpec(ops.tanh, lambda: [_smooth(3, 4, signs=True)])],
        "relu": [GradSpec(ops.relu, lambda: [_smooth(3, 4, signs=True)])],
        "leaky_relu": [
            GradSpec(ops.leaky_relu, lambda: [_smooth(3, 4, signs=True)]),
            GradSpec(
                lambda x: ops.leaky_relu(x, alpha=0.2),
                lambda: [_smooth(2, 5, signs=True)],
                label="alpha=0.2",
            ),
        ],
        "softplus": [GradSpec(ops.softplus, lambda: [_smooth(3, 4, signs=True)])],
        "abs_": [GradSpec(ops.abs_, lambda: [_smooth(3, 4, signs=True)])],
        "clip": [
            # Interval chosen so no sample sits within ~0.05 of a boundary
            # (smooth region on both sides of the clip).
            GradSpec(
                lambda x: ops.clip(x, -1.0, 1.0),
                lambda: [_smooth(3, 4, low=0.3, high=0.9, signs=True)],
                label="inside",
            ),
            GradSpec(
                lambda x: ops.clip(x, -0.1, 0.1),
                lambda: [_smooth(3, 4, low=0.3, high=0.9, signs=True)],
                label="outside",
            ),
        ],
        "where": [
            GradSpec(
                lambda a, b: ops.where(
                    np.array([[True, False, True, False]] * 3), a, b
                ),
                lambda: [_smooth(3, 4, signs=True), _smooth(3, 4, seed=5)],
            )
        ],
        "concat": [
            GradSpec(
                lambda a, b: ops.concat([a, b], axis=1),
                lambda: [_smooth(3, 2), _smooth(3, 4, seed=5)],
            ),
            GradSpec(
                lambda a, b: ops.concat([a, b], axis=0),
                lambda: [_smooth(2, 4), _smooth(3, 4, seed=5)],
                label="axis=0",
            ),
        ],
        "stack": [
            GradSpec(
                lambda a, b: ops.stack([a, b], axis=0),
                lambda: [_smooth(3, 4), _smooth(3, 4, seed=5)],
            )
        ],
        "gather": [
            GradSpec(
                lambda x: ops.gather(x, _GATHER_IDX),
                lambda: [_smooth(3, 4, signs=True)],
            )
        ],
        "segment_sum": [
            GradSpec(
                lambda x: ops.segment_sum(x, _SEG_IDS, 4),
                lambda: [_smooth(6, 3, signs=True)],
            )
        ],
        "segment_mean": [
            GradSpec(
                lambda x: ops.segment_mean(x, _SEG_IDS, 4),
                lambda: [_smooth(6, 3, signs=True)],
            )
        ],
        "dropout": [
            # A freshly seeded generator per evaluation keeps the mask
            # identical across the three finite-difference forwards.
            GradSpec(
                lambda x: ops.dropout(x, 0.4, make_rng(11), training=True),
                lambda: [_smooth(4, 5, signs=True)],
            )
        ],
        "huber": [
            GradSpec(
                lambda p: ops.huber(p, np.zeros((3, 2)), delta=1.0),
                lambda: [_smooth(3, 2, low=0.2, high=0.8, signs=True)],
                label="quadratic",
            ),
            GradSpec(
                lambda p: ops.huber(p, np.zeros((3, 2)), delta=0.05),
                lambda: [_smooth(3, 2, low=0.2, high=0.8, signs=True)],
                label="linear",
            ),
        ],
    }


def _tensor_method_specs() -> dict[str, list[GradSpec]]:
    """The Tensor operator overloads, audited alongside the functional ops."""
    return {
        "add": [
            GradSpec(lambda a, b: a + b,
                     lambda: [_smooth(3, 4, signs=True), _smooth(3, 4, seed=5)]),
            GradSpec(lambda a, b: a + b,
                     lambda: [_smooth(3, 4, signs=True), _smooth(4, seed=5)],
                     label="broadcast"),
        ],
        "sub": [GradSpec(lambda a, b: a - b,
                         lambda: [_smooth(3, 4), _smooth(3, 4, seed=5)])],
        "neg": [GradSpec(lambda a: -a, lambda: [_smooth(3, 4, signs=True)])],
        "mul": [
            GradSpec(lambda a, b: a * b,
                     lambda: [_smooth(3, 4, signs=True), _smooth(3, 4, seed=5)]),
            GradSpec(lambda a, b: a * b,
                     lambda: [_smooth(3, 1, signs=True), _smooth(1, 4, seed=5)],
                     label="broadcast"),
        ],
        "div": [GradSpec(lambda a, b: a / b,
                         lambda: [_smooth(3, 4, signs=True), _smooth(3, 4, seed=5)])],
        "pow": [GradSpec(lambda a: a ** 3.0, lambda: [_smooth(3, 4)])],
        "matmul": [GradSpec(lambda a, b: a @ b,
                            lambda: [_smooth(3, 4, signs=True), _smooth(4, 2, seed=5)])],
        "sum": [
            GradSpec(lambda a: a.sum(), lambda: [_smooth(3, 4, signs=True)]),
            GradSpec(lambda a: a.sum(axis=1), lambda: [_smooth(3, 4)],
                     label="axis=1"),
            GradSpec(lambda a: a.sum(axis=0, keepdims=True),
                     lambda: [_smooth(3, 4)], label="keepdims"),
        ],
        "mean": [GradSpec(lambda a: a.mean(axis=0), lambda: [_smooth(3, 4)])],
        "reshape": [GradSpec(lambda a: a.reshape(4, 3), lambda: [_smooth(3, 4)])],
        "transpose": [GradSpec(lambda a: a.T, lambda: [_smooth(3, 4)])],
        "getitem": [GradSpec(lambda a: a[1:, ::2], lambda: [_smooth(3, 4)])],
    }


def GRADCHECK_SPECS() -> dict[str, list[GradSpec]]:
    """All specs: one entry per registered functional op + Tensor methods."""
    return {**_op_specs(), **_tensor_method_specs()}


def gradcheck_op(
    name: str,
    specs: Sequence[GradSpec],
    eps: float = DEFAULT_EPS,
    tol: float = DEFAULT_TOL,
) -> OpGradReport:
    """Finite-difference audit of one op across all of its specs."""
    worst = 0.0
    for spec in specs:
        worst = max(worst, finite_difference_check(spec.fn, spec.inputs(), eps=eps))
    return OpGradReport(
        name=name, max_rel_error=worst, specs_checked=len(specs), ok=worst < tol
    )


def gradcheck_all(
    eps: float = DEFAULT_EPS, tol: float = DEFAULT_TOL
) -> dict[str, OpGradReport]:
    """Audit every registered op; raises if the registry outgrew the specs.

    Raises:
        AnalysisError: If an op exists in ``OP_REGISTRY`` without a spec
            (a new op must be added to the audit before it ships).
    """
    specs = GRADCHECK_SPECS()
    missing = [name for name in ops.OP_REGISTRY if name not in specs]
    if missing:
        raise AnalysisError(
            f"ops registered without a gradcheck spec: {missing}; add them "
            "to repro.analysis.gradcheck"
        )
    return {name: gradcheck_op(name, spec_list, eps=eps, tol=tol)
            for name, spec_list in sorted(specs.items())}


def format_gradcheck(reports: dict[str, OpGradReport]) -> str:
    failed = [r for r in reports.values() if not r.ok]
    lines = [f"[gradcheck] {len(reports)} ops, {len(failed)} failing"]
    lines.extend(report.format() for report in reports.values())
    return "\n".join(lines)
