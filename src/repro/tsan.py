"""Instrumentation seam for the concurrency checkers.

Production code constructs its synchronisation primitives through this
module (``tsan.make_lock()`` instead of ``threading.Lock()``) and marks
shared-state accesses with :func:`note_access`.  By default everything
here is a zero-cost alias/no-op: ``make_lock`` *is* ``threading.Lock``
and ``note_access`` returns immediately.

Under ``REPRO_TSAN=1`` (or an explicit
:func:`repro.analysis.concurrency.runtime.install` call) the runtime
checker rebinds these names to instrumented wrappers that record
per-thread lock acquisition order and per-object access locksets into a
ring buffer — see :mod:`repro.analysis.concurrency.runtime`.

The static lockset pass (:mod:`repro.analysis.concurrency.static`)
resolves ``tsan.make_lock`` / ``make_rlock`` / ``make_condition`` back
to the underlying ``threading`` constructors through the module-alias
machinery in the project index, so instrumented code is analysed exactly
like code that calls ``threading.Lock()`` directly.

Rebinding discipline: only ``runtime.install()``/``uninstall()`` may
mutate this module, and ``uninstall()`` always restores the aliases
below — the same interpreter-wide switch-with-restore contract as
``repro.nn.tensor._GRAD_ENABLED`` (exempted in
:mod:`repro.analysis.flow.purity`).
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["make_lock", "make_rlock", "make_condition", "note_access"]

#: Constructor aliases; the runtime checker swaps these for instrumented
#: wrapper factories.  Call sites must invoke them (``tsan.make_lock()``),
#: never cache the callables at import time.
make_lock = threading.Lock
make_rlock = threading.RLock
make_condition = threading.Condition


def note_access(obj: Any, attr: str, kind: str) -> None:
    """Record an access to shared state ``obj.<attr>``.

    ``kind`` is ``"read"`` or ``"write"``.  A no-op unless the dynamic
    lockset checker is installed; production call sites sit *inside*
    their guarding critical sections so the checker observes the lockset
    that actually protects the access.
    """
