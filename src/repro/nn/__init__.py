"""From-scratch neural-network substrate (numpy reverse-mode autodiff).

Public surface::

    from repro import nn

    x = nn.tensor([[1.0, 2.0]], requires_grad=True)
    layer = nn.Dense(2, 4, rng, activation="relu")
    y = layer(x).sum()
    y.backward()
"""

from .tensor import (
    Tensor,
    tensor,
    no_grad,
    is_grad_enabled,
    tape_mark,
    set_tape_observer,
)
from . import ops, init
from .layers import Parameter, Module, Dense, MLP, ACTIVATIONS
from .rnn import GRUCell, RNNCell, make_cell
from .optim import Optimizer, SGD, Adam, clip_global_norm
from .grads import export_params, load_params, export_grads, accumulate_grads
from .serialization import save_module, load_module, save_state, load_state

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "tape_mark",
    "set_tape_observer",
    "ops",
    "init",
    "Parameter",
    "Module",
    "Dense",
    "MLP",
    "ACTIVATIONS",
    "GRUCell",
    "RNNCell",
    "make_cell",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_global_norm",
    "export_params",
    "load_params",
    "export_grads",
    "accumulate_grads",
    "save_module",
    "load_module",
    "save_state",
    "load_state",
]
