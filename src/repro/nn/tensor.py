"""Reverse-mode automatic differentiation on numpy arrays.

This module implements the minimal tensor engine that powers the RouteNet
model in :mod:`repro.core`.  It follows the classic tape-based design: every
operation returns a new :class:`Tensor` that remembers its parents and a
closure propagating gradients to them.  Calling :meth:`Tensor.backward` on a
scalar result runs the tape in reverse topological order.

Only the operations needed for graph neural networks are provided (dense
algebra, pointwise nonlinearities, gather/segment-sum for message passing).
Everything is float64 by default for robust gradient checks; models may use
float32 via the ``dtype`` argument of :func:`tensor`.
"""

from __future__ import annotations

import weakref
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "grad_pool_stats",
    "clear_grad_pool",
    "tape_mark",
    "set_tape_observer",
]

_GRAD_ENABLED = True

#: Optional observer notified of tape phase marks (``tape_mark``).  The
#: dataflow recorder in :mod:`repro.analysis.dataflow` installs one to
#: segment the recorded tape into message-passing rounds; when no observer
#: is installed a mark is a single ``is None`` check.
_TAPE_OBSERVER: Callable[[str], None] | None = None


def set_tape_observer(observer: "Callable[[str], None] | None") -> None:
    """Install (or clear, with ``None``) the tape phase-mark observer."""
    global _TAPE_OBSERVER
    _TAPE_OBSERVER = observer


def tape_mark(label: str) -> None:
    """Emit a phase mark to the tape observer, if one is installed.

    Model code calls this at structural boundaries (e.g. once per
    message-passing round) so recorded tapes can attribute buffers to
    phases.  Free when nothing is recording.
    """
    if _TAPE_OBSERVER is not None:
        _TAPE_OBSERVER(label)


class _GradBufferPool:
    """Free-list of gradient buffers keyed by ``(shape, dtype)``.

    Every training step used to allocate a fresh ndarray for each tensor's
    first gradient accumulation — parameters *and* every interior tape node.
    The shapes repeat exactly from step to step, so the pool hands the same
    buffers back out: :meth:`Tensor.backward` releases interior-node buffers
    when the walk finishes, :meth:`Tensor.zero_grad` releases leaf buffers,
    and :meth:`acquire` reuses them for the next step.  Steady-state training
    performs no gradient-buffer allocation at all.

    Ownership is tracked through weak references so :meth:`release` can
    never recycle a *foreign* array (e.g. a test assigning ``p.grad``
    directly): an array the pool did not hand out — or whose id was
    recycled after its owner died — is silently ignored instead of being
    handed to another tensor while outside code still holds it.
    """

    def __init__(self, max_per_key: int = 32, max_total: int = 1024) -> None:
        self._max_per_key = max_per_key
        self._max_total = max_total
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._total = 0
        # id -> weakref of arrays currently lent out.  A dead referent can
        # never validate, so id recycling cannot confuse ownership.
        self._lent: dict[int, weakref.ref] = {}
        self.acquires = 0
        self.reuses = 0
        self.releases = 0

    def acquire(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype).str)
        stack = self._free.get(key)
        if stack:
            buf = stack.pop()
            self._free[key] = self._free.pop(key)  # mark key recently used
            self._total -= 1
            self.reuses += 1
        else:
            buf = np.empty(shape, dtype=dtype)
        self.acquires += 1
        key_id = id(buf)

        def _forget(ref: weakref.ref, key_id: int = key_id) -> None:
            if self._lent.get(key_id) is ref:
                del self._lent[key_id]

        self._lent[key_id] = weakref.ref(buf, _forget)
        return buf

    def release(self, buf: np.ndarray | None) -> None:
        if buf is None:
            return
        if buf.base is not None:
            # A view into shared storage (an execution arena slot, a slice of
            # another tensor's buffer) must never enter the free list: handing
            # it out as a "fresh" gradient buffer would alias two tensors'
            # gradients onto one allocation.  The pool only ever lends arrays
            # it allocated itself (base is None), so any view is foreign.
            return
        ref = self._lent.get(id(buf))
        if ref is None or ref() is not buf:
            return  # not pool-owned: never recycle arrays we did not lend
        del self._lent[id(buf)]
        key = (buf.shape, buf.dtype.str)
        stack = self._free.setdefault(key, [])
        if len(stack) >= self._max_per_key:
            return
        if self._total >= self._max_total:
            # The pool is full of shapes nobody is asking for (e.g. the
            # batch size changed): evict from the least-recently-used
            # free-list instead of refusing the live shape, otherwise the
            # new working set never pools and every step re-allocates.
            for other_key, other_stack in self._free.items():
                if other_stack and other_key != key:
                    other_stack.pop()
                    self._total -= 1
                    break
            else:
                return
        stack.append(buf)
        self._total += 1
        self.releases += 1

    def clear(self) -> None:
        self._free.clear()
        self._lent.clear()
        self._total = 0
        self.acquires = self.reuses = self.releases = 0

    def stats(self) -> dict[str, int]:
        return {
            "acquires": self.acquires,
            "reuses": self.reuses,
            "releases": self.releases,
            "free": self._total,
        }


_GRAD_POOL = _GradBufferPool()


def grad_pool_stats() -> dict[str, int]:
    """Counters of the process-wide gradient-buffer pool (see the bench)."""
    return _GRAD_POOL.stats()


def clear_grad_pool() -> None:
    """Drop all pooled buffers and reset counters (test isolation)."""
    _GRAD_POOL.clear()


class no_grad:
    """Context manager disabling gradient tape construction.

    Inside a ``with no_grad():`` block all operations produce tensors with
    ``requires_grad=False`` and no parents, which makes pure inference cheaper
    and prevents memory growth during evaluation loops.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations are being recorded on the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _indexes_unique_positions(key: object) -> bool:
    """True when ``data[key]`` cannot address the same position twice.

    Ints, slices, ``None``/``Ellipsis`` and boolean masks all select
    distinct positions; only integer-array (fancy) indexing may repeat one.
    """
    parts = key if isinstance(key, tuple) else (key,)
    for k in parts:
        if isinstance(k, (int, np.integer, slice)) or k is None or k is Ellipsis:
            continue
        if isinstance(k, np.ndarray) and k.dtype == np.bool_:
            continue
        return False
    return True


class Tensor:
    """A numpy array plus an optional gradient tape node.

    Attributes:
        data: The underlying ``numpy.ndarray``.
        grad: Accumulated gradient (same shape as ``data``) after backward.
        requires_grad: Whether gradients flow into this tensor.
    """

    __slots__ = (
        "data", "grad", "requires_grad", "_parents", "_backward", "_retains",
        "name",
    )
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
        dtype: np.dtype | type | None = None,
    ) -> None:
        arr = np.asarray(data, dtype=dtype)
        if arr.dtype.kind != "f":
            # Non-float inputs (ints, bools) always promote to the default
            # tape precision; float inputs keep their width (a float32 model
            # stays float32 end to end).
            arr = arr.astype(np.float64)
        self.data = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None
        self._retains: tuple[np.ndarray, ...] | None = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the raw value (shared, do not mutate)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            buf = _GRAD_POOL.acquire(self.data.shape, self.data.dtype)
            np.copyto(buf, grad, casting="unsafe")
            self.grad = buf
        else:
            np.add(self.grad, grad, out=self.grad, casting="unsafe")

    def zero_grad(self) -> None:
        """Reset the accumulated gradient (the buffer returns to the pool)."""
        _GRAD_POOL.release(self.grad)
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Args:
            grad: Incoming gradient; defaults to ones (scalar outputs only).

        Raises:
            ValueError: If called on a non-scalar without an explicit ``grad``.
        """
        if not self.requires_grad:
            raise ValueError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

        # Interior-node gradients are tape scratch: only leaves (parameters,
        # inputs) are read after the walk.  Returning the buffers here is
        # what lets the pool serve the next step allocation-free.
        for node in order:
            if node._backward is not None:
                _GRAD_POOL.release(node.grad)
                node.grad = None

    @property
    def backward_retains(self) -> "tuple[np.ndarray, ...]":
        """The arrays this node's backward closure reads.

        Declared per op via ``_make(..., retains=...)``; an op without a
        declaration conservatively retains every parent's data.  The
        dataflow analysis (:mod:`repro.analysis.dataflow`) uses this to
        extend buffer liveness across the backward pass and to prove
        in-place writes safe (RP601).
        """
        if self._retains is not None:
            return self._retains
        return tuple(p.data for p in self._parents)

    # ------------------------------------------------------------------
    # Construction helper for ops
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        retains: "tuple[np.ndarray, ...] | None" = None,
    ) -> "Tensor":
        """Build a tape node.

        Args:
            data: Forward result.
            parents: Input tensors (grad flows to those requiring it).
            backward: Gradient closure.
            retains: The arrays ``backward`` reads — forward inputs/outputs
                and any closure-captured scratch.  ``None`` (the default)
                means "conservatively all parent data"; pass ``()`` for a
                closure that reads no array contents (index-only backwards
                and shape-only reductions).  Pure index/mask operands are
                input data, not tape buffers, and are never listed.
        """
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
            out._retains = retains
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, retains=())

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, retains=())

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self + (-tensor(other))

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return tensor(other) + (-self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(
            out_data, (self, other), backward, retains=(self.data, other.data)
        )

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(
            out_data, (self, other), backward, retains=(self.data, other.data)
        )

    def __rtruediv__(self, other: "Tensor | float") -> "Tensor":
        return tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, retains=(self.data,))

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._make(
            out_data, (self, other), backward, retains=(self.data, other.data)
        )

    # ------------------------------------------------------------------
    # Reductions and shaping (method forms; see ops.py for functionals)
    # ------------------------------------------------------------------
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            # _accumulate copies (or adds) out of the read-only broadcast
            # view, so no intermediate materialization is needed.
            self._accumulate(np.broadcast_to(g, self.shape))

        return Tensor._make(out_data, (self,), backward, retains=())

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward, retains=())

    @property
    def T(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(out_data, (self,), backward, retains=())

    def __getitem__(self, key: object) -> "Tensor":
        out_data = self.data[key]
        # Basic indexing (ints/slices/bool masks) addresses each source
        # position at most once, so the backward scatter is a plain
        # assignment into zeros; only integer-array (fancy) indexing can
        # repeat positions and needs the much slower unbuffered add.at.
        unique_positions = _indexes_unique_positions(key)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = _GRAD_POOL.acquire(self.data.shape, self.data.dtype)
                full[...] = 0.0
                if unique_positions:
                    full[key] = grad
                else:
                    np.add.at(full, key, grad)
                self._accumulate(full)
                _GRAD_POOL.release(full)

        return Tensor._make(out_data, (self,), backward, retains=())


def tensor(
    value: "Tensor | np.ndarray | float | int | Sequence",
    requires_grad: bool = False,
    dtype: np.dtype | type | None = None,
) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor`.

    Existing tensors pass through unchanged (``requires_grad`` is ignored for
    them, mirroring ``torch.as_tensor`` semantics).  When ``dtype`` is
    omitted, float ndarrays keep their dtype (so float32 pipelines are not
    silently promoted) and everything else becomes float64, consistently
    with :class:`Tensor` construction.
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad, dtype=dtype)
