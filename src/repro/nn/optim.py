"""Gradient-descent optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_global_norm"]


def clip_global_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging/divergence detection).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1c = 1.0 - self.beta1**self._t
        b2c = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            p.data -= self.lr * (m / b1c) / (np.sqrt(v / b2c) + self.eps)
