"""Gradient-descent optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter
from .tensor import _GRAD_POOL

__all__ = ["Optimizer", "SGD", "Adam", "clip_global_norm"]


def clip_global_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging/divergence detection).

    Runs allocation-free: the old per-parameter ``(grad**2).sum()`` temporary
    is replaced by squaring into a pooled scratch buffer, and clipping
    multiplies in place.  ``np.dot(g.ravel(), g.ravel())`` would also avoid
    the temporary but delegates to BLAS, whose accumulation order diverges
    from numpy's pairwise ``sum`` in the last ulp — squaring in place keeps
    the summation algorithm (and therefore the returned pre-clip norm)
    bit-identical to the historical implementation, which a regression test
    pins.
    """
    params = [p for p in params if p.grad is not None]
    total = 0.0
    for p in params:
        scratch = _GRAD_POOL.acquire(p.grad.shape, p.grad.dtype)
        np.multiply(p.grad, p.grad, out=scratch)
        total += float(scratch.sum())
        _GRAD_POOL.release(scratch)
    total = float(np.sqrt(total))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            np.multiply(p.grad, scale, out=p.grad)
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    The update runs entirely in preallocated scratch buffers (two per
    parameter, allocated once next to the moment estimates), so a training
    step performs no array allocation inside the optimizer.  Every in-place
    expression mirrors the historical out-of-place arithmetic operation for
    operation — IEEE multiplication commutes bitwise and ``g * g`` equals
    ``g**2`` bitwise — so weight trajectories are bit-identical to the
    allocating implementation (pinned by a regression test).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._s1 = [np.empty_like(p.data) for p in self.params]
        self._s2 = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1c = 1.0 - self.beta1**self._t
        b2c = 1.0 - self.beta2**self._t
        for p, m, v, s1, s2 in zip(self.params, self._m, self._v, self._s1, self._s2):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                # grad + wd * p  ==  (p * wd) + grad bitwise (commutativity).
                np.multiply(p.data, self.weight_decay, out=s1)
                np.add(grad, s1, out=s1)
                grad = s1
            # m = beta1 * m + (1 - beta1) * grad
            np.multiply(grad, 1.0 - self.beta1, out=s2)
            np.multiply(m, self.beta1, out=m)
            np.add(m, s2, out=m)
            # v = beta2 * v + (1 - beta2) * grad^2
            np.multiply(grad, grad, out=s2)
            np.multiply(s2, 1.0 - self.beta2, out=s2)
            np.multiply(v, self.beta2, out=v)
            np.add(v, s2, out=v)
            # p -= lr * (m / b1c) / (sqrt(v / b2c) + eps)
            np.divide(m, b1c, out=s2)
            np.multiply(s2, self.lr, out=s2)
            np.divide(v, b2c, out=s1)
            np.sqrt(s1, out=s1)
            np.add(s1, self.eps, out=s1)
            np.divide(s2, s1, out=s2)
            np.subtract(p.data, s2, out=p.data)
