"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic under :mod:`repro.random` seeding.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "orthogonal", "zeros"]


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform init for a ``(fan_in, fan_out)`` weight matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def orthogonal(rng: np.random.Generator, rows: int, cols: int, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (used for GRU recurrent kernels)."""
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q *= np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(rows: int, cols: int | None = None) -> np.ndarray:
    """Zero init for biases (1-D) or matrices (2-D)."""
    if cols is None:
        return np.zeros(rows)
    return np.zeros((rows, cols))
