"""Functional operations on :class:`repro.nn.tensor.Tensor`.

These complement the operator overloads on :class:`Tensor` with the
nonlinearities and the graph primitives (``gather`` / ``segment_sum``) that
RouteNet's message-passing layers are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .tensor import _GRAD_POOL, Tensor, tensor

__all__ = [
    "exp",
    "log",
    "sigmoid",
    "tanh",
    "relu",
    "leaky_relu",
    "softplus",
    "abs_",
    "sqrt",
    "clip",
    "where",
    "concat",
    "stack",
    "gather",
    "segment_sum",
    "segment_mean",
    "dropout",
    "huber",
    "ScatterPlan",
    "make_scatter_plan",
]


@dataclass(frozen=True)
class ScatterPlan:
    """Precomputed stable-sort schedule for a scatter-add over rows.

    ``np.add.at`` dispatches per element; grouping equal destination ids
    with a stable sort lets the same scatter run as one buffered gather
    plus ``np.add.reduceat``.  The stable sort keeps each destination's
    contributions in original row order — the same schedule
    :mod:`repro.serving.fastpath` uses, so planned tape scatters and the
    serving fast path agree exactly.  Note ``reduceat`` may sum a bucket
    pairwise where ``np.add.at`` accumulates strictly sequentially: results
    agree to ~1 ulp, and are deterministic run to run, but are not
    bit-identical to an unplanned scatter (tested at that tolerance).

    Index-only and input-derived, so it belongs in a cached
    :class:`~repro.core.ForwardPlan` — built once per input, reused every
    forward/backward.

    Attributes:
        order: (V,) source rows with valid (>= 0) ids, stably sorted by id.
        starts: (U,) block starts into the permuted rows (reduceat offsets).
        rows: (U,) destination row for each block (the unique ids, sorted).
        sorted_ids: (V,) destination id of each permuted source row.
    """

    order: np.ndarray
    starts: np.ndarray
    rows: np.ndarray
    sorted_ids: np.ndarray

    def scatter_into(self, values: np.ndarray, out: np.ndarray) -> None:
        """Scatter-add ``values`` rows into zero-initialized ``out``."""
        if self.order.size:
            out[self.rows] = np.add.reduceat(values[self.order], self.starts, axis=0)


def make_scatter_plan(ids: np.ndarray) -> ScatterPlan:
    """Build the :class:`ScatterPlan` for destination ``ids`` (-1 = skip)."""
    ids = np.asarray(ids, dtype=np.intp)
    valid = np.flatnonzero(ids >= 0)
    order = valid[np.argsort(ids[valid], kind="stable")]
    sorted_ids = ids[order]
    if order.size:
        starts = np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])
    else:
        starts = np.empty(0, dtype=np.intp)
    return ScatterPlan(
        order=order, starts=starts, rows=sorted_ids[starts], sorted_ids=sorted_ids
    )


def exp(x: Tensor) -> Tensor:
    x = tensor(x)
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data)

    return Tensor._make(out_data, (x,), backward, retains=(out_data,))


def log(x: Tensor) -> Tensor:
    x = tensor(x)
    out_data = np.log(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad / x.data)

    return Tensor._make(out_data, (x,), backward, retains=(x.data,))


def sqrt(x: Tensor) -> Tensor:
    x = tensor(x)
    out_data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * 0.5 / out_data)

    return Tensor._make(out_data, (x,), backward, retains=(out_data,))


def sigmoid(x: Tensor) -> Tensor:
    x = tensor(x)
    # Numerically stable logistic: exp only ever sees non-positive inputs,
    # and a single evaluation covers both branches.
    z = np.exp(-np.abs(x.data))
    out_data = np.where(x.data >= 0, 1.0 / (1.0 + z), z / (1.0 + z))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = out_data * (1.0 - out_data)
            g *= grad
            x._accumulate(g)

    return Tensor._make(out_data, (x,), backward, retains=(out_data,))


def tanh(x: Tensor) -> Tensor:
    x = tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (x,), backward, retains=(out_data,))


def relu(x: Tensor) -> Tensor:
    x = tensor(x)
    out_data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (x.data > 0))

    return Tensor._make(out_data, (x,), backward, retains=(x.data,))


def leaky_relu(x: Tensor, alpha: float = 0.01) -> Tensor:
    x = tensor(x)
    out_data = np.where(x.data > 0, x.data, alpha * x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.where(x.data > 0, 1.0, alpha))

    return Tensor._make(out_data, (x,), backward, retains=(x.data,))


def softplus(x: Tensor) -> Tensor:
    x = tensor(x)
    out_data = np.logaddexp(0.0, x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad / (1.0 + np.exp(-x.data)))

    return Tensor._make(out_data, (x,), backward, retains=(x.data,))


def abs_(x: Tensor) -> Tensor:
    x = tensor(x)
    out_data = np.abs(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.sign(x.data))

    return Tensor._make(out_data, (x,), backward, retains=(x.data,))


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    """Clamp values to ``[lo, hi]``; gradient is zero outside the interval."""
    x = tensor(x)
    out_data = np.clip(x.data, lo, hi)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            inside = (x.data >= lo) & (x.data <= hi)
            x._accumulate(grad * inside)

    return Tensor._make(out_data, (x,), backward, retains=(x.data,))


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    a, b = tensor(a), tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        from .tensor import _unbroadcast

        # grad * cond selects exactly; grad - that is the complement
        # bit-for-bit, without materializing ~cond.
        ga = grad * cond
        if a.requires_grad:
            a._accumulate(_unbroadcast(ga, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad - ga, b.shape))

    return Tensor._make(out_data, (a, b), backward, retains=())


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    tensors = [tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward, retains=())


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for t, slab in zip(tensors, slabs):
            if t.requires_grad:
                t._accumulate(slab)

    return Tensor._make(out_data, tensors, backward, retains=())


def gather(x: Tensor, indices: np.ndarray, plan: ScatterPlan | None = None) -> Tensor:
    """Select rows ``x[indices]`` (first axis), differentiable in ``x``.

    ``plan`` (a :class:`ScatterPlan` built from ``indices``) routes the
    backward scatter-add through the buffered reduceat path instead of
    per-element ``np.add.at`` — deterministic and equal to ~1 ulp (see
    :class:`ScatterPlan`), much faster, and free when the plan comes from a
    cached :class:`~repro.core.ForwardPlan`.
    """
    x = tensor(x)
    idx = np.asarray(indices, dtype=np.intp)
    out_data = x.data[idx]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # Pooled scratch instead of zeros_like: scatter targets are the
            # biggest arrays on the tape, and a fresh allocation per
            # backward dwarfs the memset.
            full = _GRAD_POOL.acquire(x.data.shape, x.data.dtype)
            full[...] = 0.0
            if plan is not None:
                plan.scatter_into(grad, full)
            else:
                np.add.at(full, idx, grad)
            x._accumulate(full)
            _GRAD_POOL.release(full)

    return Tensor._make(out_data, (x,), backward, retains=())


def segment_sum(
    x: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: ScatterPlan | None = None,
) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given by ``segment_ids``.

    This is the aggregation primitive of RouteNet's link update: messages from
    every (path, position) that crosses a link are summed into that link's
    bucket.  Rows with ``segment_ids == -1`` are ignored (padding).

    ``plan`` (a :class:`ScatterPlan` built from ``segment_ids``) replaces the
    per-element ``np.add.at`` scatter with the buffered reduceat schedule;
    the stable sort preserves per-bucket member order, so results are
    deterministic and equal to ~1 ulp (see :class:`ScatterPlan`).
    """
    x = tensor(x)
    ids = np.asarray(segment_ids, dtype=np.intp)
    if ids.shape[0] != x.data.shape[0]:
        raise ValueError(
            f"segment_ids has {ids.shape[0]} entries for {x.data.shape[0]} rows"
        )
    out_data = np.zeros((num_segments,) + x.data.shape[1:], dtype=x.data.dtype)
    if plan is not None:
        plan.scatter_into(x.data, out_data)
    else:
        valid = ids >= 0
        np.add.at(out_data, ids[valid], x.data[valid])

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            full = _GRAD_POOL.acquire(x.data.shape, x.data.dtype)
            full[...] = 0.0
            if plan is not None:
                full[plan.order] = grad[plan.sorted_ids]
            else:
                keep = ids >= 0
                full[keep] = grad[ids[keep]]
            x._accumulate(full)
            _GRAD_POOL.release(full)

    return Tensor._make(out_data, (x,), backward, retains=())


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows into segments; empty segments yield zeros."""
    ids = np.asarray(segment_ids, dtype=np.intp)
    counts = np.bincount(ids[ids >= 0], minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (tensor(x).ndim - 1))
    return segment_sum(x, ids, num_segments) * (1.0 / counts)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or rate is 0."""
    if not training or rate <= 0.0:
        return tensor(x)
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    x = tensor(x)
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * mask


def huber(pred: Tensor, target: np.ndarray, delta: float = 1.0) -> Tensor:
    """Elementwise Huber loss (smooth L1); target is a constant array."""
    pred = tensor(pred)
    target = np.asarray(target, dtype=pred.dtype)
    diff = pred - target
    quadratic = diff * diff * 0.5
    linear = abs_(diff) * delta - (0.5 * delta * delta)
    return where(np.abs(diff.data) <= delta, quadratic, linear)


#: Every public functional op, keyed by name.  ``repro.analysis`` drives its
#: finite-difference gradient audit and its abstract shape interpreter off
#: this registry, so a newly added op is automatically picked up by both
#: (the analysis suite fails loudly if an op lacks a gradcheck spec or an
#: abstract shape rule).
#: Index-plan helpers are public but not tape ops: nothing to gradcheck or
#: shape-interpret (they carry no gradients and produce no tensors).
_NON_OPS = {"ScatterPlan", "make_scatter_plan"}

OP_REGISTRY: dict[str, "object"] = {
    name: globals()[name] for name in __all__ if name not in _NON_OPS
}
