"""Neural-network modules: parameter containers, Dense and MLP layers."""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from . import init, ops
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Dense", "MLP", "ACTIVATIONS"]

ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": ops.relu,
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "softplus": ops.softplus,
    "leaky_relu": ops.leaky_relu,
    "linear": lambda x: x,
}


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data: np.ndarray, name: str | None = None) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Submodules and parameters assigned as attributes are discovered
    automatically, mirroring the familiar torch ``nn.Module`` contract:

    * :meth:`parameters` yields every trainable :class:`Parameter`.
    * :meth:`named_parameters` yields dotted names for checkpointing.
    * :meth:`zero_grad` clears all gradients before a step.
    """

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter value, keyed by dotted name."""
        return {name: np.array(p.data, copy=True) for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict` (strict key matching)."""
        own = dict(self.named_parameters())
        missing = own.keys() - state.keys()
        unexpected = state.keys() - own.keys()
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()


class Dense(Module):
    """Affine layer ``y = activation(x @ W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation: str = "linear",
        use_bias: bool = True,
    ) -> None:
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; options: {sorted(ACTIVATIONS)}")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features), name="weight")
        self.bias = Parameter(init.zeros(out_features), name="bias") if use_bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return ACTIVATIONS[self.activation](out)


class MLP(Module):
    """Stack of Dense layers, hidden activations + a final activation."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        activation: str = "relu",
        out_activation: str = "linear",
    ) -> None:
        sizes = [in_features, *hidden, out_features]
        self.layers = [
            Dense(
                sizes[i],
                sizes[i + 1],
                rng,
                activation=activation if i < len(sizes) - 2 else out_activation,
            )
            for i in range(len(sizes) - 1)
        ]

    def __call__(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
